//! `raco loadgen` — a load generator for the serve tier.
//!
//! Replays a deterministic **mixed-machine trace** against a live
//! `raco serve` TCP endpoint from many concurrent connections, then
//! writes a schema-versioned benchmark artifact (`BENCH_serve.json`)
//! with end-to-end latency quantiles, connect+first-reply latency,
//! throughput, error counts and the server's own per-shard cache
//! statistics (fetched through the `metrics` op after the run).
//!
//! The trace is what a production addressing workload looks like: a
//! pool of distinct loop shapes sampled with a hot-head skew (a few
//! shapes dominate, a long tail recurs occasionally), each request
//! compiled for one of several machines (`registers`/`modify` knobs
//! vary per request). Because the serve tier routes on the *canonical*
//! pattern key, every repetition of a (shape, machine) pair lands on
//! the same shard — the per-shard hit rates in the artifact are the
//! direct evidence.
//!
//! By default `loadgen` spawns its own `raco serve --tcp 127.0.0.1:0`
//! child (the binary under test is the binary running loadgen) and
//! shuts it down afterwards; `--tcp <addr>` points it at an already
//! running server instead.

use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use raco_driver::json::Json;
use raco_obs::{Histogram, HistogramSnapshot};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The artifact's schema tag (`BENCH_serve.json`).
pub const SCHEMA: &str = "raco-bench-serve";
/// The artifact's schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Default number of requests replayed.
pub const DEFAULT_REQUESTS: u64 = 100_000;
/// Default number of concurrent client connections.
pub const DEFAULT_CONNECTIONS: usize = 8;
/// Default number of distinct loop shapes in the trace pool.
pub const DEFAULT_SHAPES: usize = 64;
/// Connect+ping probes measured after the load phase.
const CONNECT_PROBES: usize = 100;

/// The numeric-knob machines the mixed trace cycles through (address
/// registers, auto-modify range) — small enough that every (shape,
/// machine) pair recurs many times over a 100k-request trace, so a
/// warm server is mostly cache hits.
const MACHINES: &[(usize, u32)] = &[(2, 1), (4, 1), (4, 2), (8, 2)];

/// Named machine descriptions mixed into the trace alongside the
/// numeric knobs — the asymmetric-range / non-unit-cost backends
/// (`bwdsp`, `saris`) exercise the description-keyed cache paths under
/// production-shaped load.
const NAMED_MACHINES: &[&str] = &["paper", "dsp56k", "bwdsp", "saris"];

/// What one loadgen run should do.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// The `raco` binary to spawn in serve mode when `addr` is `None`.
    pub binary: PathBuf,
    /// Attack an already-running server instead of spawning one.
    pub addr: Option<String>,
    /// Total requests replayed across all connections.
    pub requests: u64,
    /// Concurrent client connections.
    pub connections: usize,
    /// Distinct loop shapes in the trace pool.
    pub shapes: usize,
    /// Master seed: the whole trace is a pure function of it.
    pub seed: u64,
    /// Extra CLI args for the spawned server (`--shards`, deadlines…).
    /// Ignored when `addr` targets an external server.
    pub server_args: Vec<String>,
    /// Where the benchmark artifact goes.
    pub output: PathBuf,
    /// Label stamped into the artifact.
    pub label: String,
}

impl LoadgenConfig {
    /// A config with the documented defaults for `binary`.
    pub fn new(binary: PathBuf) -> Self {
        LoadgenConfig {
            binary,
            addr: None,
            requests: DEFAULT_REQUESTS,
            connections: DEFAULT_CONNECTIONS,
            shapes: DEFAULT_SHAPES,
            seed: 0x10ad_9e4e,
            server_args: Vec::new(),
            output: PathBuf::from("BENCH_serve.json"),
            label: "local".to_owned(),
        }
    }
}

/// One run's results (everything the artifact serializes, pre-render).
#[derive(Debug)]
pub struct LoadgenReport {
    /// Requests sent (equals the configured total on a clean run).
    pub sent: u64,
    /// `ok:true` replies.
    pub ok: u64,
    /// `ok:false` replies, by `error_kind` (plain `error`s count under
    /// `"error"`).
    pub rejected: BTreeMap<String, u64>,
    /// Connections that died mid-run (I/O errors). Zero on a healthy
    /// server — the serve tier's whole point.
    pub transport_errors: u64,
    /// Wall time of the load phase.
    pub elapsed: Duration,
    /// End-to-end request latency (nanoseconds), merged across workers.
    pub latency: HistogramSnapshot,
    /// Fresh-connection latency: TCP connect through first `ping`
    /// reply, measured after the load phase (this is what the accept
    /// loop's backoff bounds).
    pub connect: HistogramSnapshot,
    /// The server's `metrics` payload, captured after the run.
    pub server_metrics: Option<Json>,
}

impl LoadgenReport {
    /// Requests per second over the load phase.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.sent as f64 / secs
        } else {
            0.0
        }
    }

    /// Total `ok:false` replies.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.values().sum()
    }

    /// The server's aggregate cache hit rate after the run, if the
    /// `metrics` capture succeeded.
    pub fn aggregate_hit_rate(&self) -> Option<f64> {
        as_f64(
            self.server_metrics
                .as_ref()?
                .get("cache")?
                .get("hit_rate")?,
        )
    }

    /// `(shard id, requests, hit rate)` per shard, when the server ran
    /// more than one.
    pub fn shard_summary(&self) -> Vec<(u64, u64, f64)> {
        let Some(Json::Arr(shards)) = self.server_metrics.as_ref().and_then(|m| m.get("shards"))
        else {
            return Vec::new();
        };
        shards
            .iter()
            .filter_map(|shard| {
                Some((
                    shard.get("id")?.as_u64()?,
                    shard.get("requests")?.as_u64()?,
                    as_f64(shard.get("hit_rate")?)?,
                ))
            })
            .collect()
    }

    /// Renders the schema-versioned artifact.
    pub fn to_json(&self, config: &LoadgenConfig) -> Json {
        let rejected: Vec<(String, Json)> = self
            .rejected
            .iter()
            .map(|(kind, n)| (kind.clone(), Json::UInt(*n)))
            .collect();
        let mut fields = vec![
            ("schema".to_owned(), Json::str(SCHEMA)),
            ("version".to_owned(), Json::UInt(SCHEMA_VERSION)),
            ("label".to_owned(), Json::str(&config.label)),
            ("seed".to_owned(), Json::UInt(config.seed)),
            ("requests".to_owned(), Json::UInt(self.sent)),
            (
                "connections".to_owned(),
                Json::UInt(config.connections as u64),
            ),
            ("shapes".to_owned(), Json::UInt(config.shapes as u64)),
            (
                "elapsed_ms".to_owned(),
                Json::Num(self.elapsed.as_secs_f64() * 1000.0),
            ),
            (
                "throughput_rps".to_owned(),
                Json::Num(self.throughput_rps()),
            ),
            ("ok".to_owned(), Json::UInt(self.ok)),
            (
                "errors".to_owned(),
                Json::Obj(vec![
                    ("transport".to_owned(), Json::UInt(self.transport_errors)),
                    ("rejected".to_owned(), Json::UInt(self.rejected_total())),
                    ("by_kind".to_owned(), Json::Obj(rejected)),
                ]),
            ),
            ("latency_us".to_owned(), histogram_json(&self.latency)),
            ("connect_us".to_owned(), histogram_json(&self.connect)),
        ];
        if let Some(metrics) = &self.server_metrics {
            fields.push(("server".to_owned(), metrics.clone()));
        }
        Json::Obj(fields)
    }
}

/// A latency histogram as JSON (microseconds, like the serve `metrics`
/// op renders).
fn histogram_json(snapshot: &HistogramSnapshot) -> Json {
    let us = |ns: u64| Json::Num(ns as f64 / 1000.0);
    Json::Obj(vec![
        ("count".to_owned(), Json::UInt(snapshot.count)),
        ("p50_us".to_owned(), us(snapshot.quantile(0.50))),
        ("p95_us".to_owned(), us(snapshot.quantile(0.95))),
        ("p99_us".to_owned(), us(snapshot.quantile(0.99))),
        ("max_us".to_owned(), us(snapshot.max)),
    ])
}

/// An all-zero snapshot (the type has no `Default`).
fn empty_snapshot() -> HistogramSnapshot {
    Histogram::new().snapshot()
}

fn as_f64(json: &Json) -> Option<f64> {
    match json {
        Json::Num(n) => Some(*n),
        Json::UInt(n) => Some(*n as f64),
        Json::Int(n) => Some(*n as f64),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Trace generation
// ---------------------------------------------------------------------

/// Builds the deterministic shape pool: `shapes` distinct single-loop
/// sources over one or two arrays with bounded offsets — the same
/// territory the DSL fuzzer and the kernel suite cover, sized so a
/// compile is cheap but not trivial.
fn shape_pool(shapes: usize, seed: u64) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1_ab1e);
    (0..shapes)
        .map(|_| {
            let accesses = rng.gen_range(2usize..=5);
            let bound = rng.gen_range(16i64..=96);
            let two_arrays: bool = rng.gen();
            let mut terms = Vec::with_capacity(accesses);
            for a in 0..accesses {
                let offset = rng.gen_range(-8i64..=8);
                let array = if two_arrays && a % 2 == 1 { "h" } else { "x" };
                let index = match offset {
                    0 => "i".to_owned(),
                    o if o > 0 => format!("i+{o}"),
                    o => format!("i-{}", -o),
                };
                terms.push(format!("{array}[{index}]"));
            }
            format!(
                "for (i = 8; i < {bound}; i++) {{ y[i] = {}; }}",
                terms.join(" + ")
            )
        })
        .collect()
}

/// Samples the next trace request as one NDJSON line. Shape choice is
/// hot-head skewed (squaring a uniform sample concentrates mass near
/// index 0) and the machine cycles uniformly through [`MACHINES`] and
/// [`NAMED_MACHINES`] — together a mixed-machine trace with realistic
/// reuse across both knob-shaped and description-shaped requests.
fn trace_line(rng: &mut SmallRng, shapes: &[String], id: u64) -> String {
    let skew: f64 = rng.gen();
    let shape = &shapes[((skew * skew) * shapes.len() as f64) as usize % shapes.len()];
    let choice = rng.gen_range(0usize..MACHINES.len() + NAMED_MACHINES.len());
    if let Some(&(registers, modify)) = MACHINES.get(choice) {
        format!(
            "{{\"id\":{id},\"op\":\"compile\",\"source\":\"{shape}\",\"registers\":{registers},\"modify\":{modify}}}"
        )
    } else {
        let machine = NAMED_MACHINES[choice - MACHINES.len()];
        format!(
            "{{\"id\":{id},\"op\":\"compile\",\"source\":\"{shape}\",\"machine\":\"{machine}\"}}"
        )
    }
}

// ---------------------------------------------------------------------
// The server under load
// ---------------------------------------------------------------------

/// A spawned `raco serve --tcp` child plus the address it announced.
struct SpawnedServer {
    child: Child,
    addr: String,
}

impl SpawnedServer {
    /// Spawns `binary serve --tcp 127.0.0.1:0 <extra>` and scrapes the
    /// bound address from its stderr announcement.
    fn spawn(binary: &Path, extra_args: &[String]) -> io::Result<Self> {
        let mut child = Command::new(binary)
            .arg("serve")
            .args(["--tcp", "127.0.0.1:0"])
            .args(extra_args)
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()?;
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr);
        let addr = loop {
            let mut line = String::new();
            if lines.read_line(&mut line)? == 0 {
                let _ = child.kill();
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server exited before announcing its port",
                ));
            }
            if let Some(addr) = line.trim().strip_prefix("raco serve: listening on ") {
                break addr.to_owned();
            }
        };
        // Keep draining stderr so the child can never block on a full
        // pipe (shutdown snapshots and warnings land there).
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(lines.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        Ok(SpawnedServer { child, addr })
    }

    /// Asks the server to shut down and waits for it to exit.
    fn shutdown(mut self) -> io::Result<()> {
        let mut client = Client::connect(&self.addr)?;
        let _ = client.request(r#"{"op":"shutdown"}"#);
        drop(client);
        self.child.wait()?;
        Ok(())
    }
}

impl Drop for SpawnedServer {
    fn drop(&mut self) {
        // Normal teardown goes through `shutdown`; this is the escape
        // hatch so an erroring run never leaks a server process.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One framed NDJSON connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // The trace is strictly request/response per connection, so
        // Nagle+delayed-ACK interplay would serialize every exchange
        // behind a ~40 ms timer on loopback; disable it.
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(60)))?;
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request line and reads the non-blank reply line.
    fn request(&mut self, line: &str) -> io::Result<String> {
        // One framed write: a split frame would tangle with Nagle and
        // the server's delayed ACKs even with nodelay set.
        let framed = format!("{line}\n");
        self.writer.write_all(framed.as_bytes())?;
        self.writer.flush()?;
        let mut reply = String::new();
        loop {
            reply.clear();
            if self.reader.read_line(&mut reply)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !reply.trim().is_empty() {
                return Ok(reply.trim().to_owned());
            }
        }
    }
}

// ---------------------------------------------------------------------
// The load phase
// ---------------------------------------------------------------------

/// What one worker connection accumulated.
struct WorkerStats {
    sent: u64,
    ok: u64,
    rejected: BTreeMap<String, u64>,
    transport_errors: u64,
    latency: Histogram,
}

/// Replays `quota` trace requests over one connection.
fn worker(addr: &str, shapes: &[String], seed: u64, first_id: u64, quota: u64) -> WorkerStats {
    let mut stats = WorkerStats {
        sent: 0,
        ok: 0,
        rejected: BTreeMap::new(),
        transport_errors: 0,
        latency: Histogram::new(),
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(_) => {
            stats.transport_errors += 1;
            return stats;
        }
    };
    for n in 0..quota {
        let line = trace_line(&mut rng, shapes, first_id + n);
        let started = Instant::now();
        let reply = match client.request(&line) {
            Ok(reply) => reply,
            Err(_) => {
                stats.transport_errors += 1;
                return stats;
            }
        };
        stats.latency.record(started.elapsed().as_nanos() as u64);
        stats.sent += 1;
        if reply.contains("\"ok\":true") {
            stats.ok += 1;
        } else {
            // Rejections are rare; a full parse here is fine.
            let kind = Json::parse(&reply)
                .ok()
                .and_then(|json| {
                    json.get("error_kind")
                        .and_then(Json::as_str)
                        .map(str::to_owned)
                })
                .unwrap_or_else(|| "error".to_owned());
            *stats.rejected.entry(kind).or_insert(0) += 1;
        }
    }
    stats
}

/// Measures fresh-connection latency: TCP connect through the first
/// `ping` reply, on an otherwise idle server. This is the figure the
/// accept loop's backoff (vs the old fixed 5 ms sleep) bounds.
fn connect_probes(addr: &str, probes: usize) -> HistogramSnapshot {
    let histogram = Histogram::new();
    for _ in 0..probes {
        let started = Instant::now();
        if let Ok(mut client) = Client::connect(addr) {
            if client.request(r#"{"op":"ping"}"#).is_ok() {
                histogram.record(started.elapsed().as_nanos() as u64);
            }
        }
    }
    histogram.snapshot()
}

/// Runs the whole loadgen session: (spawn +) load + probes + metrics
/// capture (+ shutdown), and writes the artifact to `config.output`.
///
/// # Errors
///
/// Returns a message for infrastructure failures — spawn/bind/connect
/// problems or an unwritable artifact path. Per-request rejections and
/// connection deaths are *results*, reported in the artifact, not
/// errors.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let spawned = match &config.addr {
        Some(_) => None,
        None => Some(
            SpawnedServer::spawn(&config.binary, &config.server_args)
                .map_err(|e| format!("loadgen: cannot spawn server: {e}"))?,
        ),
    };
    let addr = config
        .addr
        .clone()
        .unwrap_or_else(|| spawned.as_ref().expect("spawned when no addr").addr.clone());

    let shapes = shape_pool(config.shapes.max(1), config.seed);
    let connections = config.connections.max(1) as u64;
    let quota = config.requests / connections;
    let remainder = config.requests % connections;

    let started = Instant::now();
    let next_seed = AtomicU64::new(1);
    let results: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|w| {
                let quota = quota + u64::from(w < remainder);
                let first_id = w * (quota + 1);
                let seed = config.seed ^ next_seed.fetch_add(0x9e37_79b9, Ordering::Relaxed);
                let addr = &addr;
                let shapes = &shapes;
                scope.spawn(move || worker(addr, shapes, seed, first_id, quota))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let elapsed = started.elapsed();

    let latency = Histogram::new();
    let mut report = LoadgenReport {
        sent: 0,
        ok: 0,
        rejected: BTreeMap::new(),
        transport_errors: 0,
        elapsed,
        latency: empty_snapshot(),
        connect: empty_snapshot(),
        server_metrics: None,
    };
    for stats in results {
        report.sent += stats.sent;
        report.ok += stats.ok;
        report.transport_errors += stats.transport_errors;
        for (kind, n) in stats.rejected {
            *report.rejected.entry(kind).or_insert(0) += n;
        }
        latency.merge_from(&stats.latency);
    }
    report.latency = latency.snapshot();

    report.connect = connect_probes(&addr, CONNECT_PROBES);

    // Capture the server's own view (per-shard hit rates, shed and
    // deadline counters) before tearing it down.
    if let Ok(mut client) = Client::connect(&addr) {
        if let Ok(reply) = client.request(r#"{"op":"metrics"}"#) {
            report.server_metrics = Json::parse(&reply)
                .ok()
                .and_then(|json| json.get("metrics").cloned());
        }
    }

    if let Some(spawned) = spawned {
        spawned
            .shutdown()
            .map_err(|e| format!("loadgen: server shutdown failed: {e}"))?;
    }

    let mut rendered = report.to_json(config).render_pretty();
    rendered.push('\n');
    std::fs::write(&config.output, rendered)
        .map_err(|e| format!("{}: {e}", config.output.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_pool_is_deterministic_and_parses() {
        let a = shape_pool(32, 42);
        let b = shape_pool(32, 42);
        assert_eq!(a, b);
        for source in &a {
            raco_ir::dsl::parse_program(source)
                .unwrap_or_else(|e| panic!("`{source}` must parse: {e}"));
        }
        assert_ne!(a, shape_pool(32, 43), "seed changes the pool");
    }

    #[test]
    fn trace_lines_are_valid_requests() {
        let shapes = shape_pool(8, 7);
        let mut rng = SmallRng::seed_from_u64(7);
        let (mut knob_lines, mut named_lines) = (0u64, 0u64);
        for id in 0..200 {
            let line = trace_line(&mut rng, &shapes, id);
            let json = Json::parse(&line).expect("trace line is valid JSON");
            assert_eq!(json.get("op").and_then(Json::as_str), Some("compile"));
            assert_eq!(json.get("id").and_then(Json::as_u64), Some(id));
            if let Some(machine) = json.get("machine").and_then(Json::as_str) {
                named_lines += 1;
                assert!(NAMED_MACHINES.contains(&machine), "{machine}");
                assert!(
                    json.get("registers").is_none(),
                    "named lines carry no knobs"
                );
            } else {
                knob_lines += 1;
                let registers = json.get("registers").and_then(Json::as_u64).unwrap();
                assert!(MACHINES.iter().any(|(k, _)| *k as u64 == registers));
            }
        }
        assert!(
            knob_lines > 0 && named_lines > 0,
            "the trace mixes both forms"
        );
    }

    #[test]
    fn named_trace_machines_all_resolve() {
        for name in NAMED_MACHINES {
            raco_ir::MachineDescription::resolve(name)
                .unwrap_or_else(|e| panic!("`{name}` must resolve: {e}"));
        }
    }

    #[test]
    fn report_json_is_schema_versioned() {
        let config = LoadgenConfig::new(PathBuf::from("raco"));
        let report = LoadgenReport {
            sent: 10,
            ok: 9,
            rejected: BTreeMap::from([("shed".to_owned(), 1)]),
            transport_errors: 0,
            elapsed: Duration::from_millis(500),
            latency: empty_snapshot(),
            connect: empty_snapshot(),
            server_metrics: None,
        };
        let json = report.to_json(&config);
        assert_eq!(json.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(
            json.get("version").and_then(Json::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(json.get("requests").and_then(Json::as_u64), Some(10));
        let errors = json.get("errors").expect("errors object");
        assert_eq!(errors.get("rejected").and_then(Json::as_u64), Some(1));
        assert_eq!(
            errors
                .get("by_kind")
                .and_then(|k| k.get("shed"))
                .and_then(Json::as_u64),
            Some(1)
        );
        // Round-trips through the parser.
        assert!(Json::parse(&json.render_pretty()).is_ok());
        assert_eq!(report.throughput_rps(), 20.0);
    }
}
