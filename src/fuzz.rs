//! `raco fuzz` — a budgeted adversarial long-runner for the real
//! serve binary.
//!
//! The in-process proptests exercise the library; this module
//! exercises the *product*: it spawns the actual `raco` binary in
//! `serve` mode, drives it over stdio or TCP with a seeded mix of
//!
//! * valid compile requests for randomly generated DSL programs
//!   (flat loops and 2-level nests, random machine knobs or whole
//!   machine descriptions — built-in names and inline `key = value`
//!   texts),
//! * the same requests delivered in dribbled partial writes,
//! * malformed frames (truncated/corrupted JSON, wrong types, unknown
//!   ops),
//! * oversized frames beyond [`raco_serve::MAX_REQUEST_LINE`],
//! * snapshot cycles: `save_cache`, then a second server warm-booted
//!   with `--cache-load` recompiling the same program with zero misses,
//!
//! and cross-checks every compile response against an in-process
//! reference pipeline (which itself runs both validation oracles: the
//! simulator and the declarative checker of `raco-check`).
//!
//! On a failed cross-check the offending program is shrunk to a
//! minimal reproducer ([`shrink_unit`]) and written to
//! `fuzz-failures/` as a `.dsp` file plus a `.json` sidecar holding
//! the request and seed ([`write_failure`]).
//!
//! Entry point: [`run`] with a [`FuzzConfig`]; the CLI front end is
//! `raco fuzz` (see `src/bin/raco.rs`).

use std::fmt;
use std::fs;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use raco_driver::{Json, Pipeline, PipelineConfig};
use raco_ir::AguSpec;
use raco_serve::protocol;
use raco_serve::Request;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Transport the server under test listens on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// NDJSON over the child's stdin/stdout.
    Stdio,
    /// NDJSON over a TCP connection to an ephemeral port.
    Tcp,
}

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Wall-clock budget; the loop stops at the first case boundary
    /// past it.
    pub budget: Duration,
    /// Master seed. Every generated case derives from it, and every
    /// failure report carries it.
    pub seed: u64,
    /// The `raco` binary to spawn in `serve` mode.
    pub binary: PathBuf,
    /// Directory minimal reproducers are written to.
    pub failures_dir: PathBuf,
    /// Transport to drive the server over.
    pub transport: Transport,
    /// Hard cap on cases regardless of budget (`u64::MAX` = no cap).
    pub max_cases: u64,
}

impl FuzzConfig {
    /// A config with the given budget and seed, stdio transport, and
    /// `fuzz-failures/` under the current directory.
    pub fn new(binary: PathBuf, budget: Duration, seed: u64) -> Self {
        FuzzConfig {
            budget,
            seed,
            binary,
            failures_dir: PathBuf::from("fuzz-failures"),
            transport: Transport::Stdio,
            max_cases: u64::MAX,
        }
    }
}

/// One recorded failure.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Failure class (`compile-mismatch`, `malformed-handling`, …).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// Case number within the run.
    pub case: u64,
    /// Master seed of the run.
    pub seed: u64,
    /// Path of the written reproducer, when one could be written.
    pub repro: Option<PathBuf>,
}

/// Counters and failures of a finished run.
#[derive(Debug, Default)]
pub struct FuzzOutcome {
    /// Total cases executed.
    pub cases: u64,
    /// Valid compile requests sent whole-line.
    pub valid: u64,
    /// Valid compile requests delivered in dribbled partial writes.
    pub dribbled: u64,
    /// Malformed frames sent.
    pub malformed: u64,
    /// Oversized frames sent.
    pub oversized: u64,
    /// Snapshot save → warm-boot → recompile cycles executed.
    pub snapshot_cycles: u64,
    /// Every recorded failure.
    pub failures: Vec<Failure>,
}

impl fmt::Display for FuzzOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cases ({} valid, {} dribbled, {} malformed, {} oversized, {} snapshot cycles), {} failure(s)",
            self.cases,
            self.valid,
            self.dribbled,
            self.malformed,
            self.oversized,
            self.snapshot_cycles,
            self.failures.len()
        )
    }
}

// ---------------------------------------------------------------------
// Structured program generation
// ---------------------------------------------------------------------

/// One array term of a statement: `array[i+di]` (flat) or
/// `array[i+di][j+dj]` (nested).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenTerm {
    /// Index into the loop's array pool.
    pub array: usize,
    /// Offset on the (outer) induction variable.
    pub di: i64,
    /// Offset on the inner induction variable (nested loops only).
    pub dj: i64,
}

/// One statement: an optional write target and one or more read terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenStmt {
    /// `Some` renders `target = reads…;`, `None` renders `s += reads…;`.
    pub write: Option<GenTerm>,
    /// Read terms, summed left to right.
    pub reads: Vec<GenTerm>,
}

/// One generated loop (flat or a 2-level nest).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenLoop {
    /// `true` renders a 2-level nest.
    pub two_d: bool,
    /// Outer trip count (nests only).
    pub outer_trips: u64,
    /// (Inner) trip count.
    pub trips: u64,
    /// Start value of the (outer) induction variable.
    pub start: i64,
    /// Number of distinct arrays the loop draws terms from.
    pub arrays: usize,
    /// Body statements.
    pub stmts: Vec<GenStmt>,
}

/// A generated translation unit: one or more top-level loops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenUnit {
    /// The loops, rendered in order.
    pub loops: Vec<GenLoop>,
}

const ARRAY_STEMS: [&str; 4] = ["ax", "bx", "cx", "dx"];

fn array_name(loop_index: usize, array: usize) -> String {
    format!("{}{}", ARRAY_STEMS[array % ARRAY_STEMS.len()], loop_index)
}

fn render_offset(var: &str, offset: i64) -> String {
    match offset.cmp(&0) {
        std::cmp::Ordering::Equal => var.to_owned(),
        std::cmp::Ordering::Greater => format!("{var} + {offset}"),
        std::cmp::Ordering::Less => format!("{var} - {}", -offset),
    }
}

impl GenLoop {
    fn render_term(&self, loop_index: usize, term: &GenTerm) -> String {
        let name = array_name(loop_index, term.array);
        let i = format!("i{loop_index}");
        if self.two_d {
            let j = format!("j{loop_index}");
            format!(
                "{name}[{}][{}]",
                render_offset(&i, term.di),
                render_offset(&j, term.dj)
            )
        } else {
            format!("{name}[{}]", render_offset(&i, term.di))
        }
    }

    fn render(&self, loop_index: usize, out: &mut String) {
        let i = format!("i{loop_index}");
        let end = self.start
            + i64::try_from(if self.two_d {
                self.outer_trips
            } else {
                self.trips
            })
            .unwrap_or(i64::MAX);
        out.push_str(&format!(
            "for ({i} = {}; {i} < {end}; {i}++) {{\n",
            self.start
        ));
        let mut indent = "  ";
        if self.two_d {
            let j = format!("j{loop_index}");
            out.push_str(&format!(
                "  for ({j} = 0; {j} < {}; {j}++) {{\n",
                self.trips
            ));
            indent = "    ";
        }
        for stmt in &self.stmts {
            let sum: Vec<String> = stmt
                .reads
                .iter()
                .map(|term| self.render_term(loop_index, term))
                .collect();
            let sum = sum.join(" + ");
            match &stmt.write {
                Some(target) => out.push_str(&format!(
                    "{indent}{} = {sum};\n",
                    self.render_term(loop_index, target)
                )),
                None => out.push_str(&format!("{indent}s += {sum};\n")),
            }
        }
        if self.two_d {
            out.push_str("  }\n");
        }
        out.push_str("}\n");
    }
}

impl GenUnit {
    /// Renders the unit to DSL source (declarations first, then loops).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (li, l) in self.loops.iter().enumerate() {
            if !l.two_d {
                continue;
            }
            // Nested indexing needs declared shapes for linearization;
            // rows/cols cover every generated offset.
            let rows = l.start.unsigned_abs() + l.outer_trips + 2;
            let cols = l.trips + 4;
            for a in 0..l.arrays {
                out.push_str(&format!("array {}[{rows}][{cols}];\n", array_name(li, a)));
            }
        }
        for (li, l) in self.loops.iter().enumerate() {
            l.render(li, &mut out);
        }
        out
    }
}

fn gen_term(rng: &mut SmallRng, arrays: usize, two_d: bool) -> GenTerm {
    GenTerm {
        array: rng.gen_range(0..arrays),
        di: if two_d {
            rng.gen_range(0..=1)
        } else {
            rng.gen_range(-4..=4)
        },
        dj: if two_d { rng.gen_range(-2..=2) } else { 0 },
    }
}

fn gen_loop(rng: &mut SmallRng) -> GenLoop {
    let two_d = rng.gen_range(0..4u32) == 0;
    let arrays = rng.gen_range(1..=3usize);
    let stmt_count = rng.gen_range(1..=3usize);
    let mut stmts = Vec::with_capacity(stmt_count);
    for _ in 0..stmt_count {
        let read_count = rng.gen_range(1..=4usize);
        let reads = (0..read_count)
            .map(|_| gen_term(rng, arrays, two_d))
            .collect();
        let write = (rng.gen_range(0..10u32) < 3).then(|| gen_term(rng, arrays, two_d));
        stmts.push(GenStmt { write, reads });
    }
    GenLoop {
        two_d,
        outer_trips: rng.gen_range(2..=4),
        trips: if two_d {
            rng.gen_range(2..=8)
        } else {
            rng.gen_range(2..=32)
        },
        start: rng.gen_range(0..=2),
        arrays,
        stmts,
    }
}

/// Generates a random unit with 1–3 loops.
pub fn gen_unit(rng: &mut SmallRng) -> GenUnit {
    let loops = (0..rng.gen_range(1..=3usize))
        .map(|_| gen_loop(rng))
        .collect();
    GenUnit { loops }
}

/// The machine-description pool random requests draw from: built-in
/// names plus valid inline `key = value` descriptions (asymmetric
/// ranges, non-unit cost tables). Every entry must resolve.
pub const MACHINE_POOL: &[&str] = &[
    "paper",
    "tms320c2x",
    "dsp56k",
    "adsp210x",
    "bwdsp",
    "saris",
    "address_registers = 3\nupdate_min = 0\nupdate_max = 2\nmodify_registers = 1",
    "address_registers = 5\nupdate_range = 2\nlda_cost = 3\nadda_cost = 2",
];

/// Random machine knobs attached to a compile request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenKnobs {
    /// A whole machine description from [`MACHINE_POOL`]: when `Some`
    /// the request carries only the `machine` knob, when `None` it
    /// carries the numeric knobs below.
    pub machine: Option<&'static str>,
    /// Address registers (K).
    pub registers: usize,
    /// Auto-modify range (M).
    pub modify: u32,
    /// Modify registers.
    pub modify_registers: usize,
}

/// Generates random machine knobs: one request in three compiles for a
/// whole description, the rest for numeric knob combinations.
pub fn gen_knobs(rng: &mut SmallRng) -> GenKnobs {
    let machine =
        (rng.gen_range(0..3u32) == 0).then(|| MACHINE_POOL[rng.gen_range(0..MACHINE_POOL.len())]);
    GenKnobs {
        machine,
        registers: rng.gen_range(1..=6),
        modify: rng.gen_range(0..=2),
        modify_registers: rng.gen_range(0..=2),
    }
}

/// Builds the NDJSON compile request line for a unit + knobs.
pub fn compile_request(id: u64, source: &str, knobs: &GenKnobs) -> String {
    let mut fields = vec![
        ("id".to_owned(), Json::UInt(id)),
        ("op".to_owned(), Json::str("compile")),
        ("name".to_owned(), Json::str("fuzz")),
        ("source".to_owned(), Json::str(source)),
    ];
    match knobs.machine {
        Some(machine) => fields.push(("machine".to_owned(), Json::str(machine))),
        None => fields.extend([
            ("registers".to_owned(), Json::UInt(knobs.registers as u64)),
            ("modify".to_owned(), Json::UInt(u64::from(knobs.modify))),
            (
                "modify_registers".to_owned(),
                Json::UInt(knobs.modify_registers as u64),
            ),
        ]),
    }
    fields.push(("validate".to_owned(), Json::Bool(true)));
    Json::Obj(fields).render()
}

// ---------------------------------------------------------------------
// Reference compile + cross-check
// ---------------------------------------------------------------------

/// The base configuration the server under test runs with (`raco
/// serve` defaults: K = 4, M = 1, no modify registers).
pub fn base_config() -> PipelineConfig {
    PipelineConfig::new(AguSpec::new(4, 1).expect("valid default machine"))
}

/// Compiles the request in-process with a fresh pipeline and returns
/// the deterministic subtrees of the report (`units`, `machine`) as
/// rendered JSON.
///
/// The request line is parsed with the *same* protocol code the server
/// uses, so knob interpretation cannot drift; the compile itself runs
/// in this process on a cold cache, so cache state cannot leak into
/// the comparison.
pub fn reference_reply(
    request_line: &str,
    base: &PipelineConfig,
) -> Result<(String, String), String> {
    let envelope = protocol::parse_line(request_line)
        .map_err(|e| format!("reference parse: {}", e.message))?;
    let Request::Compile { name, source } = envelope.request else {
        return Err("reference: not a compile request".to_owned());
    };
    let config = envelope
        .knobs
        .apply(base)
        .map_err(|e| format!("reference knobs: {e}"))?;
    let pipeline = Pipeline::with_config(config);
    let report = pipeline
        .compile_str(&name, &source)
        .map_err(|e| format!("reference compile: {e}"))?;
    let json = report.to_json_value();
    let units = json
        .get("units")
        .ok_or("reference report has no units")?
        .render();
    let machine = json
        .get("machine")
        .ok_or("reference report has no machine")?
        .render();
    Ok((units, machine))
}

/// Cross-checks a server reply against the in-process reference.
pub fn cross_check(reply: &str, request_line: &str, base: &PipelineConfig) -> Result<(), String> {
    let json = Json::parse(reply).map_err(|e| format!("unparseable reply: {e}"))?;
    if json.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("server rejected a valid request: {reply}"));
    }
    let report = json.get("report").ok_or("reply has no report")?;
    let server_units = report.get("units").ok_or("reply has no units")?.render();
    let server_machine = report
        .get("machine")
        .ok_or("reply has no machine")?
        .render();
    let (ref_units, ref_machine) = reference_reply(request_line, base)?;
    if server_machine != ref_machine {
        return Err(format!(
            "machine mismatch:\n  server:    {server_machine}\n  reference: {ref_machine}"
        ));
    }
    if server_units != ref_units {
        return Err(format!(
            "units mismatch:\n  server:    {server_units}\n  reference: {ref_units}"
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// Greedily shrinks `unit` while `still_fails` keeps returning `true`,
/// evaluating at most `max_evals` candidates.
///
/// Passes, in order of aggressiveness: drop a loop, flatten a nest,
/// shrink trip counts, drop a statement, drop a read term, drop a
/// write target, zero an offset, zero the start. Restarts from the
/// first pass after every accepted candidate, so the result is a local
/// minimum under all passes.
pub fn shrink_unit<F>(unit: &GenUnit, mut still_fails: F, max_evals: usize) -> GenUnit
where
    F: FnMut(&GenUnit) -> bool,
{
    let mut best = unit.clone();
    let mut evals = 0usize;
    'outer: loop {
        for candidate in shrink_candidates(&best) {
            if evals >= max_evals {
                break 'outer;
            }
            evals += 1;
            if still_fails(&candidate) {
                best = candidate;
                continue 'outer;
            }
        }
        break;
    }
    best
}

fn shrink_candidates(unit: &GenUnit) -> Vec<GenUnit> {
    let mut out = Vec::new();
    // Drop a whole loop.
    if unit.loops.len() > 1 {
        for i in 0..unit.loops.len() {
            let mut u = unit.clone();
            u.loops.remove(i);
            out.push(u);
        }
    }
    for (li, l) in unit.loops.iter().enumerate() {
        // Flatten a nest.
        if l.two_d {
            let mut u = unit.clone();
            let flat = &mut u.loops[li];
            flat.two_d = false;
            for stmt in &mut flat.stmts {
                for term in stmt.reads.iter_mut().chain(stmt.write.iter_mut()) {
                    term.dj = 0;
                }
            }
            out.push(u);
        }
        // Shrink trip counts.
        if l.trips > 4 {
            let mut u = unit.clone();
            u.loops[li].trips = 4;
            out.push(u);
        }
        if l.two_d && l.outer_trips > 2 {
            let mut u = unit.clone();
            u.loops[li].outer_trips = 2;
            out.push(u);
        }
        // Drop a statement.
        if l.stmts.len() > 1 {
            for si in 0..l.stmts.len() {
                let mut u = unit.clone();
                u.loops[li].stmts.remove(si);
                out.push(u);
            }
        }
        for (si, stmt) in l.stmts.iter().enumerate() {
            // Drop a read term.
            if stmt.reads.len() > 1 {
                for ti in 0..stmt.reads.len() {
                    let mut u = unit.clone();
                    u.loops[li].stmts[si].reads.remove(ti);
                    out.push(u);
                }
            }
            // Drop the write target.
            if stmt.write.is_some() {
                let mut u = unit.clone();
                u.loops[li].stmts[si].write = None;
                out.push(u);
            }
            // Zero offsets.
            for (ti, term) in stmt.reads.iter().enumerate() {
                if term.di != 0 || term.dj != 0 {
                    let mut u = unit.clone();
                    let t = &mut u.loops[li].stmts[si].reads[ti];
                    t.di = 0;
                    t.dj = 0;
                    out.push(u);
                }
            }
        }
        if l.start != 0 {
            let mut u = unit.clone();
            u.loops[li].start = 0;
            out.push(u);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Reproducer files
// ---------------------------------------------------------------------

/// Writes a minimal reproducer: `<kind>-<seed>-<case>.dsp` with the
/// shrunk source (when there is one) and a `.json` sidecar with the
/// offending request, seed, and detail. Returns the primary path.
pub fn write_failure(
    dir: &Path,
    kind: &str,
    seed: u64,
    case: u64,
    source: Option<&str>,
    request: &str,
    detail: &str,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let stem = format!("{kind}-{seed:#x}-{case}");
    let sidecar = Json::Obj(vec![
        ("kind".to_owned(), Json::str(kind)),
        ("seed".to_owned(), Json::UInt(seed)),
        ("case".to_owned(), Json::UInt(case)),
        ("detail".to_owned(), Json::str(detail)),
        ("request".to_owned(), Json::str(request)),
    ]);
    let json_path = dir.join(format!("{stem}.json"));
    fs::write(&json_path, sidecar.render_pretty())?;
    match source {
        Some(source) => {
            let dsp_path = dir.join(format!("{stem}.dsp"));
            let mut contents = format!(
                "// raco fuzz reproducer — kind {kind}, seed {seed:#x}, case {case}\n\
                 // request JSON: {stem}.json\n"
            );
            contents.push_str(source);
            fs::write(&dsp_path, contents)?;
            Ok(dsp_path)
        }
        None => Ok(json_path),
    }
}

// ---------------------------------------------------------------------
// The server under test
// ---------------------------------------------------------------------

/// A spawned `raco serve` process with a framed NDJSON connection.
pub struct ServerUnderTest {
    child: Child,
    writer: Box<dyn Write + Send>,
    reader: BufReader<Box<dyn Read + Send>>,
}

impl ServerUnderTest {
    /// Spawns `binary serve` over `transport` with extra CLI args
    /// (e.g. `--cache-load <path>`).
    pub fn spawn(binary: &Path, transport: Transport, extra_args: &[String]) -> io::Result<Self> {
        let mut command = Command::new(binary);
        command.arg("serve");
        match transport {
            Transport::Stdio => {
                command
                    .arg("--stdio")
                    .args(extra_args)
                    .stdin(Stdio::piped())
                    .stdout(Stdio::piped())
                    .stderr(Stdio::null());
                let mut child = command.spawn()?;
                let writer = Box::new(child.stdin.take().expect("piped stdin"));
                let reader =
                    BufReader::new(Box::new(child.stdout.take().expect("piped stdout"))
                        as Box<dyn Read + Send>);
                Ok(ServerUnderTest {
                    child,
                    writer,
                    reader,
                })
            }
            Transport::Tcp => {
                command
                    .args(["--tcp", "127.0.0.1:0"])
                    .args(extra_args)
                    .stdin(Stdio::null())
                    .stdout(Stdio::null())
                    .stderr(Stdio::piped());
                let mut child = command.spawn()?;
                let stderr = child.stderr.take().expect("piped stderr");
                let mut lines = BufReader::new(stderr);
                let addr = loop {
                    let mut line = String::new();
                    if lines.read_line(&mut line)? == 0 {
                        let _ = child.kill();
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server exited before announcing its port",
                        ));
                    }
                    if let Some(addr) = line.trim().strip_prefix("raco serve: listening on ") {
                        break addr.to_owned();
                    }
                };
                // Keep draining stderr so the child can never block on
                // a full pipe.
                std::thread::spawn(move || {
                    let mut sink = String::new();
                    let mut lines = lines;
                    while matches!(lines.read_line(&mut sink), Ok(n) if n > 0) {
                        sink.clear();
                    }
                });
                let stream = TcpStream::connect(&addr)?;
                stream.set_read_timeout(Some(Duration::from_secs(30)))?;
                let writer = Box::new(stream.try_clone()?);
                let reader = BufReader::new(Box::new(stream) as Box<dyn Read + Send>);
                Ok(ServerUnderTest {
                    child,
                    writer,
                    reader,
                })
            }
        }
    }

    /// Sends raw bytes (no framing added).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Reads one non-blank reply line.
    pub fn read_reply(&mut self) -> io::Result<String> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            if !line.trim().is_empty() {
                return Ok(line.trim().to_owned());
            }
        }
    }

    /// Sends one whole request line and reads the reply.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.send_raw(format!("{line}\n").as_bytes())?;
        self.read_reply()
    }

    /// Sends the request in `chunk`-byte partial writes (each flushed
    /// separately) and reads the reply. Exercises the server's partial-
    /// frame handling the way a congested peer would.
    pub fn request_dribbled(&mut self, line: &str, chunk: usize) -> io::Result<String> {
        let framed = format!("{line}\n");
        for piece in framed.as_bytes().chunks(chunk.max(1)) {
            self.writer.write_all(piece)?;
            self.writer.flush()?;
        }
        self.read_reply()
    }

    /// Requests shutdown and waits for the process to exit.
    pub fn shutdown(mut self) -> io::Result<()> {
        let _ = self.request(r#"{"op":"shutdown"}"#);
        // Close our side of the connection so a stdio server sees EOF.
        let _ = std::mem::replace(&mut self.writer, Box::new(io::sink()));
        self.child.wait()?;
        Ok(())
    }
}

impl Drop for ServerUnderTest {
    fn drop(&mut self) {
        // Normal teardown goes through `shutdown`; this is the escape
        // hatch so a panicking fuzz run never leaks a server process.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

// ---------------------------------------------------------------------
// The budgeted loop
// ---------------------------------------------------------------------

const MAX_FAILURES: usize = 3;
const SHRINK_EVALS: usize = 200;

fn ping_ok(server: &mut ServerUnderTest) -> Result<(), String> {
    let reply = server
        .request(r#"{"op":"ping","id":"live"}"#)
        .map_err(|e| format!("ping transport error: {e}"))?;
    let json = Json::parse(&reply).map_err(|e| format!("unparseable ping reply: {e}"))?;
    if json.get("ok") == Some(&Json::Bool(true)) {
        Ok(())
    } else {
        Err(format!("ping rejected: {reply}"))
    }
}

fn malformed_frame(rng: &mut SmallRng, valid: &str) -> String {
    const CORPUS: &[&str] = &[
        "{",
        "}",
        "not json at all",
        "[1,2,3]",
        "42",
        "\"op\"",
        r#"{"op":"warp"}"#,
        r#"{"op":42}"#,
        r#"{"op":"compile"}"#,
        r#"{"op":"compile","source":7}"#,
        r#"{"op":"compile","source":"for (i","name":false}"#,
        r#"{"op":"compile","source":"for (i = 0; i < 4; i++) { s += x[i]; }","registers":"four"}"#,
        r#"{"op":"compile","source":"for (i = 0; i < 4; i++) { s += x[i]; }","registers":0}"#,
        r#"{"op":"compile","source":"for (i = 0; i < 4; i++) { s += x[i]; }","machine":"warpdsp"}"#,
        r#"{"op":"compile","source":"for (i = 0; i < 4; i++) { s += x[i]; }","machine":17}"#,
        r#"{"op":"compile","source":"for (i = 0; i < 4; i++) { s += x[i]; }","machine":"address_registers = 0"}"#,
        r#"{"op":"compile","source":"for (i = 0; i < 4; i++) { s += x[i]; }","machine":"address_registers = 4\nupdate_min = 1\nupdate_max = 2"}"#,
        r#"{"op":"compile","source":"for (i = 0; i < 4; i++) { s += x[i]; }","machine":"address_registers = 4\nwhat"}"#,
        r#"{"op":"compile","source":"for (i = 0; i < 4; i++) { s += x[i]; }","machine":"address_registers = 4\nadda_cost = 99999"}"#,
        r#"{"op":"save_cache"}"#,
        r#"{"op":"kernels","kernel":17}"#,
    ];
    match rng.gen_range(0..3u32) {
        0 => CORPUS[rng.gen_range(0..CORPUS.len())].to_owned(),
        1 => {
            // Truncate a valid request at a random byte (on a char
            // boundary; generated requests are ASCII).
            let cut = rng.gen_range(1..valid.len().max(2));
            valid.chars().take(cut).collect()
        }
        _ => {
            // Corrupt one byte of a valid request.
            let mut bytes: Vec<char> = valid.chars().collect();
            let at = rng.gen_range(0..bytes.len());
            bytes[at] = char::from(rng.gen_range(33u8..127));
            bytes.into_iter().collect()
        }
    }
}

/// Runs one budgeted fuzz session against the real serve binary.
///
/// # Errors
///
/// Only infrastructure errors (spawn failures, a dead server) surface
/// as `Err`; cross-check failures are recorded in the outcome.
pub fn run(config: &FuzzConfig) -> io::Result<FuzzOutcome> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let base = base_config();
    let mut server = ServerUnderTest::spawn(&config.binary, config.transport, &[])?;
    let mut outcome = FuzzOutcome::default();
    let mut last_valid: Option<(GenUnit, GenKnobs)> = None;
    let started = Instant::now();

    while started.elapsed() < config.budget
        && outcome.cases < config.max_cases
        && outcome.failures.len() < MAX_FAILURES
    {
        outcome.cases += 1;
        let case = outcome.cases;
        let roll = rng.gen_range(0..100u32);
        if roll < 60 || (roll >= 92 && last_valid.is_none()) {
            // Valid compile, whole-line.
            let unit = gen_unit(&mut rng);
            let knobs = gen_knobs(&mut rng);
            run_compile_case(
                &mut server,
                &unit,
                &knobs,
                case,
                false,
                &base,
                config,
                &mut outcome,
            )?;
            last_valid = Some((unit, knobs));
            outcome.valid += 1;
        } else if roll < 72 {
            // Valid compile, dribbled delivery.
            let unit = gen_unit(&mut rng);
            let knobs = gen_knobs(&mut rng);
            run_compile_case(
                &mut server,
                &unit,
                &knobs,
                case,
                true,
                &base,
                config,
                &mut outcome,
            )?;
            last_valid = Some((unit, knobs));
            outcome.dribbled += 1;
        } else if roll < 84 {
            // Malformed frame; the server must reply and stay usable.
            let unit = gen_unit(&mut rng);
            let knobs = gen_knobs(&mut rng);
            let valid = compile_request(case, &unit.render(), &knobs);
            let frame = malformed_frame(&mut rng, &valid);
            outcome.malformed += 1;
            let verdict = if frame.trim().is_empty() {
                // Blank lines are skipped by protocol; just confirm
                // liveness.
                server
                    .send_raw(format!("{frame}\n").as_bytes())
                    .map_err(|e| format!("send: {e}"))
                    .and_then(|()| ping_ok(&mut server))
            } else {
                server
                    .request(&frame)
                    .map_err(|e| format!("transport error: {e}"))
                    .and_then(|reply| {
                        Json::parse(&reply)
                            .map_err(|e| {
                                format!("unparseable reply to malformed frame: {e} ({reply})")
                            })
                            .map(|_| ())
                    })
                    .and_then(|()| ping_ok(&mut server))
            };
            if let Err(detail) = verdict {
                record_failure(
                    config,
                    &mut outcome,
                    "malformed-handling",
                    case,
                    None,
                    &frame,
                    &detail,
                );
            }
        } else if roll < 92 {
            // Oversized frame: must be rejected with the connection
            // left usable.
            outcome.oversized += 1;
            let oversized = "x".repeat(raco_serve::MAX_REQUEST_LINE + 1024);
            let verdict = server
                .request(&oversized)
                .map_err(|e| format!("transport error: {e}"))
                .and_then(|reply| {
                    let json = Json::parse(&reply)
                        .map_err(|e| format!("unparseable oversized reply: {e}"))?;
                    if json.get("ok") == Some(&Json::Bool(false)) {
                        Ok(())
                    } else {
                        Err(format!("oversized frame not rejected: {reply}"))
                    }
                })
                .and_then(|()| ping_ok(&mut server));
            if let Err(detail) = verdict {
                record_failure(
                    config,
                    &mut outcome,
                    "oversized-handling",
                    case,
                    None,
                    "<1 MiB + 1024 bytes of 'x'>",
                    &detail,
                );
            }
        } else {
            // Snapshot cycle: save, warm-boot a second server from the
            // snapshot, recompile, verify zero misses.
            let (unit, knobs) = last_valid.clone().expect("guarded by the first arm");
            outcome.snapshot_cycles += 1;
            if let Err(detail) = snapshot_cycle(&mut server, &unit, &knobs, case, &base, config) {
                let request = compile_request(case, &unit.render(), &knobs);
                record_failure(
                    config,
                    &mut outcome,
                    "snapshot-cycle",
                    case,
                    Some(&unit.render()),
                    &request,
                    &detail,
                );
            }
        }
    }

    server.shutdown()?;
    Ok(outcome)
}

#[allow(clippy::too_many_arguments)]
fn run_compile_case(
    server: &mut ServerUnderTest,
    unit: &GenUnit,
    knobs: &GenKnobs,
    case: u64,
    dribble: bool,
    base: &PipelineConfig,
    config: &FuzzConfig,
    outcome: &mut FuzzOutcome,
) -> io::Result<()> {
    let request = compile_request(case, &unit.render(), knobs);
    let reply = if dribble {
        let chunk = [1usize, 3, 7][(case % 3) as usize];
        server.request_dribbled(&request, chunk)?
    } else {
        server.request(&request)?
    };
    if let Err(detail) = cross_check(&reply, &request, base) {
        // Shrink against the live server: the failure must keep
        // reproducing over the same transport.
        let mut knobs = *knobs;
        let minimal = shrink_unit(
            unit,
            |candidate| {
                let request = compile_request(case, &candidate.render(), &knobs);
                match server.request(&request) {
                    Ok(reply) => cross_check(&reply, &request, base).is_err(),
                    Err(_) => false,
                }
            },
            SHRINK_EVALS,
        );
        // Minimize the machine dimension too: if the mismatch survives
        // without the description (server defaults), drop it from the
        // repro.
        if knobs.machine.is_some() {
            let stripped = GenKnobs {
                machine: None,
                ..knobs
            };
            let request = compile_request(case, &minimal.render(), &stripped);
            if matches!(server.request(&request),
                        Ok(reply) if cross_check(&reply, &request, base).is_err())
            {
                knobs = stripped;
            }
        }
        let minimal_request = compile_request(case, &minimal.render(), &knobs);
        record_failure(
            config,
            outcome,
            "compile-mismatch",
            case,
            Some(&minimal.render()),
            &minimal_request,
            &detail,
        );
    }
    Ok(())
}

fn snapshot_cycle(
    server: &mut ServerUnderTest,
    unit: &GenUnit,
    knobs: &GenKnobs,
    case: u64,
    base: &PipelineConfig,
    config: &FuzzConfig,
) -> Result<(), String> {
    let snap_path = std::env::temp_dir().join(format!(
        "raco-fuzz-snap-{:x}-{case}-{}.bin",
        config.seed,
        std::process::id()
    ));
    let save = Json::Obj(vec![
        ("id".to_owned(), Json::UInt(case)),
        ("op".to_owned(), Json::str("save_cache")),
        (
            "path".to_owned(),
            Json::str(snap_path.display().to_string()),
        ),
    ])
    .render();
    let result = (|| {
        let reply = server.request(&save).map_err(|e| format!("save: {e}"))?;
        let json = Json::parse(&reply).map_err(|e| format!("save reply: {e}"))?;
        if json.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("save_cache rejected: {reply}"));
        }
        let mut warm = ServerUnderTest::spawn(
            &config.binary,
            config.transport,
            &["--cache-load".to_owned(), snap_path.display().to_string()],
        )
        .map_err(|e| format!("warm spawn: {e}"))?;
        let verdict = (|| {
            let request = compile_request(case, &unit.render(), knobs);
            let reply = warm
                .request(&request)
                .map_err(|e| format!("warm compile: {e}"))?;
            cross_check(&reply, &request, base).map_err(|e| format!("warm {e}"))?;
            let stats_reply = warm
                .request(r#"{"op":"stats"}"#)
                .map_err(|e| format!("warm stats: {e}"))?;
            let stats = Json::parse(&stats_reply).map_err(|e| format!("warm stats reply: {e}"))?;
            let stats = stats
                .get("stats")
                .cloned()
                .ok_or("warm reply has no stats")?;
            let misses = stats
                .get("allocation_misses")
                .and_then(Json::as_u64)
                .ok_or("stats missing allocation_misses")?;
            let loaded = stats.get("loaded").and_then(Json::as_u64).unwrap_or(0);
            if loaded == 0 {
                return Err(format!("warm boot loaded nothing: {stats_reply}"));
            }
            if misses != 0 {
                return Err(format!(
                    "warm recompile of a snapshotted program missed the cache \
                     {misses} time(s): {stats_reply}"
                ));
            }
            Ok(())
        })();
        let shutdown = warm.shutdown().map_err(|e| format!("warm shutdown: {e}"));
        verdict.and(shutdown)
    })();
    let _ = fs::remove_file(&snap_path);
    result
}

fn record_failure(
    config: &FuzzConfig,
    outcome: &mut FuzzOutcome,
    kind: &str,
    case: u64,
    source: Option<&str>,
    request: &str,
    detail: &str,
) {
    let repro = write_failure(
        &config.failures_dir,
        kind,
        config.seed,
        case,
        source,
        request,
        detail,
    )
    .ok();
    outcome.failures.push(Failure {
        kind: kind.to_owned(),
        detail: detail.to_owned(),
        case,
        seed: config.seed,
        repro,
    });
}

/// Parses a human budget string: `45s`, `2m`, `500ms`, or bare
/// seconds.
pub fn parse_budget(text: &str) -> Result<Duration, String> {
    let text = text.trim();
    let (digits, unit) = match text.find(|c: char| !c.is_ascii_digit()) {
        Some(at) => text.split_at(at),
        None => (text, "s"),
    };
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("invalid budget `{text}`"))?;
    match unit {
        "ms" => Ok(Duration::from_millis(value)),
        "s" | "" => Ok(Duration::from_secs(value)),
        "m" => Ok(Duration::from_secs(value * 60)),
        _ => Err(format!("invalid budget unit `{unit}` in `{text}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_units_are_valid_dsl() {
        // Every generated program must get through the real parser and
        // lowering — reference compile errors would poison every
        // cross-check downstream.
        let mut rng = SmallRng::seed_from_u64(7);
        let base = base_config();
        for case in 0..60u64 {
            let unit = gen_unit(&mut rng);
            let knobs = gen_knobs(&mut rng);
            let request = compile_request(case, &unit.render(), &knobs);
            let reference = reference_reply(&request, &base);
            assert!(
                reference.is_ok(),
                "case {case} failed: {:?}\nsource:\n{}",
                reference,
                unit.render()
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(gen_unit(&mut a), gen_unit(&mut b));
            assert_eq!(gen_knobs(&mut a), gen_knobs(&mut b));
        }
    }

    #[test]
    fn shrinker_reaches_a_minimal_failing_unit() {
        // Failure predicate: the unit still contains an access to
        // array 0 with |di| >= 3. The shrinker must strip everything
        // else and keep one offending term.
        let mut rng = SmallRng::seed_from_u64(3);
        let unit = loop {
            let unit = gen_unit(&mut rng);
            let offending = unit
                .loops
                .iter()
                .flat_map(|l| &l.stmts)
                .any(|s| s.reads.iter().any(|t| t.array == 0 && t.di.abs() >= 3));
            if offending && unit.loops.len() > 1 {
                break unit;
            }
        };
        let fails = |u: &GenUnit| {
            u.loops
                .iter()
                .flat_map(|l| &l.stmts)
                .any(|s| s.reads.iter().any(|t| t.array == 0 && t.di.abs() >= 3))
        };
        let minimal = shrink_unit(&unit, fails, 500);
        assert!(fails(&minimal), "shrinking must preserve the failure");
        assert_eq!(minimal.loops.len(), 1, "all but one loop dropped");
        assert_eq!(minimal.loops[0].stmts.len(), 1, "all but one stmt dropped");
        assert_eq!(
            minimal.loops[0].stmts[0].reads.len(),
            1,
            "all but one term dropped"
        );
        assert!(minimal.loops[0].stmts[0].write.is_none());
    }

    #[test]
    fn machine_pool_entries_all_resolve() {
        for entry in MACHINE_POOL {
            raco_ir::MachineDescription::resolve(entry)
                .unwrap_or_else(|e| panic!("pool entry {entry:?} must resolve: {e}"));
        }
    }

    #[test]
    fn malformed_machine_descriptions_fail_with_positioned_errors() {
        // Every malformed-machine corpus row must be rejected by the
        // protocol layer (the serve loop turns this into an `ok:false`
        // reply), not crash the reference pipeline.
        let base = base_config();
        for text in [
            "warpdsp",
            "address_registers = 0",
            "address_registers = 4\nupdate_min = 1\nupdate_max = 2",
            "address_registers = 4\nwhat",
            "address_registers = 4\nadda_cost = 99999",
        ] {
            let request = Json::Obj(vec![
                ("op".to_owned(), Json::str("compile")),
                (
                    "source".to_owned(),
                    Json::str("for (i = 0; i < 4; i++) { s += x[i]; }"),
                ),
                ("machine".to_owned(), Json::str(text)),
            ])
            .render();
            let envelope = protocol::parse_line(&request).expect("frame itself is well-formed");
            let err = envelope
                .knobs
                .apply(&base)
                .expect_err("malformed description must be rejected");
            assert!(
                err.contains("machine"),
                "error names the machine dimension: {err}"
            );
        }
    }

    #[test]
    fn budget_strings_parse() {
        assert_eq!(parse_budget("45s").unwrap(), Duration::from_secs(45));
        assert_eq!(parse_budget("45").unwrap(), Duration::from_secs(45));
        assert_eq!(parse_budget("2m").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_budget("500ms").unwrap(), Duration::from_millis(500));
        assert!(parse_budget("ten").is_err());
        assert!(parse_budget("10h").is_err());
    }

    #[test]
    fn failure_files_carry_source_request_and_seed() {
        let dir = std::env::temp_dir().join(format!("raco-fuzz-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = write_failure(
            &dir,
            "compile-mismatch",
            0xabc,
            7,
            Some("for (i = 0; i < 4; i++) { s += x[i]; }\n"),
            r#"{"op":"compile"}"#,
            "units mismatch",
        )
        .unwrap();
        assert!(path.extension().is_some_and(|e| e == "dsp"));
        let dsp = fs::read_to_string(&path).unwrap();
        assert!(dsp.contains("seed 0xabc"));
        assert!(dsp.contains("s += x[i]"));
        let sidecar = fs::read_to_string(path.with_extension("json")).unwrap();
        assert!(sidecar.contains("compile-mismatch"));
        assert!(sidecar.contains(r#"\"op\":\"compile\""#));
        fs::remove_dir_all(&dir).unwrap();
    }
}
