//! `raco` — the batch compilation CLI.
//!
//! ```text
//! raco compile <path>… [options]   compile DSL files / directories
//! raco kernels [options]           compile the built-in kernel suite
//! raco serve [options]             long-lived NDJSON compile service
//! raco loadgen [options]           replay a mixed-machine trace against `raco serve`
//! raco fuzz [options]              adversarial long-runner against `raco serve`
//! raco bench-trajectory [options]  run the pipeline benchmark suite
//! raco help                        this text
//! ```
//!
//! Options:
//!
//! ```text
//!     --machine <name|file>  built-in machine description (paper,
//!                        tms320c2x, dsp56k, adsp210x, bwdsp, saris), a
//!                        path to a `key = value` description file, or an
//!                        inline description string
//! -k, --registers <K>    address registers (default 4)
//! -m, --modify <M>       auto-modify range (default 1)
//!     --modify-regs <N>  modify registers (default 0)
//! -j, --threads <T>      worker threads (default: all cores; 1 = sequential)
//!     --iterations <N>   simulated iterations per loop (default 16)
//!     --no-cache         disable the allocation cache
//!     --no-validate      skip simulator validation
//!     --cache-load <f>   warm the allocation cache from a snapshot file
//!     --cache-save <f>   snapshot the warm cache when done (serve: on
//!                        graceful shutdown and on `save_cache` requests)
//!     --listing          print assembled per-unit listings
//!     --timings          print the per-stage pipeline timing table
//!     --json             print the JSON report to stdout
//! -o, --output <file>    write the JSON report to a file
//!     --quiet            suppress the table (useful with --json)
//!
//! serve-only:
//!     --stdio            serve stdin/stdout (the default transport)
//!     --tcp <addr>       serve TCP connections on <addr> (e.g. 127.0.0.1:4750)
//!     --cache-max <N>    bound the allocation cache at ~N entries (FIFO eviction)
//!     --shards <N>       shard workers, each with its own cache (default 0 = cores)
//!     --queue-depth <N>  queued requests per shard before shedding (default 256)
//!     --read-deadline <ms>     reap connections with no complete request
//!                              within <ms> (default 10000; 0 disables)
//!     --compute-deadline <ms>  answer `compute_deadline` when a compile
//!                              outruns <ms> (default 30000; 0 disables)
//!     --max-connections <N>    refuse connections past N with `busy` (default 1024)
//!
//! loadgen-only (plus the serve knobs above, forwarded to the spawned server):
//!     --tcp <addr>       attack a running server instead of spawning one
//!     --requests <N>     total requests to replay (default 100000)
//!     --connections <N>  concurrent client connections (default 8)
//!     --shapes <N>       distinct loop shapes in the trace (default 64)
//!     --seed <N>         trace seed (fully deterministic per seed)
//!     --label <s>        label stamped into BENCH_serve.json
//! -o, --output <file>    artifact path (default BENCH_serve.json)
//!
//! fuzz-only:
//!     --budget <dur>     wall-clock budget, e.g. 45s, 2m, 500ms (default 45s)
//!     --seed <N>         master seed (default: derived from the clock)
//!     --max-cases <N>    stop after N cases even if budget remains
//!     --failures-dir <d> where minimal repros go (default fuzz-failures/)
//!     --transport <t>    stdio (default) or tcp
//!
//! bench-trajectory-only:
//!     --quick            fewer samples (CI smoke mode)
//!     --label <s>        label stamped into the report (default "local")
//! ```
//!
//! Exit status (uniform across subcommands):
//!
//! * `0` — success: every loop compiled (and validated); for `serve`,
//!   a clean shutdown or end of input.
//! * `1` — at least one loop failed to compile or validate.
//! * `2` — usage, parse or I/O errors (nothing was compiled).

use std::path::PathBuf;
use std::process::ExitCode;

use raco::driver::{CachePolicy, CompilationReport, Parallelism, Pipeline, PipelineConfig};
use raco::ir::{AguSpec, MachineDescription, UpdateRange};
use raco::serve::{ServeOptions, Server};

#[derive(Debug)]
struct CliOptions {
    machine: Option<String>,
    registers: Option<usize>,
    modify_range: Option<u32>,
    modify_registers: Option<usize>,
    threads: Option<usize>,
    iterations: u64,
    cache: bool,
    validate: bool,
    listing: bool,
    timings: bool,
    quick: bool,
    label: Option<String>,
    json: bool,
    output: Option<PathBuf>,
    quiet: bool,
    stdio: bool,
    tcp: Option<String>,
    cache_max: Option<usize>,
    shards: Option<usize>,
    read_deadline_ms: Option<u64>,
    compute_deadline_ms: Option<u64>,
    queue_depth: Option<usize>,
    max_connections: Option<usize>,
    requests: Option<u64>,
    connections: Option<usize>,
    shapes: Option<usize>,
    cache_load: Option<PathBuf>,
    cache_save: Option<PathBuf>,
    budget: Option<String>,
    seed: Option<u64>,
    max_cases: Option<u64>,
    failures_dir: Option<PathBuf>,
    transport: Option<String>,
    paths: Vec<PathBuf>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            machine: None,
            registers: None,
            modify_range: None,
            modify_registers: None,
            threads: None,
            iterations: 16,
            cache: true,
            validate: true,
            listing: false,
            timings: false,
            quick: false,
            label: None,
            json: false,
            output: None,
            quiet: false,
            stdio: false,
            tcp: None,
            cache_max: None,
            shards: None,
            read_deadline_ms: None,
            compute_deadline_ms: None,
            queue_depth: None,
            max_connections: None,
            requests: None,
            connections: None,
            shapes: None,
            cache_load: None,
            cache_save: None,
            budget: None,
            seed: None,
            max_cases: None,
            failures_dir: None,
            transport: None,
            paths: Vec::new(),
        }
    }
}

fn usage() -> &'static str {
    "raco — register-constrained address computation (DATE 1998)\n\
     \n\
     usage:\n\
     \x20 raco compile <path>… [options]   compile DSL files / directories\n\
     \x20 raco kernels [options]           compile the built-in kernel suite\n\
     \x20 raco serve [options]             long-lived NDJSON compile service\n\
     \x20 raco loadgen [options]           replay a mixed-machine trace against `raco serve`\n\
     \x20 raco fuzz [options]              adversarial long-runner against `raco serve`\n\
     \x20 raco bench-trajectory [options]  run the pipeline benchmark suite\n\
     \x20 raco help                        this text\n\
     \n\
     options:\n\
     \x20     --machine <m>      machine description: a built-in name (paper,\n\
     \x20                        tms320c2x, dsp56k, adsp210x, bwdsp, saris),\n\
     \x20                        a description file, or an inline description;\n\
     \x20                        -k/-m/--modify-regs override on top\n\
     \x20 -k, --registers <K>    address registers (default 4)\n\
     \x20 -m, --modify <M>       auto-modify range (default 1)\n\
     \x20     --modify-regs <N>  modify registers (default 0)\n\
     \x20 -j, --threads <T>      worker threads (default: all cores)\n\
     \x20     --iterations <N>   simulated iterations per loop (default 16)\n\
     \x20     --no-cache         disable the allocation cache\n\
     \x20     --no-validate      skip simulator validation\n\
     \x20     --cache-load <f>   warm the allocation cache from a snapshot file\n\
     \x20     --cache-save <f>   snapshot the warm cache when done (serve: on\n\
     \x20                        graceful shutdown and on `save_cache` requests)\n\
     \x20     --listing          print assembled per-unit listings\n\
     \x20     --timings          print the per-stage pipeline timing table\n\
     \x20     --json             print the JSON report to stdout\n\
     \x20 -o, --output <file>    write the JSON report to a file\n\
     \x20     --quiet            suppress the table output\n\
     \n\
     serve-only options:\n\
     \x20     --stdio            serve stdin/stdout (the default transport)\n\
     \x20     --tcp <addr>       serve TCP connections on <addr>\n\
     \x20     --cache-max <N>    bound the allocation cache at ~N entries\n\
     \x20     --shards <N>       shard workers (default 0 = one per core)\n\
     \x20     --queue-depth <N>  queued requests per shard before shedding (default 256)\n\
     \x20     --read-deadline <ms>     reap slow clients (default 10000; 0 = off)\n\
     \x20     --compute-deadline <ms>  per-compile budget (default 30000; 0 = off)\n\
     \x20     --max-connections <N>    refuse connections past N (default 1024)\n\
     \n\
     loadgen-only options (serve knobs above reach the spawned server):\n\
     \x20     --tcp <addr>       attack a running server instead of spawning one\n\
     \x20     --requests <N>     total requests to replay (default 100000)\n\
     \x20     --connections <N>  concurrent client connections (default 8)\n\
     \x20     --shapes <N>       distinct loop shapes in the trace (default 64)\n\
     \x20     --seed <N>         trace seed (deterministic per seed)\n\
     \x20     --label <s>        label stamped into BENCH_serve.json\n\
     \x20 -o, --output <file>    artifact path (default BENCH_serve.json)\n\
     \n\
     fuzz-only options:\n\
     \x20     --budget <dur>     wall-clock budget, e.g. 45s, 2m (default 45s)\n\
     \x20     --seed <N>         master seed (default: derived from the clock)\n\
     \x20     --max-cases <N>    stop after N cases even if budget remains\n\
     \x20     --failures-dir <d> where minimal repros go (default fuzz-failures/)\n\
     \x20     --transport <t>    stdio (default) or tcp\n\
     \n\
     bench-trajectory-only options:\n\
     \x20     --quick            fewer samples (CI smoke mode)\n\
     \x20     --label <s>        label stamped into the report (default \"local\")\n\
     \n\
     exit status:\n\
     \x20 0  every loop compiled (and validated); serve: clean shutdown\n\
     \x20 1  at least one loop failed to compile or validate\n\
     \x20 2  usage, parse or I/O errors (nothing was compiled)"
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag}: `{value}` is not a valid number"))
}

fn parse_options(args: Vec<String>) -> Result<CliOptions, String> {
    let mut options = CliOptions::default();
    let mut iter = args.into_iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--machine" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs a machine name or description file"))?;
                options.machine = Some(value);
            }
            "-k" | "--registers" => options.registers = Some(parse_number(&arg, iter.next())?),
            "-m" | "--modify" => options.modify_range = Some(parse_number(&arg, iter.next())?),
            "--modify-regs" => {
                options.modify_registers = Some(parse_number(&arg, iter.next())?);
            }
            "-j" | "--threads" => options.threads = Some(parse_number(&arg, iter.next())?),
            "--iterations" => options.iterations = parse_number(&arg, iter.next())?,
            "--no-cache" => options.cache = false,
            "--no-validate" => options.validate = false,
            "--listing" => options.listing = true,
            "--timings" => options.timings = true,
            "--quick" => options.quick = true,
            "--label" => {
                let value = iter.next().ok_or_else(|| format!("{arg} needs a value"))?;
                options.label = Some(value);
            }
            "--quiet" => options.quiet = true,
            "--json" => options.json = true,
            "--stdio" => options.stdio = true,
            "--tcp" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs an address (e.g. 127.0.0.1:4750)"))?;
                options.tcp = Some(value);
            }
            "--cache-max" => options.cache_max = Some(parse_number(&arg, iter.next())?),
            "--shards" => options.shards = Some(parse_number(&arg, iter.next())?),
            "--read-deadline" => {
                options.read_deadline_ms = Some(parse_number(&arg, iter.next())?);
            }
            "--compute-deadline" => {
                options.compute_deadline_ms = Some(parse_number(&arg, iter.next())?);
            }
            "--queue-depth" => options.queue_depth = Some(parse_number(&arg, iter.next())?),
            "--max-connections" => {
                options.max_connections = Some(parse_number(&arg, iter.next())?);
            }
            "--requests" => options.requests = Some(parse_number(&arg, iter.next())?),
            "--connections" => options.connections = Some(parse_number(&arg, iter.next())?),
            "--shapes" => options.shapes = Some(parse_number(&arg, iter.next())?),
            "--budget" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs a duration (e.g. 45s)"))?;
                options.budget = Some(value);
            }
            "--seed" => options.seed = Some(parse_number(&arg, iter.next())?),
            "--max-cases" => options.max_cases = Some(parse_number(&arg, iter.next())?),
            "--failures-dir" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs a directory path"))?;
                options.failures_dir = Some(PathBuf::from(value));
            }
            "--transport" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs `stdio` or `tcp`"))?;
                options.transport = Some(value);
            }
            "--cache-load" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs a snapshot file path"))?;
                options.cache_load = Some(PathBuf::from(value));
            }
            "--cache-save" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs a snapshot file path"))?;
                options.cache_save = Some(PathBuf::from(value));
            }
            "-o" | "--output" => {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs a file path"))?;
                options.output = Some(PathBuf::from(value));
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option `{flag}`")),
            path => options.paths.push(PathBuf::from(path)),
        }
    }
    Ok(options)
}

/// Resolves `--machine`: a built-in name, a path to a description
/// file, or an inline `key = value` description string.
fn resolve_machine(arg: &str) -> Result<AguSpec, String> {
    let path = std::path::Path::new(arg);
    let description = if path.is_file() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("--machine {}: {e}", path.display()))?;
        MachineDescription::parse(&text)
            .map_err(|e| format!("--machine {}: {e}", path.display()))?
    } else {
        MachineDescription::resolve(arg).map_err(|e| format!("--machine: {e}"))?
    };
    Ok(*description.spec())
}

fn build_config(options: &CliOptions) -> Result<PipelineConfig, String> {
    let mut agu = match &options.machine {
        Some(arg) => resolve_machine(arg)?,
        None => AguSpec::new(4, 1).map_err(|e| e.to_string())?,
    };
    // Numeric knobs layer on top of the description (or the paper-shaped
    // default), so e.g. `--machine saris -k 2` keeps the SARIS cost
    // table while shrinking the register file.
    if let Some(k) = options.registers {
        agu = agu.with_address_registers(k).map_err(|e| e.to_string())?;
    }
    if let Some(m) = options.modify_range {
        agu = agu.with_update_range(UpdateRange::symmetric(m));
    }
    if let Some(n) = options.modify_registers {
        agu = agu.with_modify_registers(n);
    }
    let mut config = PipelineConfig::new(agu);
    config.parallelism = match options.threads {
        None => Parallelism::Auto,
        Some(0) | Some(1) => Parallelism::Sequential,
        Some(n) => Parallelism::Fixed(n),
    };
    config.validate = options.validate;
    config.validation_iterations = options.iterations;
    config.caching = options.cache;
    config.listings = options.listing;
    if let Some(max) = options.cache_max {
        config.cache_policy = CachePolicy::Bounded(max);
    }
    Ok(config)
}

fn build_pipeline(options: &CliOptions) -> Result<Pipeline, String> {
    Ok(Pipeline::with_config(build_config(options)?))
}

/// The serve tier's operational limits from the CLI flags, with the
/// production defaults (shards = cores, 10 s read / 30 s compute
/// deadlines; `0` disables a deadline).
fn serve_options(options: &CliOptions) -> ServeOptions {
    let deadline = |ms: Option<u64>, default_ms: u64| match ms.unwrap_or(default_ms) {
        0 => None,
        ms => Some(std::time::Duration::from_millis(ms)),
    };
    ServeOptions {
        shards: options.shards.unwrap_or(0),
        queue_depth: options
            .queue_depth
            .unwrap_or(raco::serve::DEFAULT_QUEUE_DEPTH),
        read_deadline: deadline(options.read_deadline_ms, 10_000),
        compute_deadline: deadline(options.compute_deadline_ms, 30_000),
        max_connections: options
            .max_connections
            .unwrap_or(raco::serve::DEFAULT_MAX_CONNECTIONS),
    }
}

/// Warms the pipeline's cache from `--cache-load`, if given. An
/// unreadable snapshot file is a hard error (exit 2, like any other
/// I/O problem); *damaged* snapshot contents are only warnings — the
/// entries that survive still load, and the rest recompute.
fn warm_from_snapshot(pipeline: &Pipeline, options: &CliOptions) -> Result<(), String> {
    if let Some(path) = &options.cache_load {
        let report = pipeline.load_cache(path).map_err(|e| e.to_string())?;
        for warning in &report.warnings {
            eprintln!("raco: cache snapshot: {warning}");
        }
        if !options.quiet {
            eprintln!("raco: cache loaded from {} ({report})", path.display());
        }
    }
    Ok(())
}

/// Snapshots the warm cache to `--cache-save`, if given (batch
/// subcommands call this once compilation is done; `serve` snapshots
/// through the server's own graceful-shutdown hook instead).
fn save_snapshot(pipeline: &Pipeline, options: &CliOptions) -> Result<(), String> {
    if let Some(path) = &options.cache_save {
        let report = pipeline.save_cache(path).map_err(|e| e.to_string())?;
        if !options.quiet {
            eprintln!("raco: cache saved to {} ({report})", path.display());
        }
    }
    Ok(())
}

fn emit(report: &CompilationReport, options: &CliOptions) -> Result<(), String> {
    if !options.quiet {
        print!("{}", report.render_table());
        if options.timings {
            let table = report.render_timings_table();
            if !table.is_empty() {
                println!("\nper-stage pipeline timings:");
                print!("{table}");
            }
        }
        if options.listing {
            for unit in &report.units {
                if let Some(listing) = &unit.listing {
                    println!("\n{listing}");
                }
            }
        }
    }
    if options.json {
        print!("{}", report.to_json());
    }
    if let Some(path) = &options.output {
        std::fs::write(path, report.to_json()).map_err(|e| format!("{}: {e}", path.display()))?;
        if !options.quiet {
            println!("JSON report written to {}", path.display());
        }
    }
    Ok(())
}

fn run() -> Result<bool, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(usage().to_owned());
    }
    let command = args.remove(0);
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(true)
        }
        "compile" => {
            let options = parse_options(args)?;
            if options.paths.is_empty() {
                return Err("compile: no input paths given".to_owned());
            }
            let pipeline = build_pipeline(&options)?;
            warm_from_snapshot(&pipeline, &options)?;
            // Compile every path into one combined report so the cache
            // warms across inputs, exactly like batch traffic would.
            let mut combined: Option<CompilationReport> = None;
            for path in &options.paths {
                let report = pipeline.compile_path(path).map_err(|e| e.to_string())?;
                combined = Some(match combined {
                    None => report,
                    Some(mut acc) => {
                        acc.units.extend(report.units);
                        acc.elapsed += report.elapsed;
                        acc.cache = report.cache;
                        acc
                    }
                });
            }
            save_snapshot(&pipeline, &options)?;
            let report = combined.expect("at least one path");
            emit(&report, &options)?;
            Ok(report.failed() == 0)
        }
        "kernels" => {
            let options = parse_options(args)?;
            if !options.paths.is_empty() {
                return Err("kernels: unexpected positional arguments".to_owned());
            }
            let pipeline = build_pipeline(&options)?;
            warm_from_snapshot(&pipeline, &options)?;
            let report = pipeline.compile_kernels();
            save_snapshot(&pipeline, &options)?;
            emit(&report, &options)?;
            Ok(report.failed() == 0)
        }
        "serve" => {
            let options = parse_options(args)?;
            if !options.paths.is_empty() {
                return Err("serve: unexpected positional arguments".to_owned());
            }
            if options.stdio && options.tcp.is_some() {
                return Err("serve: --stdio and --tcp are mutually exclusive".to_owned());
            }
            let mut config = build_config(&options)?;
            let serve_opts = serve_options(&options);
            // Several shards compiling concurrently already use the
            // machine; per-compile thread fan-out on top of that would
            // oversubscribe it. Shards default to sequential compiles
            // unless -j asks otherwise.
            if options.threads.is_none() && serve_opts.shards != 1 {
                config.parallelism = Parallelism::Sequential;
            }
            let mut server = Server::with_options(config, serve_opts);
            if let Some(path) = &options.cache_load {
                // Seed *every* shard from the snapshot so each boots
                // warm on whatever slice of the keyspace it owns.
                let reports = server.load_cache(path).map_err(|e| e.to_string())?;
                if let Some(first) = reports.first() {
                    for warning in &first.warnings {
                        eprintln!("raco: cache snapshot: {warning}");
                    }
                    if !options.quiet {
                        eprintln!(
                            "raco: cache loaded from {} into {} shard(s) ({first})",
                            path.display(),
                            reports.len()
                        );
                    }
                }
            }
            if let Some(save) = &options.cache_save {
                // The server snapshots on graceful shutdown (and on
                // `save_cache` requests) itself, once every connection
                // has drained; a sharded server merges all shard caches
                // into the snapshot.
                server = server.with_cache_save_path(save);
            }
            if !options.quiet {
                let opts = server.options();
                let ms = |deadline: Option<std::time::Duration>| {
                    deadline.map_or("off".to_owned(), |d| format!("{} ms", d.as_millis()))
                };
                eprintln!(
                    "raco serve: {} shard(s), queue depth {}, read deadline {}, \
                     compute deadline {}, max {} connections",
                    opts.shards,
                    opts.queue_depth,
                    ms(opts.read_deadline),
                    ms(opts.compute_deadline),
                    opts.max_connections
                );
            }
            match &options.tcp {
                Some(addr) => {
                    let listener = std::net::TcpListener::bind(addr)
                        .map_err(|e| format!("serve: cannot bind {addr}: {e}"))?;
                    if !options.quiet {
                        let bound = listener
                            .local_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| addr.clone());
                        eprintln!("raco serve: listening on {bound}");
                    }
                    server
                        .serve_tcp(&listener)
                        .map_err(|e| format!("serve: {e}"))?;
                }
                None => {
                    let stdin = std::io::stdin();
                    let stdout = std::io::stdout();
                    server
                        .serve(stdin.lock(), stdout.lock())
                        .map_err(|e| format!("serve: {e}"))?;
                }
            }
            Ok(true)
        }
        "loadgen" => {
            let options = parse_options(args)?;
            if !options.paths.is_empty() {
                return Err("loadgen: unexpected positional arguments".to_owned());
            }
            let binary =
                std::env::current_exe().map_err(|e| format!("loadgen: cannot locate raco: {e}"))?;
            let mut config = raco::loadgen::LoadgenConfig::new(binary);
            config.addr = options.tcp.clone();
            if let Some(n) = options.requests {
                config.requests = n;
            }
            if let Some(n) = options.connections {
                config.connections = n;
            }
            if let Some(n) = options.shapes {
                config.shapes = n;
            }
            if let Some(seed) = options.seed {
                config.seed = seed;
            }
            if let Some(label) = &options.label {
                config.label = label.clone();
            }
            if let Some(output) = &options.output {
                config.output = output.clone();
            }
            // Server knobs are forwarded to the spawned server (and
            // ignored when --tcp targets an external one).
            let forward: [(&str, Option<String>); 7] = [
                ("--machine", options.machine.clone()),
                ("--shards", options.shards.map(|n| n.to_string())),
                (
                    "--read-deadline",
                    options.read_deadline_ms.map(|n| n.to_string()),
                ),
                (
                    "--compute-deadline",
                    options.compute_deadline_ms.map(|n| n.to_string()),
                ),
                ("--queue-depth", options.queue_depth.map(|n| n.to_string())),
                (
                    "--max-connections",
                    options.max_connections.map(|n| n.to_string()),
                ),
                ("--cache-max", options.cache_max.map(|n| n.to_string())),
            ];
            for (flag, value) in forward {
                if let Some(value) = value {
                    config.server_args.push(flag.to_owned());
                    config.server_args.push(value);
                }
            }
            if !options.quiet {
                eprintln!(
                    "raco loadgen: replaying {} requests over {} connections ({} shapes, seed {:#x})",
                    config.requests, config.connections, config.shapes, config.seed
                );
            }
            let report = raco::loadgen::run(&config)?;
            if !options.quiet {
                let us = |ns: u64| ns as f64 / 1000.0;
                println!(
                    "requests {}  ok {}  rejected {}  transport errors {}  ({:.0} req/s)",
                    report.sent,
                    report.ok,
                    report.rejected_total(),
                    report.transport_errors,
                    report.throughput_rps()
                );
                println!(
                    "latency  p50 {:>8.1} µs  p95 {:>8.1} µs  p99 {:>8.1} µs  max {:>8.1} µs",
                    us(report.latency.quantile(0.50)),
                    us(report.latency.quantile(0.95)),
                    us(report.latency.quantile(0.99)),
                    us(report.latency.max),
                );
                println!(
                    "connect  p50 {:>8.1} µs  p99 {:>8.1} µs  (fresh connection to first reply)",
                    us(report.connect.quantile(0.50)),
                    us(report.connect.quantile(0.99)),
                );
                if let Some(rate) = report.aggregate_hit_rate() {
                    println!("cache    aggregate hit rate {rate:.3}");
                }
                for (id, requests, rate) in report.shard_summary() {
                    println!("shard {id}: {requests} requests, hit rate {rate:.3}");
                }
                println!("artifact written to {}", config.output.display());
            }
            Ok(report.transport_errors == 0)
        }
        "fuzz" => {
            let options = parse_options(args)?;
            if !options.paths.is_empty() {
                return Err("fuzz: unexpected positional arguments".to_owned());
            }
            let budget = raco::fuzz::parse_budget(options.budget.as_deref().unwrap_or("45s"))?;
            let seed = options.seed.unwrap_or_else(|| {
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| d.as_nanos() as u64)
                    .unwrap_or(0x5eed)
            });
            let binary =
                std::env::current_exe().map_err(|e| format!("fuzz: cannot locate raco: {e}"))?;
            let mut config = raco::fuzz::FuzzConfig::new(binary, budget, seed);
            if let Some(dir) = &options.failures_dir {
                config.failures_dir = dir.clone();
            }
            if let Some(max) = options.max_cases {
                config.max_cases = max;
            }
            config.transport = match options.transport.as_deref() {
                None | Some("stdio") => raco::fuzz::Transport::Stdio,
                Some("tcp") => raco::fuzz::Transport::Tcp,
                Some(other) => {
                    return Err(format!("fuzz: unknown transport `{other}` (stdio or tcp)"))
                }
            };
            if !options.quiet {
                eprintln!(
                    "raco fuzz: seed {seed:#x}, budget {:?}, transport {:?}",
                    config.budget, config.transport
                );
            }
            let outcome = raco::fuzz::run(&config).map_err(|e| format!("fuzz: {e}"))?;
            if !options.quiet {
                eprintln!("raco fuzz: {outcome}");
            }
            for failure in &outcome.failures {
                eprintln!(
                    "raco fuzz: FAILURE [{}] case {} (seed {:#x}): {}{}",
                    failure.kind,
                    failure.case,
                    failure.seed,
                    failure.detail,
                    failure
                        .repro
                        .as_deref()
                        .map(|p| format!("\n  repro: {}", p.display()))
                        .unwrap_or_default()
                );
            }
            Ok(outcome.failures.is_empty())
        }
        "bench-trajectory" => {
            let options = parse_options(args)?;
            if !options.paths.is_empty() {
                return Err("bench-trajectory: unexpected positional arguments".to_owned());
            }
            let benches = raco_bench::trajectory::run(options.quick);
            let label = options.label.clone().unwrap_or_else(|| "local".to_owned());
            let json = raco_bench::trajectory::report_json(&label, &benches);
            let path = options
                .output
                .clone()
                .unwrap_or_else(raco_bench::trajectory::default_output_path);
            let mut rendered = json.render();
            rendered.push('\n');
            std::fs::write(&path, rendered).map_err(|e| format!("{}: {e}", path.display()))?;
            if !options.quiet {
                println!("bench      unit  median  samples");
                for bench in &benches {
                    println!(
                        "{:<24} {:>4} {:>10.1} {:>8}",
                        bench.name, bench.unit, bench.value, bench.samples
                    );
                }
                println!("trajectory written to {}", path.display());
            }
            Ok(true)
        }
        other => Err(format!("unknown command `{other}`\n\n{}", usage())),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
