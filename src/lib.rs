//! # raco — Register-constrained Address Computation Optimization
//!
//! A production-quality reproduction of *"Register-Constrained Address
//! Computation in DSP Programs"* (Anupam Basu, Rainer Leupers, Peter
//! Marwedel — **DATE 1998**).
//!
//! DSP address-generation units (AGUs) update address registers in
//! parallel with the data path, but only within a bounded auto-modify
//! range `M`. Given a loop whose body performs a fixed sequence of array
//! accesses and a machine with `K` address registers, **raco** allocates
//! accesses to registers so that the number of extra (unit-cost) address
//! computation instructions per iteration is minimized — the paper's
//! two-phase algorithm: an exact minimum zero-cost path cover (the number
//! of *virtual* registers `K̃`), followed by greedy minimum-cost path
//! merging down to `K` physical registers.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`ir`] | `raco-ir` | loop IR, C-like DSL, machine model, traces |
//! | [`graph`] | `raco-graph` | distance graph, path covers, matching, branch-and-bound |
//! | [`core`] | `raco-core` | the two-phase allocator, merge strategies, exact oracle |
//! | [`agu`] | `raco-agu` | address code generation, listings, simulator, modify registers |
//! | [`check`] | `raco-check` | declarative listing invariants — the second correctness oracle |
//! | [`oa`] | `raco-oa` | offset assignment for scalars (SOA/GOA, refs \[4,5\]) |
//! | [`kernels`] | `raco-kernels` | DSPstone-style kernel suite |
//! | [`obs`] | `raco-obs` | dependency-free metrics: counters, latency histograms, spans |
//! | [`driver`] | `raco-driver` | batch pipeline: parallel scheduling, allocation cache, reports |
//! | [`serve`] | `raco-serve` | long-lived compile service: NDJSON protocol over stdio/TCP |
//! | [`fuzz`] | (this crate) | budgeted adversarial long-runner driving the real `raco serve` binary |
//! | [`loadgen`] | (this crate) | mixed-machine trace load generator benchmarking the serve tier |
//!
//! ## Quickstart
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use raco::core::Optimizer;
//! use raco::ir::AguSpec;
//!
//! // The paper's running example (Section 2, Figure 1):
//! let spec = raco::ir::examples::paper_loop();
//! let pattern = &spec.patterns()[0];
//!
//! // A machine with M = 1 and K = 2 address registers:
//! let agu = AguSpec::new(2, 1)?;
//!
//! let allocation = Optimizer::new(agu).allocate(pattern);
//! println!(
//!     "K̃ = {}, cost with K = 2: {} unit-cost computations/iteration",
//!     allocation.virtual_registers(),
//!     allocation.cost()
//! );
//! # Ok(())
//! # }
//! ```
//!
//! See `EXPERIMENTS.md` in the repository for the full paper-reproduction
//! harness (Figure 1, the ~40 % statistical result, kernel code-size/speed
//! tables and ablations).

#![forbid(unsafe_code)]

pub use raco_agu as agu;
pub use raco_check as check;
pub use raco_core as core;
pub use raco_driver as driver;
pub use raco_graph as graph;
pub use raco_ir as ir;
pub use raco_kernels as kernels;
pub use raco_oa as oa;
pub use raco_obs as obs;
pub use raco_serve as serve;

pub mod fuzz;
pub mod loadgen;
