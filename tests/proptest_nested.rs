//! Property/differential tests of the nested-loop front end, across
//! every layer:
//!
//! 1. **Lowerer vs. reference interpreter**: a generated loop nest is
//!    lowered to the flat [`LoopSpec`] and its captured address trace
//!    must equal *direct interpretation* of the nest AST (walking the
//!    levels, evaluating every subscript against the declarations).
//!    This pins down linearization, start folding, coefficients and
//!    outer-loop carries in one equation.
//! 2. **Full pipeline**: every generated nest compiles end to end with
//!    simulator validation — so the codegen carry blocks reproduce the
//!    trace, not just the lowerer.
//! 3. **Cache soundness**: the canonical key of a flattened pattern
//!    ignores its nest metadata; an equivalent 1D pattern with the same
//!    deltas must share the key *and* the allocator's cost curve and
//!    covers (what the driver's allocation cache relies on).

use proptest::prelude::*;

use std::collections::HashMap;

use raco::core::Optimizer;
use raco::driver::{Parallelism, Pipeline, PipelineConfig};
use raco::ir::canonical::CanonicalPattern;
use raco::ir::dsl::{self, CmpOp, Decl, Expr, ForLoop, LValue, Update};
use raco::ir::{AccessPattern, AguSpec, LoopSpec, MemoryLayout, Trace};

// ---- generator -------------------------------------------------------

/// A tiny deterministic PRNG so one `u64` seed expands into a whole
/// nest case (the offline proptest shim has no recursive struct
/// strategies; this keeps cases reproducible from the reported seed).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // splitmix64 step.
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

struct LevelCase {
    var: &'static str,
    start: i64,
    stride: i64,
    trips: i64,
}

struct ArrayCase {
    name: String,
    dims: Vec<i64>,
    /// Per dimension: `(var index or usize::MAX for none, coefficient,
    /// base constant)` — fixed per array so coefficients stay uniform
    /// and only constants vary per access.
    subs: Vec<(usize, i64, i64)>,
}

struct NestCase {
    levels: Vec<LevelCase>,
    arrays: Vec<ArrayCase>,
    /// `(array index, per-dim extra constant, is_write)` per access.
    accesses: Vec<(usize, Vec<i64>, bool)>,
}

const VARS: [&str; 3] = ["i", "j", "k"];

fn build_case(seed: u64) -> NestCase {
    let mut g = Gen(seed);
    let depth = g.range(2, 3) as usize;
    let levels: Vec<LevelCase> = (0..depth)
        .map(|d| {
            let stride = *[1, -1, 2, -2].get(g.range(0, 3) as usize).unwrap();
            LevelCase {
                var: VARS[d],
                start: g.range(-2, 2),
                stride,
                trips: g.range(1, 4),
            }
        })
        .collect();
    let array_count = g.range(1, 3) as usize;
    let arrays: Vec<ArrayCase> = (0..array_count)
        .map(|n| {
            let rank = g.range(1, 3) as usize;
            let dims = (0..rank).map(|_| g.range(2, 5)).collect();
            let subs = (0..rank)
                .map(|_| {
                    // Roughly half the subscripts use an induction
                    // variable, the rest are constants.
                    let pick = g.range(0, depth as i64);
                    let var = if pick == depth as i64 {
                        usize::MAX
                    } else {
                        pick as usize
                    };
                    (var, g.range(-2, 2), g.range(0, 2))
                })
                .collect();
            ArrayCase {
                name: format!("a{n}"),
                dims,
                subs,
            }
        })
        .collect();
    let access_count = g.range(2, 6) as usize;
    let accesses = (0..access_count)
        .map(|_| {
            let array = g.range(0, array_count as i64 - 1) as usize;
            let extras = (0..arrays[array].dims.len())
                .map(|_| g.range(0, 2))
                .collect();
            (array, extras, g.next() % 4 == 0)
        })
        .collect();
    NestCase {
        levels,
        arrays,
        accesses,
    }
}

impl NestCase {
    /// Renders the case as DSL source text, so every property also
    /// exercises the lexer and parser.
    fn source(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for array in &self.arrays {
            if array.dims.len() > 1 {
                let _ = write!(out, "array {}", array.name);
                for d in &array.dims {
                    let _ = write!(out, "[{d}]");
                }
                out.push_str(";\n");
            }
        }
        for (d, level) in self.levels.iter().enumerate() {
            let bound = level.start + level.trips * level.stride;
            let cmp = if level.stride > 0 { "<" } else { ">" };
            let pad = "    ".repeat(d);
            let _ = writeln!(
                out,
                "{pad}for ({v} = {start}; {v} {cmp} {bound}; {v} += {stride}) {{",
                v = level.var,
                start = level.start,
                stride = level.stride
            );
        }
        let pad = "    ".repeat(self.levels.len());
        for (array, extras, is_write) in &self.accesses {
            let array = &self.arrays[*array];
            let mut subscripts = String::new();
            for ((var, coeff, base), extra) in array.subs.iter().zip(extras) {
                let constant = base + extra;
                if *var == usize::MAX {
                    let _ = write!(subscripts, "[{constant}]");
                } else {
                    let _ = write!(subscripts, "[{coeff} * {} + {constant}]", VARS[*var]);
                }
            }
            if *is_write {
                let _ = writeln!(out, "{pad}{}{subscripts} = acc;", array.name);
            } else {
                let _ = writeln!(out, "{pad}acc += {}{subscripts};", array.name);
            }
        }
        for d in (0..self.levels.len()).rev() {
            let _ = writeln!(out, "{}}}", "    ".repeat(d));
        }
        out
    }
}

/// Seed-driven strategy: any `u64` is a valid nest case.
fn case_seed() -> impl Strategy<Value = u64> {
    0u64..u64::MAX
}

// ---- reference interpreter -------------------------------------------

/// Directly interprets the nest AST: walks the loop levels, evaluates
/// every subscript against the declarations, and records the absolute
/// address of each access in execution order. Shares nothing with the
/// flattening lowerer except the statement-level access ordering rules.
fn interpret(decls: &[Decl], ast: &ForLoop, spec: &LoopSpec, layout: &MemoryLayout) -> Vec<i64> {
    fn eval(e: &Expr, env: &HashMap<String, i64>) -> i64 {
        match e {
            Expr::Num(n) => *n,
            Expr::Var(v) => *env.get(v).expect("bound variable"),
            Expr::Neg(inner) => -eval(inner, env),
            Expr::Binary { op, lhs, rhs } => {
                use raco::ir::dsl::BinOp;
                let (l, r) = (eval(lhs, env), eval(rhs, env));
                match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => l / r,
                }
            }
            Expr::Index { .. } => panic!("generated subscripts never nest array accesses"),
        }
    }

    fn address(
        decls: &[Decl],
        spec: &LoopSpec,
        layout: &MemoryLayout,
        env: &HashMap<String, i64>,
        array: &str,
        indices: &[Expr],
    ) -> i64 {
        let base = layout
            .base(spec.array_id(array).expect("lowered arrays are registered"))
            .expect("layout covers the loop's arrays");
        let dims: &[i64] = decls
            .iter()
            .find(|d| d.name == array)
            .map_or(&[1][..], |d| &d.dims);
        let mut addr = base;
        let mut stride = 1i64;
        for (k, index) in indices.iter().enumerate().rev() {
            addr += stride * eval(index, env);
            stride *= dims[k];
        }
        addr
    }

    fn holds(op: CmpOp, value: i64, bound: i64) -> bool {
        match op {
            CmpOp::Lt => value < bound,
            CmpOp::Le => value <= bound,
            CmpOp::Gt => value > bound,
            CmpOp::Ge => value >= bound,
            CmpOp::Ne => value != bound,
            CmpOp::Eq => value == bound,
        }
    }

    fn walk(
        decls: &[Decl],
        ast: &ForLoop,
        spec: &LoopSpec,
        layout: &MemoryLayout,
        env: &mut HashMap<String, i64>,
        out: &mut Vec<i64>,
    ) {
        let start = eval(&ast.init, env);
        let stride = match ast.update {
            Update::Increment => 1,
            Update::Decrement => -1,
            Update::Step(k) => k,
        };
        let mut value = start;
        while holds(ast.cond.op, value, eval(&ast.cond.bound, env)) {
            env.insert(ast.var.clone(), value);
            if let Some(inner) = &ast.nested {
                walk(decls, inner, spec, layout, env, out);
            }
            for stmt in &ast.body {
                // Same ordering contract as the lowerer: RHS reads left
                // to right, then LHS read (compound), then LHS write.
                stmt.rhs.visit_indices(&mut |name, indices| {
                    out.push(address(decls, spec, layout, env, name, indices));
                });
                if let LValue::Element { array, indices } = &stmt.lhs {
                    if stmt.op.reads_lhs() {
                        out.push(address(decls, spec, layout, env, array, indices));
                    }
                    out.push(address(decls, spec, layout, env, array, indices));
                }
            }
            value += stride;
        }
    }

    let mut env = HashMap::new();
    let mut out = Vec::new();
    walk(decls, ast, spec, layout, &mut env, &mut out);
    out
}

// ---- properties ------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn flattened_traces_equal_direct_interpretation(seed in case_seed()) {
        let case = build_case(seed);
        let source = case.source();
        let (decls, loops) = dsl::parse_unit(&source)
            .unwrap_or_else(|e| panic!("generated source must parse: {e}\n{source}"));
        let ast = &loops[0];
        let spec = dsl::lower_unit_loop(&decls, ast)
            .unwrap_or_else(|e| panic!("generated nest must lower: {e}\n{source}"));
        let layout = MemoryLayout::contiguous(&spec, 0x1000, 0x400);

        let expected = interpret(&decls, ast, &spec, &layout);
        let nest = spec.nest().expect("depth >= 2 cases carry nest metadata");
        prop_assert_eq!(
            expected.len() as u64,
            nest.total_iterations() * spec.len() as u64,
            "trip-count bookkeeping matches direct execution\n{}", source
        );

        let trace = Trace::capture(&spec, &layout, u64::MAX);
        let got: Vec<i64> = trace.entries().iter().map(|e| e.address).collect();
        prop_assert_eq!(got, expected, "flattened trace diverges for\n{}", source);
    }

    #[test]
    fn generated_nests_compile_and_validate_through_the_pipeline(seed in case_seed()) {
        let case = build_case(seed);
        let source = case.source();
        let mut config = PipelineConfig::new(AguSpec::new(6, 1).unwrap());
        config.parallelism = Parallelism::Sequential;
        let report = Pipeline::with_config(config)
            .compile_str("generated", &source)
            .unwrap_or_else(|e| panic!("generated source must compile: {e}\n{source}"));
        prop_assert_eq!(
            report.failed(), 0,
            "pipeline (incl. simulator validation of carry blocks) failed for\n{}\n{}",
            source, report.render_table()
        );
        for lr in report.loops() {
            prop_assert!(lr.measured_cost.is_some(), "validation ran\n{}", source);
            prop_assert!(lr.addresses_checked > 0, "{}", source);
        }
    }

    #[test]
    fn nested_patterns_share_cache_keys_with_equivalent_flat_loops(seed in case_seed()) {
        let case = build_case(seed);
        let source = case.source();
        let spec = dsl::parse_loop(&source)
            .unwrap_or_else(|e| panic!("generated source must lower: {e}\n{source}"));
        let k_max = 4usize;
        let optimizer = Optimizer::new(AguSpec::new(k_max, 1).unwrap());
        for pattern in spec.patterns() {
            // A plain 1D pattern with the same offsets and stride — what
            // an equivalent single loop would have produced.
            let flat = AccessPattern::from_offsets(&pattern.offsets(), pattern.stride());
            prop_assert_eq!(
                CanonicalPattern::of(&pattern),
                CanonicalPattern::of(&flat),
                "nest metadata must not leak into the cache key\n{}", source
            );
            prop_assert_eq!(
                optimizer.cost_curve(&pattern, k_max),
                optimizer.cost_curve(&flat, k_max),
                "equal keys, equal cost curves\n{}", source
            );
            for k in 1..=k_max {
                let a = optimizer.allocate_with_registers(&pattern, k);
                let b = optimizer.allocate_with_registers(&flat, k);
                prop_assert_eq!(a.cost(), b.cost(), "k = {}\n{}", k, source);
                prop_assert_eq!(a.cover().paths().len(), b.cover().paths().len());
                for (pa, pb) in a.cover().paths().iter().zip(b.cover().paths()) {
                    prop_assert_eq!(pa.indices(), pb.indices(), "{}", source);
                }
            }
        }
    }
}
