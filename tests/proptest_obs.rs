//! Property-based coverage of the observability layer (`raco-obs`) and
//! its contract with the pipeline:
//!
//! 1. **exactness** — histogram `count`/`sum`/`max` are exact for any
//!    recorded values, and estimated quantiles are ordered and bounded
//!    by the true maximum;
//! 2. **merge** — merging per-batch histograms into an accumulator
//!    conserves totals exactly;
//! 3. **no lost time** — an outer span's recorded duration covers the
//!    sum of the spans nested inside it;
//! 4. **pool safety** — counters, histograms and span timers recorded
//!    from many threads against one shared registry lose nothing;
//! 5. **stage accounting** — a sequential batch's wall time is at least
//!    the sum of its per-stage totals (stages are disjoint intervals of
//!    one thread, so instrumentation can never invent time).

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use raco::obs::{Histogram, Registry};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_count_sum_max_are_exact(
        values in prop::collection::vec(0u64..=1_000_000_000_000, 1..=200)
    ) {
        let histogram = Histogram::new();
        for &v in &values {
            histogram.record(v);
        }
        let snapshot = histogram.snapshot();
        prop_assert_eq!(snapshot.count, values.len() as u64);
        prop_assert_eq!(snapshot.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snapshot.max, *values.iter().max().unwrap());
        let (p50, p95, p99) = (
            snapshot.quantile(0.50),
            snapshot.quantile(0.95),
            snapshot.quantile(0.99),
        );
        prop_assert!(p50 <= p95);
        prop_assert!(p95 <= p99);
        prop_assert!(p99 <= snapshot.max);
    }

    #[test]
    fn merging_batches_conserves_totals(
        batches in prop::collection::vec(
            prop::collection::vec(0u64..=1_000_000_000, 0..=32),
            1..=6,
        )
    ) {
        let accumulator = Histogram::new();
        for batch in &batches {
            let local = Histogram::new();
            for &v in batch {
                local.record(v);
            }
            accumulator.merge_from(&local);
        }
        let all: Vec<u64> = batches.concat();
        let snapshot = accumulator.snapshot();
        prop_assert_eq!(snapshot.count, all.len() as u64);
        prop_assert_eq!(snapshot.sum, all.iter().sum::<u64>());
        prop_assert_eq!(snapshot.max, all.iter().max().copied().unwrap_or(0));
    }

    #[test]
    fn outer_spans_cover_nested_spans(inner_count in 1usize..=8) {
        let registry = Registry::new();
        {
            let _outer = registry.time("outer");
            for _ in 0..inner_count {
                let _inner = registry.time("inner");
            }
        }
        let outer = registry.histogram("outer").snapshot();
        let inner = registry.histogram("inner").snapshot();
        prop_assert_eq!(outer.count, 1);
        prop_assert_eq!(inner.count, inner_count as u64);
        // No lost time: the enclosing span's duration is at least the
        // sum of everything timed inside it.
        prop_assert!(
            outer.sum >= inner.sum,
            "outer {} ns < nested total {} ns",
            outer.sum,
            inner.sum
        );
    }

    #[test]
    fn shared_registry_loses_nothing_under_a_pool(
        threads in 2usize..=8,
        per_thread in 1usize..=64,
    ) {
        let registry = Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        registry.counter("requests").inc();
                        registry.histogram("latency").record(i as u64);
                        let _span = registry.time("span");
                    }
                });
            }
        });
        let expected = (threads * per_thread) as u64;
        prop_assert_eq!(registry.counter("requests").get(), expected);
        prop_assert_eq!(registry.histogram("latency").snapshot().count, expected);
        prop_assert_eq!(registry.histogram("span").snapshot().count, expected);
        // One metric per name, however racy the resolution was.
        prop_assert_eq!(registry.counters().len(), 1);
        prop_assert_eq!(registry.histograms().len(), 2);
    }
}

#[test]
fn sequential_batch_wall_time_covers_stage_totals() {
    use raco::driver::{Parallelism, Pipeline, PipelineConfig};
    use raco::ir::AguSpec;

    let mut config = PipelineConfig::new(AguSpec::new(4, 1).unwrap());
    config.parallelism = Parallelism::Sequential;
    let pipeline = Pipeline::with_config(config);
    let report = pipeline
        .compile_str(
            "bench",
            "for (i = 1; i < 64; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }",
        )
        .expect("compiles");
    assert!(!report.timings.is_empty(), "stage timings must be present");
    let stage_total: u64 = report.timings.iter().map(|t| t.total_ns).sum();
    assert!(
        report.elapsed >= Duration::from_nanos(stage_total),
        "stages are disjoint intervals of one thread: {:?} < {} ns",
        report.elapsed,
        stage_total
    );
}
