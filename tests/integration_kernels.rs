//! The whole kernel suite, across machines: allocate, emit, simulate,
//! and cross-check predictions against measurements.

use raco::agu::codegen::CodeGenerator;
use raco::agu::sim;
use raco::core::Optimizer;
use raco::graph::{DistanceModel, PathCover};
use raco::ir::{AguSpec, MemoryLayout, Trace};

fn verify_kernel(kernel: &raco::kernels::Kernel, agu: AguSpec, iterations: u64) -> u64 {
    let spec = kernel.spec();
    let alloc = Optimizer::new(agu)
        .allocate_loop(spec)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let layout = MemoryLayout::contiguous(spec, 0x4000, 0x800);
    let program = CodeGenerator::new(agu)
        .generate(spec, &alloc, &layout)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    let trace = Trace::capture(spec, &layout, iterations);
    let report =
        sim::run(&program, &trace, &agu).unwrap_or_else(|e| panic!("{}: {e}", kernel.name()));
    // The allocator prices the whole machine — modify registers
    // included — so prediction equals measurement everywhere.
    assert_eq!(
        report.explicit_updates_per_iteration(),
        u64::from(alloc.total_cost()),
        "{}: predicted vs measured on {agu}",
        kernel.name()
    );
    report.explicit_updates_per_iteration()
}

#[test]
fn suite_verifies_on_plain_machines() {
    for kernel in raco::kernels::suite() {
        for k in [2usize, 4, 8] {
            if kernel.spec().patterns().len() > k {
                continue;
            }
            let agu = AguSpec::new(k, 1).unwrap();
            verify_kernel(&kernel, agu, 16);
        }
    }
}

#[test]
fn suite_verifies_with_modify_registers() {
    for kernel in raco::kernels::suite() {
        if kernel.spec().patterns().len() > 4 {
            continue;
        }
        let agu = AguSpec::new(4, 1).unwrap().with_modify_registers(2);
        verify_kernel(&kernel, agu, 16);
    }
}

#[test]
fn more_registers_never_cost_more_on_kernels() {
    for kernel in raco::kernels::suite() {
        let arrays = kernel.spec().patterns().len();
        let mut last = u64::MAX;
        for k in [2usize, 3, 4, 6, 8] {
            if arrays > k {
                continue;
            }
            let cost = verify_kernel(&kernel, AguSpec::new(k, 1).unwrap(), 8);
            assert!(
                cost <= last,
                "{}: K = {k} costs {cost} > previous {last}",
                kernel.name()
            );
            last = cost;
        }
    }
}

#[test]
fn optimizer_never_loses_to_naive_chaining() {
    for kernel in raco::kernels::suite() {
        let arrays = kernel.spec().patterns().len();
        let agu = AguSpec::new(arrays.max(2), 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(kernel.spec()).unwrap();
        let chain_cost: u32 = kernel
            .spec()
            .patterns()
            .iter()
            .map(|p| {
                let dm = DistanceModel::new(p, 1);
                PathCover::single_chain(p.len()).total_cost(&dm, true)
            })
            .sum();
        assert!(
            alloc.total_cost() <= chain_cost,
            "{}: optimized {} vs chain {}",
            kernel.name(),
            alloc.total_cost(),
            chain_cost
        );
    }
}

#[test]
fn presets_handle_the_suite() {
    for agu in [
        AguSpec::tms320c2x_like(),
        AguSpec::dsp56k_like(),
        AguSpec::adsp210x_like(),
    ] {
        for kernel in raco::kernels::suite() {
            if kernel.spec().patterns().len() > agu.address_registers() {
                continue;
            }
            verify_kernel(&kernel, agu, 8);
        }
    }
}

#[test]
fn fir_cost_structure_is_understood() {
    // The FIR delay line 0, -1, …, -(t-1) has K̃ = t (no pair closes its
    // wrap), but one register chaining everything pays exactly one update
    // per iteration — so cost is 1 whenever 1 <= K < K̃ + 1 registers are
    // available for x.
    for taps in [2usize, 4, 8] {
        let kernel = raco::kernels::fir(taps);
        let cost = verify_kernel(&kernel, AguSpec::new(2, 1).unwrap(), 12);
        assert_eq!(cost, 1, "fir_{taps} with K = 2");
        let generous = verify_kernel(&kernel, AguSpec::new(taps + 1, 1).unwrap(), 12);
        assert_eq!(generous, 0, "fir_{taps} with K = taps + 1");
    }
}
