//! Integration tests of the batch compilation driver: every kernel
//! through the pipeline with trace validation, cache-on/off agreement,
//! multi-unit batches, JSON/table rendering and the kernel batch
//! workload.

use raco::agu::codegen::CodeGenerator;
use raco::agu::sim;
use raco::driver::{Parallelism, Pipeline, PipelineConfig};
use raco::ir::{AguSpec, MemoryLayout, Trace};

fn pipeline_with(k: usize, m: u32, caching: bool, sequential: bool) -> Pipeline {
    let mut config = PipelineConfig::new(AguSpec::new(k, m).unwrap());
    config.caching = caching;
    if sequential {
        config.parallelism = Parallelism::Sequential;
    }
    Pipeline::with_config(config)
}

#[test]
fn every_kernel_compiles_and_its_trace_matches_the_reference() {
    let pipeline = pipeline_with(4, 1, true, false);
    let report = pipeline.compile_kernels();
    assert_eq!(
        report.loop_count(),
        raco::kernels::suite().len(),
        "one loop per kernel"
    );
    assert_eq!(report.failed(), 0, "table:\n{}", report.render_table());
    let suite = raco::kernels::suite();
    for lr in report.loops() {
        // The pipeline simulated every generated program against the
        // raco_ir::trace reference; a cost or address mismatch would
        // have been recorded as a failure.
        let measured = lr.measured_cost.expect("validation enabled");
        assert_eq!(measured, lr.cost, "{}: measured == predicted", lr.name);
        // Plain loops simulate the configured 16 iterations; flattened
        // nests simulate their whole (finite) iteration space.
        let kernel = suite.iter().find(|k| k.name() == lr.name).unwrap();
        let iterations = match kernel.spec().nest() {
            Some(nest) => nest
                .total_iterations()
                .clamp(1, raco::driver::NEST_VALIDATION_CAP),
            None => 16,
        };
        assert_eq!(
            lr.addresses_checked,
            iterations * lr.accesses as u64,
            "{}: every access of every simulated iteration checked",
            lr.name
        );
    }
}

#[test]
fn pipeline_programs_equal_directly_generated_programs() {
    // The cached pipeline path must generate byte-identical programs to
    // the seed's direct Optimizer + CodeGenerator path.
    let agu = AguSpec::new(4, 1).unwrap();
    let pipeline = pipeline_with(4, 1, true, true);
    for kernel in raco::kernels::suite() {
        let (report, program) = pipeline.compile_loop(kernel.spec());
        assert!(
            report.succeeded(),
            "{}: {:?}",
            kernel.name(),
            report.failure
        );
        let program = program.expect("successful loops carry programs");

        let direct_alloc = raco::core::Optimizer::new(agu)
            .allocate_loop(kernel.spec())
            .expect("kernels fit the machine");
        let layout = MemoryLayout::contiguous(kernel.spec(), 0x1000, 0x400);
        let direct = CodeGenerator::new(agu)
            .generate(kernel.spec(), &direct_alloc, &layout)
            .expect("codegen succeeds");
        assert_eq!(
            program.to_string(),
            direct.to_string(),
            "{}: cached pipeline and direct path diverge",
            kernel.name()
        );
        // And the program verifies against an independently captured,
        // longer trace than the pipeline used.
        let trace = Trace::capture(kernel.spec(), &layout, 40);
        let sim_report = sim::run(&program, &trace, &agu).expect("verifies");
        assert_eq!(
            sim_report.explicit_updates_per_iteration(),
            report.cost,
            "{}",
            kernel.name()
        );
    }
}

#[test]
fn cache_on_and_off_produce_identical_reports() {
    let cached = pipeline_with(4, 1, true, true).compile_kernels();
    let uncached = pipeline_with(4, 1, false, true).compile_kernels();
    assert_eq!(cached.loop_count(), uncached.loop_count());
    for (a, b) in cached.loops().zip(uncached.loops()) {
        assert_eq!(a, b, "loop {} diverges between cache modes", a.name);
    }
    assert_eq!(uncached.cache.allocation_hits, 0);
    assert_eq!(uncached.cache.allocation_misses, 0, "cache fully bypassed");
}

#[test]
fn repeated_kernel_batches_become_pure_cache_hits() {
    let pipeline = pipeline_with(4, 1, true, false);
    let first = pipeline.compile_kernels();
    let misses_after_first = first.cache.allocation_misses + first.cache.curve_misses;
    let second = pipeline.compile_kernels();
    let misses_after_second = second.cache.allocation_misses + second.cache.curve_misses;
    assert_eq!(
        misses_after_first, misses_after_second,
        "a repeated batch must not miss"
    );
    assert!(
        second.cache.allocation_hits > first.cache.allocation_hits,
        "second batch hits the allocation table"
    );
    for (a, b) in first.loops().zip(second.loops()) {
        assert_eq!(a, b, "warm results match cold results");
    }
}

#[test]
fn multi_unit_batches_keep_unit_attribution() {
    let units = vec![
        (
            "fir.dsp".to_owned(),
            "for (i = 4; i < 256; i++) { y[i] = h0*x[i] + h1*x[i-1] + h2*x[i-2]; }".to_owned(),
        ),
        (
            "stages.dsp".to_owned(),
            "for (i = 0; i < 64; i++) { t[i] = x[i] * w[63 - i]; }
             for (k = 64; k > 0; k--) { y[k] = t[k] + t[k - 1]; }"
                .to_owned(),
        ),
    ];
    let report = pipeline_with(4, 1, true, false)
        .compile_units(&units)
        .unwrap();
    assert_eq!(report.units.len(), 2);
    assert_eq!(report.units[0].name, "fir.dsp");
    assert_eq!(report.units[0].loops.len(), 1);
    assert_eq!(report.units[1].loops.len(), 2);
    assert_eq!(report.units[1].loops[0].name, "loop0");
    assert_eq!(report.failed(), 0);

    let json = report.to_json();
    assert!(json.contains(r#""name": "stages.dsp""#));
    assert!(json.contains(r#""loops": 3"#));
    let table = report.render_table();
    assert!(table.contains("fir.dsp"));
    assert!(table.contains("3 loop(s) in 2 unit(s): 3 ok, 0 failed"));
}

#[test]
fn the_paper_example_reports_the_expected_allocation() {
    // K = 2 on the paper's loop: K̃ = 3, so exactly one merge and a
    // positive cost; the simulator must agree with the prediction.
    let report = pipeline_with(2, 1, true, true)
        .compile_str("paper", raco::ir::examples::PAPER_LOOP_SOURCE)
        .unwrap();
    let lr = &report.units[0].loops[0];
    assert!(lr.succeeded());
    assert_eq!(lr.virtual_registers, 3);
    assert_eq!(lr.registers_used, 2);
    assert!(lr.cost >= 1);
    assert_eq!(lr.measured_cost, Some(lr.cost));
}

#[test]
fn parallel_and_sequential_batches_agree() {
    let source = raco::kernels::suite_program();
    let sequential = pipeline_with(4, 1, true, true)
        .compile_str("suite", &source)
        .unwrap();
    let parallel = pipeline_with(4, 1, true, false)
        .compile_str("suite", &source)
        .unwrap();
    assert_eq!(sequential.loop_count(), parallel.loop_count());
    for (a, b) in sequential.loops().zip(parallel.loops()) {
        assert_eq!(a, b, "scheduling must not change results");
    }
}

#[test]
fn modify_register_machines_validate_with_bounded_cost() {
    let mut config = PipelineConfig::new(AguSpec::new(2, 1).unwrap().with_modify_registers(1));
    config.parallelism = Parallelism::Sequential;
    let report = Pipeline::with_config(config)
        .compile_str(
            "matmul",
            "for (i = 0; i < 8; i++) { acc += a[i] * b[8 * i]; }",
        )
        .unwrap();
    let lr = &report.units[0].loops[0];
    assert!(lr.succeeded(), "{:?}", lr.failure);
    // The modify register absorbs the +8 stride at codegen time, so
    // the measurement may undercut the allocator's prediction.
    assert!(lr.measured_cost.unwrap() <= lr.cost);
}

// ---------------------------------------------------------------------
// Backward-compat pin: the classic machines re-expressed as declarative
// descriptions must reproduce the pre-refactor toolchain byte for byte.
// The fixtures under `tests/fixtures/` were captured from the seed
// (knob-configured) build: per-machine listings for three nested
// kernels, the full kernel cost table, and the canonical-pattern
// fingerprints the cache and shard router key on.
// ---------------------------------------------------------------------

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The four machines the seed supported via numeric knobs, now looked
/// up as built-in descriptions.
const CLASSIC_MACHINES: [&str; 4] = ["paper", "tms320c2x", "dsp56k", "adsp210x"];

fn kernel_report_for(machine: &str) -> raco::driver::CompilationReport {
    let spec = *raco::ir::MachineDescription::builtin(machine)
        .unwrap_or_else(|| panic!("`{machine}` is a built-in"))
        .spec();
    let mut config = PipelineConfig::new(spec);
    config.listings = true;
    config.parallelism = Parallelism::Sequential;
    Pipeline::with_config(config).compile_kernels()
}

#[test]
fn classic_descriptions_reproduce_seed_listings_byte_identically() {
    for machine in CLASSIC_MACHINES {
        let report = kernel_report_for(machine);
        assert_eq!(report.failed(), 0, "{machine}:\n{}", report.render_table());
        for lr in report.loops() {
            if !matches!(lr.name.as_str(), "conv2d" | "transpose" | "stencil5") {
                continue;
            }
            let expected = fixture(&format!("listing_{machine}_{}.txt", lr.name));
            let actual = lr.listing.as_deref().expect("listings requested");
            assert_eq!(
                actual, expected,
                "{machine}/{}: listing drifted from the seed capture",
                lr.name
            );
        }
    }
}

#[test]
fn classic_descriptions_reproduce_seed_kernel_costs() {
    let mut pinned = std::collections::BTreeMap::new();
    for line in fixture("kernel_costs_classic.txt").lines() {
        let mut parts = line.split_whitespace();
        let machine = parts.next().expect("machine").to_owned();
        let kernel = parts.next().expect("kernel").to_owned();
        let cost: u64 = parts.next().expect("cost").parse().expect("numeric cost");
        pinned.insert((machine, kernel), cost);
    }
    assert_eq!(
        pinned.len(),
        CLASSIC_MACHINES.len() * raco::kernels::suite().len()
    );
    for machine in CLASSIC_MACHINES {
        let report = kernel_report_for(machine);
        for lr in report.loops() {
            let key = (machine.to_owned(), lr.name.clone());
            assert_eq!(
                Some(&lr.cost),
                pinned.get(&key),
                "{machine}/{}: cost drifted from the seed capture",
                lr.name
            );
            assert_eq!(
                lr.measured_cost,
                Some(lr.cost),
                "{machine}/{}: predicted != measured",
                lr.name
            );
        }
    }
}

#[test]
fn canonical_fingerprints_match_the_seed_capture() {
    // The allocation cache and the serve tier's shard router both key
    // on these fingerprints; a drift would silently invalidate every
    // persisted snapshot and re-shard warm traffic.
    let mut actual = String::new();
    for kernel in raco::kernels::suite() {
        for pattern in kernel.spec().patterns() {
            let canonical = raco::ir::CanonicalPattern::of(&pattern);
            actual.push_str(&format!(
                "FP {} {} {:#018x}\n",
                kernel.name(),
                pattern.array_name(),
                canonical.fingerprint()
            ));
        }
    }
    assert_eq!(
        actual,
        fixture("canonical_fingerprints.txt"),
        "canonical cache keys drifted from the seed capture"
    );
}
