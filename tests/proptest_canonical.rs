//! Property-based soundness of pattern canonicalization — the
//! invariants the driver's allocation cache relies on:
//!
//! 1. shifting every offset by a constant does not change the canonical
//!    form, the distance model, the allocation cost, or the generated
//!    update deltas;
//! 2. equal canonical forms ⇒ equal allocation cost at every register
//!    count (the exact-key table);
//! 3. equal cost classes (canonical up to mirroring) ⇒ equal allocation
//!    cost at every register count (the cost-curve table).

use proptest::prelude::*;

use raco::core::Optimizer;
use raco::graph::DistanceModel;
use raco::ir::canonical::CanonicalPattern;
use raco::ir::{AccessPattern, AguSpec};

/// Strategy: a small pattern plus machine and a shift distance.
fn input() -> impl Strategy<Value = (Vec<i64>, i64, u32, i64)> {
    (
        prop::collection::vec(-6i64..=6, 1..=9),
        prop_oneof![Just(1i64), Just(-1i64), Just(2i64), Just(-2i64), Just(4i64)],
        1u32..=2,
        -40i64..=40,
    )
}

fn shifted(offsets: &[i64], delta: i64) -> Vec<i64> {
    offsets.iter().map(|o| o + delta).collect()
}

fn mirrored(offsets: &[i64]) -> Vec<i64> {
    offsets.iter().map(|o| -o).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn shifting_preserves_the_canonical_form((offsets, stride, _m, delta) in input()) {
        let a = CanonicalPattern::from_offsets(&offsets, stride);
        let b = CanonicalPattern::from_offsets(&shifted(&offsets, delta), stride);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.cost_class(), b.cost_class());
    }

    #[test]
    fn shifting_preserves_the_distance_model((offsets, stride, m, delta) in input()) {
        let a = DistanceModel::from_offsets(&offsets, stride, m);
        let b = DistanceModel::from_offsets(&shifted(&offsets, delta), stride, m);
        for i in 0..offsets.len() {
            for j in 0..offsets.len() {
                prop_assert_eq!(a.intra_distance(i, j), b.intra_distance(i, j));
                prop_assert_eq!(a.wrap_distance(i, j), b.wrap_distance(i, j));
            }
        }
    }

    #[test]
    fn equal_canonical_forms_imply_equal_costs_and_covers(
        (offsets, stride, m, delta) in input(),
    ) {
        let original = AccessPattern::from_offsets(&offsets, stride);
        let moved = AccessPattern::from_offsets(&shifted(&offsets, delta), stride);
        prop_assert_eq!(
            CanonicalPattern::of(&original),
            CanonicalPattern::of(&moved)
        );
        let k_max = 4usize;
        let optimizer = Optimizer::new(AguSpec::new(k_max, m).unwrap());
        prop_assert_eq!(
            optimizer.cost_curve(&original, k_max),
            optimizer.cost_curve(&moved, k_max)
        );
        for k in 1..=k_max {
            let a = optimizer.allocate_with_registers(&original, k);
            let b = optimizer.allocate_with_registers(&moved, k);
            prop_assert_eq!(a.cost(), b.cost(), "k = {}", k);
            prop_assert_eq!(a.virtual_registers(), b.virtual_registers());
            // Same cover structure: the cache may swap one allocation
            // for the other without changing generated code.
            prop_assert_eq!(a.cover().paths().len(), b.cover().paths().len());
            for (pa, pb) in a.cover().paths().iter().zip(b.cover().paths()) {
                prop_assert_eq!(pa.indices(), pb.indices());
            }
        }
    }

    #[test]
    fn equal_cost_classes_imply_equal_costs((offsets, stride, m, _delta) in input()) {
        let fwd = CanonicalPattern::from_offsets(&offsets, stride);
        let neg_stride = -stride;
        let bwd = CanonicalPattern::from_offsets(&mirrored(&offsets), neg_stride);
        prop_assert_eq!(fwd.cost_class(), bwd.cost_class());

        let k_max = 4usize;
        let optimizer = Optimizer::new(AguSpec::new(k_max, m).unwrap());
        let fwd_pattern = AccessPattern::from_offsets(&offsets, stride);
        let bwd_pattern = AccessPattern::from_offsets(&mirrored(&offsets), neg_stride);
        prop_assert_eq!(
            optimizer.cost_curve(&fwd_pattern, k_max),
            optimizer.cost_curve(&bwd_pattern, k_max),
            "mirror images must cost the same at every register count"
        );
    }

    #[test]
    fn fingerprints_rarely_collide_and_always_agree(
        (offsets, stride, _m, delta) in input(),
        (other_offsets, other_stride, _m2, _d2) in input(),
    ) {
        let a = CanonicalPattern::from_offsets(&offsets, stride);
        let b = CanonicalPattern::from_offsets(&shifted(&offsets, delta), stride);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        let c = CanonicalPattern::from_offsets(&other_offsets, other_stride);
        if a != c {
            // FNV-1a over short integer sequences: collisions are
            // possible in principle but would make the cache *slower*,
            // not wrong (full keys are compared); still, none should
            // appear in this tiny space.
            prop_assert_ne!(a.fingerprint(), c.fingerprint());
        }
    }
}
