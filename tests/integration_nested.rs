//! End-to-end integration of the multi-dimensional kernels through the
//! pipeline: golden expectations for `conv2d` / `transpose` /
//! `stencil5`, simulator-validated listings with carry blocks, cache
//! on/off byte-identical reports, and warm-cache hits on a repeated
//! request observed through `CacheStats`.

use raco::driver::{Parallelism, Pipeline, PipelineConfig};
use raco::ir::AguSpec;
use raco::kernels;

fn pipeline(k: usize, caching: bool) -> Pipeline {
    let mut config = PipelineConfig::new(AguSpec::new(k, 1).unwrap());
    config.caching = caching;
    config.parallelism = Parallelism::Sequential;
    config.listings = true;
    Pipeline::with_config(config)
}

/// The three nested kernels as one compilation unit.
fn nested_unit() -> (String, String) {
    let source = [kernels::conv2d(), kernels::transpose(), kernels::stencil5()]
        .iter()
        .map(|k| k.source().to_owned())
        .collect::<Vec<_>>()
        .join("\n");
    ("nested.dsp".to_owned(), source)
}

#[test]
fn the_kernel_suite_lists_the_new_multi_dimensional_kernels() {
    let names: Vec<String> = kernels::suite()
        .iter()
        .map(|k| k.name().to_owned())
        .collect();
    for name in ["conv2d", "transpose", "stencil5"] {
        assert!(names.contains(&name.to_owned()), "suite lacks {name}");
    }
    // And they ride along in the batch workload program.
    let program = kernels::suite_program();
    assert!(program.contains("array img[18][16];"));
    assert!(program.contains("dst[j][i] = src[i][j];"));
}

#[test]
fn nested_kernels_compile_with_simulator_validated_listings() {
    let report = pipeline(4, true)
        .compile_units(&[nested_unit()])
        .expect("nested kernels parse");
    assert_eq!(report.loop_count(), 3);
    assert_eq!(report.failed(), 0, "table:\n{}", report.render_table());

    let suite = kernels::suite();
    for (lr, name) in report.loops().zip(["conv2d", "transpose", "stencil5"]) {
        // Validation simulated the whole nest — every access of every
        // flattened iteration checked against the reference trace.
        let kernel = suite.iter().find(|k| k.name() == name).unwrap();
        let total = kernel.spec().nest().unwrap().total_iterations();
        assert_eq!(lr.measured_cost, Some(lr.cost), "{name}");
        assert_eq!(
            lr.addresses_checked,
            total * lr.accesses as u64,
            "{name}: full-nest validation"
        );
        let listing = lr.listing.as_deref().expect("listings requested");
        assert!(listing.contains("; prologue"), "{name}");
    }

    // Golden structural facts per kernel. conv2d flattens exactly (no
    // carry block, zero steady-state cost on K = 4: three row chains
    // plus the output all step freely).
    let conv = &report.units[0].loops[0];
    assert_eq!(conv.name, "loop0");
    assert_eq!(conv.accesses, 10);
    assert_eq!(conv.arrays, 2);
    assert_eq!(conv.cost, 0, "conv2d rows chain for free on K = 4");
    assert!(
        !conv
            .listing
            .as_deref()
            .unwrap()
            .contains("outer-loop carry"),
        "conv2d needs no carry block"
    );

    // transpose and stencil5 carry at row boundaries; their listings
    // must contain the carry block with the lowered deltas.
    let transpose = &report.units[0].loops[1];
    let listing = transpose.listing.as_deref().unwrap();
    assert!(
        listing.contains("; outer-loop carry (every 16 iteration(s))"),
        "transpose listing lacks its carry block:\n{listing}"
    );
    assert!(
        listing.contains("ADDA") && listing.contains("#-255"),
        "transpose carries 1 - 16*16 = -255:\n{listing}"
    );

    let stencil = &report.units[0].loops[2];
    let listing = stencil.listing.as_deref().unwrap();
    assert!(
        listing.contains("; outer-loop carry (every 14 iteration(s))"),
        "stencil5 listing lacks its carry block:\n{listing}"
    );
    assert!(
        listing.contains("#2"),
        "stencil5 carries 2 per row:\n{listing}"
    );
}

#[test]
fn nested_kernels_cache_on_and_off_are_byte_identical() {
    let cached = pipeline(4, true).compile_units(&[nested_unit()]).unwrap();
    let uncached = pipeline(4, false).compile_units(&[nested_unit()]).unwrap();
    assert_eq!(uncached.cache.allocation_misses, 0, "cache fully bypassed");
    for (a, b) in cached.loops().zip(uncached.loops()) {
        assert_eq!(a, b, "{} diverges between cache modes", a.name);
    }
    // Reports carry the listings, so equality above is byte-for-byte
    // including generated programs and carry blocks.
    assert_eq!(
        cached.units[0].listing, uncached.units[0].listing,
        "assembled unit listings identical"
    );
}

#[test]
fn repeated_nested_requests_hit_the_warm_cache() {
    let pipeline = pipeline(4, true);
    let first = pipeline.compile_units(&[nested_unit()]).unwrap();
    let (h1, m1) = (
        first.cache.allocation_hits + first.cache.curve_hits,
        first.cache.allocation_misses + first.cache.curve_misses,
    );
    let second = pipeline.compile_units(&[nested_unit()]).unwrap();
    let (h2, m2) = (
        second.cache.allocation_hits + second.cache.curve_hits,
        second.cache.allocation_misses + second.cache.curve_misses,
    );
    assert!(h2 > h1, "second identical request must hit ({h1} -> {h2})");
    assert_eq!(m1, m2, "…without any new misses");
    for (a, b) in first.loops().zip(second.loops()) {
        assert_eq!(a, b, "warm results equal cold results");
    }
}

#[test]
fn whole_suite_with_nested_kernels_stays_green_across_machines() {
    // K >= 4: the suite's four-array kernels need one register per
    // array just to be feasible.
    for (k, m) in [(4usize, 1u32), (8, 1), (4, 2)] {
        let mut config = PipelineConfig::new(AguSpec::new(k, m).unwrap());
        config.parallelism = Parallelism::Sequential;
        let report = Pipeline::with_config(config).compile_kernels();
        assert_eq!(
            report.failed(),
            0,
            "K={k} M={m} table:\n{}",
            report.render_table()
        );
    }
}
