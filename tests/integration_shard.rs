//! End-to-end tests of the production serve tier: consistent-hash
//! shard routing (hit-rate parity with a single process), merged
//! snapshots seeding every shard, read/compute deadlines, the
//! slow-loris reap, the connection cap, and a `raco loadgen` smoke run
//! against the real binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

use raco::driver::json::Json;
use raco::driver::PipelineConfig;
use raco::ir::AguSpec;
use raco::serve::{ServeOptions, Server};

fn config() -> PipelineConfig {
    PipelineConfig::new(AguSpec::new(4, 1).unwrap())
}

fn ok(response: &Json) -> bool {
    response.get("ok") == Some(&Json::Bool(true))
}

fn parsed(server: &Server, line: &str) -> Json {
    Json::parse(&server.handle_line(line).line).expect("valid JSON reply")
}

/// A small mixed trace: every shape compiled under two machines, the
/// whole set replayed `rounds` times.
fn trace(rounds: usize) -> Vec<String> {
    let shapes = [
        "for (i = 0; i < 32; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }",
        "for (i = 0; i < 24; i++) { y[i] = x[i] + x[i+4]; }",
        "for (i = 2; i < 40; i++) { y[i] = x[i-2] + x[i+2] + x[i+5]; }",
        "for (i = 0; i < 16; i++) { s += x[i] * h[i]; }",
        "for (i = 1; i < 28; i++) { y[i] = x[i-1] + x[i+6]; }",
    ];
    let machines = [(2u32, 1u32), (4, 2)];
    let mut lines = Vec::new();
    for _ in 0..rounds {
        for source in shapes {
            for (registers, modify) in machines {
                lines.push(format!(
                    "{{\"op\":\"compile\",\"source\":\"{source}\",\"registers\":{registers},\"modify\":{modify}}}"
                ));
            }
        }
    }
    lines
}

/// `(hits, misses)` across allocation and curve caches.
fn cache_traffic(server: &Server) -> (u64, u64) {
    let stats = server.cache_stats();
    (
        stats.allocation_hits + stats.curve_hits,
        stats.allocation_misses + stats.curve_misses,
    )
}

#[test]
fn sharded_hit_rate_matches_the_single_process_baseline() {
    let single = Server::new(config());
    let sharded = Server::with_options(
        config(),
        ServeOptions {
            shards: 4,
            ..ServeOptions::default()
        },
    );
    // Round 1 warms both servers (cold-start cross-machine sharing —
    // the machine-agnostic cost-curve cache — differs by design when
    // the cache is split by machine key; warmth is what the tier
    // promises).
    for line in trace(1) {
        assert!(ok(&parsed(&single, &line)), "{line}");
        assert!(ok(&parsed(&sharded, &line)), "{line}");
    }
    let (single_hits_warm, single_misses_warm) = cache_traffic(&single);
    let (sharded_hits_warm, sharded_misses_warm) = cache_traffic(&sharded);

    // The warm replay: consistent routing sends every repetition of a
    // canonical key to the shard that already compiled it, so the
    // 4-way split must serve the replay as fully from cache as the
    // single process does — no new misses, no fewer hits gained.
    for line in trace(2) {
        assert!(ok(&parsed(&single, &line)), "{line}");
        assert!(ok(&parsed(&sharded, &line)), "{line}");
    }
    let (single_hits, single_misses) = cache_traffic(&single);
    let (sharded_hits, sharded_misses) = cache_traffic(&sharded);
    assert_eq!(
        sharded_misses, sharded_misses_warm,
        "a warm replay must not miss on any shard"
    );
    assert_eq!(single_misses, single_misses_warm);
    let baseline = single_hits - single_hits_warm;
    let routed = sharded_hits - sharded_hits_warm;
    assert!(baseline > 0, "repeated trace must hit a warm cache");
    assert!(
        routed >= baseline,
        "sharded warm hits {routed} fell below the single-process baseline {baseline}"
    );
    // And the shards split the work instead of one taking everything.
    let metrics = parsed(&sharded, r#"{"op":"metrics"}"#);
    let Some(Json::Arr(shards)) = metrics.get("metrics").and_then(|m| m.get("shards")) else {
        panic!("sharded metrics report a shards array");
    };
    assert_eq!(shards.len(), 4);
    let busy = shards
        .iter()
        .filter(|s| s.get("requests").and_then(Json::as_u64).unwrap() > 0)
        .count();
    assert!(busy >= 2, "a mixed trace must land on several shards");
}

#[test]
fn merged_snapshots_seed_every_shard_warm() {
    let snap = std::env::temp_dir().join(format!("raco-shard-snap-{}.bin", std::process::id()));
    std::fs::remove_file(&snap).ok();

    // Warm a 4-shard server, then snapshot the union of its caches.
    let warm = Server::with_options(
        config(),
        ServeOptions {
            shards: 4,
            ..ServeOptions::default()
        },
    );
    for line in trace(1) {
        assert!(ok(&parsed(&warm, &line)));
    }
    let saved = parsed(
        &warm,
        &format!("{{\"op\":\"save_cache\",\"path\":\"{}\"}}", snap.display()),
    );
    assert!(ok(&saved), "{saved:?}");

    // A fresh server — with a *different* shard count — seeds every
    // shard from the snapshot, so the whole first replay hits.
    let reborn = Server::with_options(
        config(),
        ServeOptions {
            shards: 2,
            ..ServeOptions::default()
        },
    );
    reborn.load_cache(&snap).expect("snapshot loads");
    std::fs::remove_file(&snap).ok();
    for line in trace(1) {
        assert!(ok(&parsed(&reborn, &line)));
    }
    let stats = reborn.cache_stats();
    assert_eq!(
        stats.allocation_misses, 0,
        "every shard booted warm: {stats:?}"
    );
    assert!(stats.allocation_hits > 0);
}

#[test]
fn compute_deadline_errors_by_name_and_the_connection_survives() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = Server::with_options(
        config(),
        ServeOptions {
            compute_deadline: Some(Duration::from_nanos(1)),
            ..ServeOptions::default()
        },
    );

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();

        // A 1 ns budget cannot cover a cold compile: a *named* error
        // comes back instead of a dead connection.
        writeln!(
            writer,
            r#"{{"id":1,"op":"compile","source":"for (i = 0; i < 48; i++) {{ y[i] = x[i-3] + x[i] + x[i+3]; }}"}}"#
        )
        .unwrap();
        reader.read_line(&mut reply).expect("deadline reply");
        let json = Json::parse(&reply).expect("valid JSON");
        assert_eq!(json.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            json.get("error_kind").and_then(Json::as_str),
            Some("compute_deadline")
        );

        // Same connection keeps serving…
        writeln!(writer, r#"{{"op":"ping","id":2}}"#).unwrap();
        reply.clear();
        reader.read_line(&mut reply).expect("ping reply");
        assert!(reply.contains(r#""pong":true"#), "{reply}");

        // …and metrics counted the deadline hit.
        writeln!(writer, r#"{{"op":"metrics"}}"#).unwrap();
        reply.clear();
        reader.read_line(&mut reply).expect("metrics reply");
        let metrics = Json::parse(&reply).unwrap();
        let compute = metrics
            .get("metrics")
            .and_then(|m| m.get("deadlines"))
            .and_then(|d| d.get("compute"))
            .and_then(Json::as_u64)
            .expect("deadline counter");
        assert!(compute >= 1);

        writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
        reply.clear();
        reader.read_line(&mut reply).expect("shutdown ack");
        handle.join().expect("server thread").expect("clean exit");
    });
}

#[test]
fn slow_loris_is_reaped_while_live_clients_keep_being_served() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = Server::with_options(
        config(),
        ServeOptions {
            read_deadline: Some(Duration::from_millis(300)),
            ..ServeOptions::default()
        },
    );

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        // The attacker: sends half a request line and then nothing,
        // forever. Before the read deadline this pinned a connection
        // thread until process exit.
        let loris = TcpStream::connect(addr).expect("connect");
        let mut loris_writer = loris.try_clone().unwrap();
        loris_writer.write_all(br#"{"op":"comp"#).unwrap();
        loris_writer.flush().unwrap();

        // Meanwhile a healthy client mixes pings with an oversized
        // frame — the adversarial mix must cost it nothing.
        let healthy = TcpStream::connect(addr).expect("connect");
        let mut healthy_writer = healthy.try_clone().unwrap();
        let mut healthy_reader = BufReader::new(healthy);
        let mut reply = String::new();
        for round in 0..4 {
            if round == 2 {
                let oversized = format!("{}\n", "x".repeat(raco::serve::MAX_REQUEST_LINE + 16));
                healthy_writer.write_all(oversized.as_bytes()).unwrap();
                reply.clear();
                healthy_reader
                    .read_line(&mut reply)
                    .expect("oversize reply");
                assert!(reply.contains(r#""ok":false"#), "{reply}");
            }
            writeln!(healthy_writer, r#"{{"op":"ping","id":{round}}}"#).unwrap();
            reply.clear();
            healthy_reader.read_line(&mut reply).expect("ping reply");
            assert!(reply.contains(r#""pong":true"#), "{reply}");
            std::thread::sleep(Duration::from_millis(150));
        }

        // By now (~600 ms > 300 ms deadline) the loris got a named
        // error and a close — the thread it pinned is reclaimed.
        let mut loris_reader = BufReader::new(loris);
        let mut last_words = String::new();
        loris_reader
            .read_to_string(&mut last_words)
            .expect("loris connection closed cleanly");
        assert!(
            last_words.contains(r#""error_kind":"read_deadline""#),
            "loris must be told why: {last_words:?}"
        );

        // The reap is visible in metrics, and the healthy client still
        // gets answers afterwards.
        writeln!(healthy_writer, r#"{{"op":"metrics"}}"#).unwrap();
        reply.clear();
        healthy_reader.read_line(&mut reply).expect("metrics reply");
        let metrics = Json::parse(&reply).unwrap();
        let reaped = metrics
            .get("metrics")
            .and_then(|m| m.get("deadlines"))
            .and_then(|d| d.get("read"))
            .and_then(Json::as_u64)
            .expect("read deadline counter");
        assert!(reaped >= 1, "{metrics:?}");

        writeln!(healthy_writer, r#"{{"op":"shutdown"}}"#).unwrap();
        reply.clear();
        healthy_reader.read_line(&mut reply).expect("shutdown ack");
        handle.join().expect("server thread").expect("clean exit");
    });
}

#[test]
fn dribbled_requests_within_the_deadline_still_parse() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = Server::with_options(
        config(),
        ServeOptions {
            read_deadline: Some(Duration::from_secs(5)),
            ..ServeOptions::default()
        },
    );

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        // A congested-but-honest client: the frame arrives in 8-byte
        // pieces with pauses, completing well inside the deadline.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let framed =
            "{\"id\":7,\"op\":\"compile\",\"source\":\"for (i = 0; i < 8; i++) { s += x[i]; }\"}\n";
        for piece in framed.as_bytes().chunks(8) {
            writer.write_all(piece).unwrap();
            writer.flush().unwrap();
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        let json = Json::parse(&reply).expect("valid JSON");
        assert!(ok(&json), "{reply}");
        assert_eq!(json.get("id").and_then(Json::as_u64), Some(7));

        writeln!(writer, r#"{{"op":"shutdown"}}"#).unwrap();
        reply.clear();
        reader.read_line(&mut reply).expect("shutdown ack");
        handle.join().expect("server thread").expect("clean exit");
    });
}

#[test]
fn over_limit_connections_get_busy_and_a_clean_close() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = Server::with_options(
        config(),
        ServeOptions {
            max_connections: 1,
            ..ServeOptions::default()
        },
    );

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        // The one allowed client, with a round trip to make sure its
        // accept has been processed.
        let first = TcpStream::connect(addr).expect("connect");
        let mut first_writer = first.try_clone().unwrap();
        let mut first_reader = BufReader::new(first);
        let mut reply = String::new();
        writeln!(first_writer, r#"{{"op":"ping","id":1}}"#).unwrap();
        first_reader.read_line(&mut reply).expect("ping reply");
        assert!(reply.contains(r#""pong":true"#));

        // One past the cap: an `ok:false` busy response, then EOF.
        let refused = TcpStream::connect(addr).expect("connect");
        let mut refused_reader = BufReader::new(refused);
        let mut last_words = String::new();
        refused_reader
            .read_to_string(&mut last_words)
            .expect("refused connection closes cleanly");
        assert!(
            last_words.contains(r#""error_kind":"busy""#),
            "refused client must be told why: {last_words:?}"
        );

        // The in-limit client is unaffected, and the shed shows up in
        // its metrics.
        writeln!(first_writer, r#"{{"op":"metrics"}}"#).unwrap();
        reply.clear();
        first_reader.read_line(&mut reply).expect("metrics reply");
        let metrics = Json::parse(&reply).unwrap();
        let shed = metrics
            .get("metrics")
            .and_then(|m| m.get("shed"))
            .and_then(|s| s.get("connections"))
            .and_then(Json::as_u64)
            .expect("shed connection counter");
        assert!(shed >= 1);

        writeln!(first_writer, r#"{{"op":"shutdown"}}"#).unwrap();
        reply.clear();
        first_reader.read_line(&mut reply).expect("shutdown ack");
        handle.join().expect("server thread").expect("clean exit");
    });
}

#[test]
fn loadgen_smoke_produces_a_schema_versioned_artifact() {
    let artifact =
        std::env::temp_dir().join(format!("raco-loadgen-smoke-{}.json", std::process::id()));
    std::fs::remove_file(&artifact).ok();
    let status = std::process::Command::new(PathBuf::from(env!("CARGO_BIN_EXE_raco")))
        .args([
            "loadgen",
            "--requests",
            "200",
            "--connections",
            "2",
            "--shards",
            "2",
            "--shapes",
            "8",
            "--seed",
            "11",
            "--quiet",
            "-o",
        ])
        .arg(&artifact)
        .status()
        .expect("run raco loadgen");
    assert!(status.success(), "loadgen exit: {status:?}");

    let json = Json::parse(&std::fs::read_to_string(&artifact).expect("artifact written"))
        .expect("artifact is valid JSON");
    std::fs::remove_file(&artifact).ok();
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some(raco::loadgen::SCHEMA)
    );
    assert_eq!(
        json.get("version").and_then(Json::as_u64),
        Some(raco::loadgen::SCHEMA_VERSION)
    );
    assert_eq!(json.get("requests").and_then(Json::as_u64), Some(200));
    let errors = json.get("errors").expect("errors object");
    assert_eq!(
        errors.get("transport").and_then(Json::as_u64),
        Some(0),
        "no connection deaths under load: {errors:?}"
    );
    assert_eq!(errors.get("rejected").and_then(Json::as_u64), Some(0));
    assert!(
        json.get("latency_us")
            .and_then(|l| l.get("p99_us"))
            .is_some(),
        "latency quantiles present"
    );
    // The spawned 2-shard server reported per-shard hit rates.
    let shards = match json.get("server").and_then(|s| s.get("shards")) {
        Some(Json::Arr(shards)) => shards,
        other => panic!("per-shard breakdown expected, got {other:?}"),
    };
    assert_eq!(shards.len(), 2);
    let requests: u64 = shards
        .iter()
        .map(|s| s.get("requests").and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(requests, 200, "every request executed on some shard");
}
