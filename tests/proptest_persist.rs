//! Property-based and table-driven coverage of the cache snapshot
//! codec (`raco_driver::persist`):
//!
//! 1. **round trip** — for random cache contents `x`, restoring a
//!    snapshot into a fresh cache and re-encoding reproduces the
//!    snapshot byte for byte (`save(load(x)) == x`), and every
//!    restored entry answers lookups with the exact allocation the
//!    original cache computed;
//! 2. **corruption** — a table of damaged snapshots (truncated record,
//!    bad checksum, wrong version, bad magic, garbage payloads) loads
//!    without panicking, skips exactly the damaged entries, and counts
//!    a warning for each rejection.

use proptest::prelude::*;

use raco::core::{MergeStrategy, Optimizer, OptimizerOptions};
use raco::driver::persist::{self, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use raco::driver::AllocationCache;
use raco::ir::{AccessPattern, AguSpec, CanonicalPattern, UpdateRange};

/// Strategy: a batch of random small patterns plus machine parameters
/// and optimizer options — i.e. random cache contents. Update ranges
/// cover symmetric paper machines and asymmetric (post-increment /
/// skewed) description-backed machines.
fn contents() -> impl Strategy<Value = (Vec<Vec<i64>>, i64, UpdateRange, usize, u8, u64)> {
    (
        prop::collection::vec(prop::collection::vec(-9i64..=9, 1..=8), 1..=6),
        prop_oneof![Just(1i64), Just(-1i64), Just(2i64)],
        prop_oneof![
            Just(UpdateRange::symmetric(1)),
            Just(UpdateRange::symmetric(2)),
            Just(UpdateRange::new(0, 1).unwrap()),
            Just(UpdateRange::new(-1, 2).unwrap()),
        ],
        1usize..=4,
        0u8..=2, // merge strategy selector
        0u64..=u64::from(u32::MAX),
    )
}

fn options_for(selector: u8, seed: u64) -> OptimizerOptions {
    OptimizerOptions {
        strategy: match selector {
            0 => MergeStrategy::GreedyMinCost,
            1 => MergeStrategy::FirstPair,
            _ => MergeStrategy::Random { seed },
        },
        ..OptimizerOptions::default()
    }
}

/// Warms a cache with real allocations and cost curves for `patterns`.
fn warm_cache(
    patterns: &[Vec<i64>],
    stride: i64,
    range: UpdateRange,
    k: usize,
    options: &OptimizerOptions,
) -> AllocationCache {
    let cache = AllocationCache::new();
    let agu = AguSpec::new(k, 1).unwrap().with_update_range(range);
    let optimizer = Optimizer::with_options(agu, *options);
    for offsets in patterns {
        let pattern = AccessPattern::from_offsets(offsets, stride);
        let canonical = CanonicalPattern::of(&pattern);
        let _ = cache.cost_curve(&canonical, range, k, options, || {
            optimizer.cost_curve(&pattern, k)
        });
        let _ = cache.allocation(&canonical, range, k, options, || {
            optimizer.allocate(&pattern)
        });
    }
    cache
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_round_trip_is_byte_identical(
        (patterns, stride, range, k, strategy, seed) in contents()
    ) {
        let options = options_for(strategy, seed);
        let cache = warm_cache(&patterns, stride, range, k, &options);
        let bytes = persist::encode(&cache);

        let restored = AllocationCache::new();
        let report = persist::decode_into(&restored, &bytes);
        prop_assert_eq!(report.skipped, 0, "warnings: {:?}", report.warnings);
        prop_assert_eq!(report.duplicates, 0, "fresh cache cannot hold duplicates");
        prop_assert_eq!(report.loaded(), restored.stats().loaded as usize);

        // save(load(x)) == x: records are sorted, so equal contents
        // mean equal bytes.
        prop_assert_eq!(persist::encode(&restored), bytes);
    }

    #[test]
    fn restored_entries_answer_lookups_identically(
        (patterns, stride, range, k, strategy, seed) in contents()
    ) {
        let options = options_for(strategy, seed);
        let cache = warm_cache(&patterns, stride, range, k, &options);
        let restored = AllocationCache::new();
        persist::decode_into(&restored, &persist::encode(&cache));

        for offsets in &patterns {
            let canonical = CanonicalPattern::of(&AccessPattern::from_offsets(offsets, stride));
            let original = cache.allocation(&canonical, range, k, &options, || {
                panic!("warm cache must hit")
            });
            let loaded = restored.allocation(&canonical, range, k, &options, || {
                panic!("restored cache must hit")
            });
            prop_assert_eq!(&*original, &*loaded, "allocation for {:?}", offsets);
            let original_curve = cache.cost_curve(&canonical, range, k, &options, || {
                panic!("warm cache must hit")
            });
            let loaded_curve = restored.cost_curve(&canonical, range, k, &options, || {
                panic!("restored cache must hit")
            });
            prop_assert_eq!(&*original_curve, &*loaded_curve, "curve for {:?}", offsets);
        }
        // Every lookup above was a hit; nothing recomputed.
        prop_assert_eq!(restored.stats().allocation_misses, 0);
        prop_assert_eq!(restored.stats().curve_misses, 0);
    }
}

// ---------------------------------------------------------------------
// Table-driven corruption cases
// ---------------------------------------------------------------------

/// Recomputes and patches the trailing whole-file checksum, so a
/// deliberately damaged body still passes the checksum gate and
/// exercises the per-record rejection paths.
fn reseal(bytes: &mut [u8]) {
    let split = bytes.len() - 8;
    let sum = persist::checksum(&bytes[..split]);
    bytes[split..].copy_from_slice(&sum.to_le_bytes());
}

fn reference_snapshot() -> (AllocationCache, Vec<u8>) {
    let options = OptimizerOptions::default();
    let cache = warm_cache(
        &[vec![1, 0, 2, -1], vec![0, 5, 10], vec![0, -2, 4]],
        1,
        UpdateRange::symmetric(1),
        2,
        &options,
    );
    let bytes = persist::encode(&cache);
    (cache, bytes)
}

#[test]
fn corrupt_snapshots_are_skipped_with_counted_warnings() {
    let (_cache, good) = reference_snapshot();

    struct Case {
        name: &'static str,
        mutate: fn(&mut Vec<u8>),
        expect_loaded: Option<usize>, // None: just "strictly fewer than good"
        needle: &'static str,
    }
    let cases = [
        Case {
            name: "bad magic",
            mutate: |b| b[0] = b'X',
            expect_loaded: Some(0),
            needle: "bad magic",
        },
        Case {
            name: "wrong version",
            mutate: |b| {
                b[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 7).to_le_bytes());
                reseal(b);
            },
            expect_loaded: Some(0),
            needle: "unsupported snapshot version",
        },
        Case {
            name: "previous-version (v2) snapshot",
            mutate: |b| {
                // A v2 header over otherwise-valid bytes: rejected
                // whole with a counted warning — v2 keys cannot
                // express update ranges or ADDA costs.
                b[8..12].copy_from_slice(&2u32.to_le_bytes());
                reseal(b);
            },
            expect_loaded: Some(0),
            needle: "unsupported snapshot version 2",
        },
        Case {
            name: "bad checksum",
            mutate: |b| {
                let mid = b.len() / 2;
                b[mid] ^= 0x40;
            },
            expect_loaded: Some(0),
            needle: "checksum mismatch",
        },
        Case {
            name: "truncated record",
            mutate: |b| {
                // Drop one byte from the tail of the last record's
                // payload (just before the trailer) and reseal: the
                // file verifies, but the last record's declared length
                // overruns what is actually there.
                b.remove(b.len() - 10);
                reseal(b);
            },
            expect_loaded: None,
            needle: "truncated record overruns",
        },
        Case {
            name: "garbage payload with valid framing",
            mutate: |b| {
                // Append one well-framed record full of junk.
                let trailer_at = b.len() - 9;
                let mut record = vec![0x01u8];
                record.extend_from_slice(&12u32.to_le_bytes());
                record.extend_from_slice(b"notasnapshot");
                b.splice(trailer_at..trailer_at, record);
                reseal(b);
            },
            expect_loaded: Some(6),
            needle: "allocation record rejected",
        },
        Case {
            name: "unknown record tag",
            mutate: |b| {
                let trailer_at = b.len() - 9;
                let mut record = vec![0x7Fu8];
                record.extend_from_slice(&3u32.to_le_bytes());
                record.extend_from_slice(b"???");
                b.splice(trailer_at..trailer_at, record);
                reseal(b);
            },
            expect_loaded: Some(6),
            needle: "unknown record tag",
        },
        Case {
            name: "empty file",
            mutate: Vec::clear,
            expect_loaded: Some(0),
            needle: "too short",
        },
    ];

    for case in &cases {
        let mut bytes = good.clone();
        (case.mutate)(&mut bytes);
        let fresh = AllocationCache::new();
        let report = persist::decode_into(&fresh, &bytes);
        match case.expect_loaded {
            Some(expected) => assert_eq!(
                report.loaded(),
                expected,
                "{}: loaded {:?}",
                case.name,
                report
            ),
            None => assert!(
                report.loaded() < 6,
                "{}: truncation must lose entries: {:?}",
                case.name,
                report
            ),
        }
        assert!(report.skipped > 0, "{}: must count a skip", case.name);
        assert!(
            report.warnings.iter().any(|w| w.contains(case.needle)),
            "{}: warnings {:?} lack `{}`",
            case.name,
            report.warnings,
            case.needle
        );
        assert_eq!(
            fresh.stats().loaded as usize,
            report.loaded(),
            "{}: stats agree with the report",
            case.name
        );
    }

    // The undamaged reference stays fully loadable (the table above
    // did not depend on a stale fixture).
    let fresh = AllocationCache::new();
    let report = persist::decode_into(&fresh, &good);
    assert_eq!(report.loaded(), 6);
    assert_eq!(report.skipped, 0);
    assert_eq!(SNAPSHOT_MAGIC.len(), 8);
}
