//! Property-based tests of the path-cover machinery: Phase-1 invariants,
//! bound soundness, oracle agreement and merge invariants.

use proptest::prelude::*;

use raco::core::{phase1, phase2, CostModel, MergeStrategy, Phase1Outcome};
use raco::graph::{bb, bounds, brute, matching, BbOptions, DistanceModel};

/// Strategy: a small random pattern (offsets, stride, modify range).
fn pattern() -> impl Strategy<Value = (Vec<i64>, i64, u32)> {
    (
        prop::collection::vec(-6i64..=6, 1..=10),
        prop_oneof![Just(1i64), Just(-1i64), Just(2i64), Just(4i64)],
        1u32..=2,
    )
}

/// Strategy: a tiny pattern suitable for Bell-number oracles.
fn tiny_pattern() -> impl Strategy<Value = (Vec<i64>, i64, u32)> {
    (
        prop::collection::vec(-4i64..=4, 1..=7),
        prop_oneof![Just(1i64), Just(-1i64), Just(2i64)],
        1u32..=2,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn matching_cover_partitions_and_is_intra_free((offsets, stride, m) in pattern()) {
        let dm = DistanceModel::from_offsets(&offsets, stride, m);
        let cover = matching::min_path_cover(&dm);
        prop_assert_eq!(cover.accesses(), offsets.len());
        prop_assert_eq!(
            cover.paths().iter().map(|p| p.len()).sum::<usize>(),
            offsets.len()
        );
        prop_assert_eq!(cover.total_cost(&dm, false), 0);
        prop_assert_eq!(cover.register_count(), matching::min_path_cover_size(&dm));
    }

    #[test]
    fn bounds_sandwich_the_exact_answer((offsets, stride, m) in pattern()) {
        let dm = DistanceModel::from_offsets(&offsets, stride, m);
        let b = bounds::bounds(&dm);
        if let Ok(result) = bb::min_zero_cost_cover(&dm) {
            let exact = result.virtual_registers();
            prop_assert!(b.lower <= exact, "LB {} > exact {exact}", b.lower);
            if let Some(ub) = b.upper_value() {
                prop_assert!(exact <= ub, "exact {exact} > UB {ub}");
            }
            prop_assert!(result.cover.is_zero_cost(&dm));
        } else if let Some(ub_cover) = &b.upper {
            // If the heuristic found a zero-cost cover, the exact search
            // cannot have failed.
            prop_assert!(
                false,
                "search infeasible but heuristic found {:?}",
                ub_cover.register_count()
            );
        }
    }

    #[test]
    fn bb_agrees_with_the_exhaustive_oracle((offsets, stride, m) in tiny_pattern()) {
        let dm = DistanceModel::from_offsets(&offsets, stride, m);
        let oracle = brute::min_zero_cost_cover_brute(&dm);
        let search = bb::min_zero_cost_cover(&dm);
        match (oracle, search) {
            (Some(b), Ok(r)) => {
                prop_assert_eq!(r.virtual_registers(), b.register_count());
                prop_assert!(r.optimal);
            }
            (None, Err(_)) => {}
            (o, s) => prop_assert!(false, "feasibility mismatch: {:?} vs {:?}", o, s),
        }
    }

    #[test]
    fn phase1_cover_is_always_a_partition((offsets, stride, m) in pattern()) {
        let dm = DistanceModel::from_offsets(&offsets, stride, m);
        let report = phase1::run(&dm, BbOptions::default());
        let cover = report.cover();
        prop_assert_eq!(cover.accesses(), offsets.len());
        let mut seen = vec![false; offsets.len()];
        for path in cover.paths() {
            for &i in path.indices() {
                prop_assert!(!seen[i], "access {} covered twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        match report.outcome() {
            Phase1Outcome::ZeroCost { .. } => {
                prop_assert!(cover.is_zero_cost(&dm));
            }
            Phase1Outcome::Relaxed => {
                prop_assert_eq!(cover.total_cost(&dm, false), 0);
            }
            // `Phase1Outcome` is non-exhaustive; any future outcome must
            // still produce a partition (checked above).
            _ => {}
        }
    }

    #[test]
    fn merging_reaches_the_constraint_and_preserves_the_partition(
        (offsets, stride, m) in pattern(),
        k in 1usize..=4,
    ) {
        let dm = DistanceModel::from_offsets(&offsets, stride, m);
        let p1 = phase1::run(&dm, BbOptions::default());
        for strategy in [
            MergeStrategy::GreedyMinCost,
            MergeStrategy::Random { seed: 99 },
            MergeStrategy::FirstPair,
            MergeStrategy::WorstCost,
        ] {
            let report = phase2::merge_until(
                p1.cover(), k, &dm, CostModel::steady_state(), strategy,
            );
            prop_assert!(report.cover().register_count() <= k.max(1));
            prop_assert_eq!(
                report.cover().paths().iter().map(|p| p.len()).sum::<usize>(),
                offsets.len()
            );
        }
    }

    #[test]
    fn below_k_tilde_is_never_free(
        (offsets, stride, m) in pattern(),
        k in 1usize..=3,
    ) {
        // The paper's Section 3.2 observations, in their provable form:
        // the merged path of the *first* merge from the zero-cost cover
        // costs at least one unit, and no cover below K̃ can be free
        // (otherwise K̃ would not be minimal). Note that *cumulative*
        // totals need not increase with every merge — a later merge can
        // repair a previously paid wrap (e.g. offsets 4, 3, 6) — so that
        // stronger claim is intentionally not asserted.
        let dm = DistanceModel::from_offsets(&offsets, stride, m);
        let p1 = phase1::run(&dm, BbOptions::default());
        if !matches!(
            p1.outcome(),
            Phase1Outcome::ZeroCost { proved_minimal: true }
        ) {
            return Ok(());
        }
        let k_tilde = p1.virtual_registers();
        let report = phase2::merge_until(
            p1.cover(), k, &dm, CostModel::steady_state(), MergeStrategy::GreedyMinCost,
        );
        if let Some(first) = report.records().first() {
            prop_assert!(first.merged_path_cost >= 1);
        }
        for (count, cost) in report.cost_trajectory() {
            if *count < k_tilde {
                prop_assert!(
                    *cost >= 1,
                    "a zero-cost cover with {} < K̃ = {} paths contradicts minimality",
                    count,
                    k_tilde
                );
            }
        }
    }

    #[test]
    fn greedy_cost_curve_is_monotone((offsets, stride, m) in pattern()) {
        let agu = raco::ir::AguSpec::new(8, m).unwrap();
        let pattern = raco::ir::AccessPattern::from_offsets(&offsets, stride);
        let curve = raco::core::Optimizer::new(agu).cost_curve(&pattern, 8);
        for w in curve.windows(2) {
            prop_assert!(
                w[0] >= w[1],
                "more registers must not cost more: {:?}",
                curve
            );
        }
    }

    #[test]
    fn memoized_and_unmemoized_search_agree((offsets, stride, m) in tiny_pattern()) {
        let dm = DistanceModel::from_offsets(&offsets, stride, m);
        let a = bb::min_zero_cost_cover_with(&dm, BbOptions { node_limit: 1_000_000, memoize: true });
        let b = bb::min_zero_cost_cover_with(&dm, BbOptions { node_limit: 1_000_000, memoize: false });
        match (a, b) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.virtual_registers(), y.virtual_registers()),
            (Err(_), Err(_)) => {}
            (x, y) => prop_assert!(false, "disagreement: {:?} vs {:?}", x, y),
        }
    }
}
