//! Property-based tests of the offset-assignment crate (SOA/GOA).

use proptest::prelude::*;

use raco::oa::{exhaustive, goa, soa, AccessSequence, StackLayout, VarId};

fn sequence() -> impl Strategy<Value = AccessSequence> {
    (2usize..=7, 2usize..=24).prop_flat_map(|(vars, len)| {
        prop::collection::vec(0u32..vars as u32, len..=len)
            .prop_map(move |ids| AccessSequence::new(ids.into_iter().map(VarId).collect(), vars))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn liao_layout_is_a_permutation(seq in sequence()) {
        let layout = soa::liao(&seq);
        let mut seen = vec![false; layout.variables()];
        for v in 0..layout.variables() {
            let slot = layout.offset(VarId(v as u32));
            prop_assert!(slot < seen.len());
            prop_assert!(!seen[slot]);
            seen[slot] = true;
        }
    }

    #[test]
    fn liao_is_bounded_by_oracle_and_worst_case(seq in sequence()) {
        let liao_cost = soa::cost(&seq, &soa::liao(&seq));
        // Lower bound: the exhaustive optimum (vars <= 7 by construction).
        let (_, optimal) = exhaustive::optimal_soa(&seq);
        prop_assert!(liao_cost >= optimal);
        // Upper bound: every consecutive pair over distinct variables.
        let pairs = seq
            .accesses()
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count() as u32;
        prop_assert!(liao_cost <= pairs);
    }

    #[test]
    fn costs_respect_the_modify_range(seq in sequence(), m in 1u32..=3) {
        let layout = StackLayout::first_use(&seq);
        // Larger ranges can only reduce cost.
        prop_assert!(layout.cost(&seq, m + 1) <= layout.cost(&seq, m));
        // Range >= vars - 1 makes everything free.
        let huge = seq.variables() as u32;
        prop_assert_eq!(layout.cost(&seq, huge), 0);
    }

    #[test]
    fn goa_with_more_registers_never_beats_its_own_seed(seq in sequence()) {
        // The GOA heuristic starts from the single-register solution and
        // only accepts strict improvements, so cost(k) <= cost(1).
        let single = goa::run(&seq, 1).cost();
        for k in 2..=3 {
            prop_assert!(goa::run(&seq, k).cost() <= single);
        }
    }

    #[test]
    fn goa_assignment_covers_every_variable(seq in sequence(), k in 1usize..=4) {
        let solution = goa::run(&seq, k);
        prop_assert_eq!(solution.assignment().len(), seq.variables());
        for v in 0..seq.variables() {
            prop_assert!(solution.register_of(VarId(v as u32)) < solution.registers());
        }
        // The reported cost must equal re-evaluating the assignment.
        prop_assert_eq!(
            solution.cost(),
            goa::evaluate_assignment(&seq, solution.assignment(), solution.registers())
        );
    }

    #[test]
    fn projections_preserve_per_variable_counts(seq in sequence()) {
        let keep: Vec<bool> = (0..seq.variables()).map(|v| v % 2 == 0).collect();
        if let Some(sub) = seq.project(&keep) {
            let full = seq.frequencies();
            let projected = sub.frequencies();
            for v in 0..seq.variables() {
                if keep[v] {
                    prop_assert_eq!(projected[v], full[v]);
                } else {
                    prop_assert_eq!(projected[v], 0);
                }
            }
        }
    }
}
