//! End-to-end runs of the `raco fuzz` harness against the real binary.
//!
//! These are short, budgeted smoke runs — the CI long-runner gives the
//! harness a real budget; here the point is that the whole machinery
//! (spawn, NDJSON framing over both transports, cross-check against
//! the in-process reference, snapshot cycles, teardown) works and a
//! clean tree produces zero failures.

use std::path::PathBuf;
use std::time::Duration;

use raco::fuzz::{self, FuzzConfig, Transport};

fn binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_raco"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("raco-fuzz-harness-{tag}-{}", std::process::id()))
}

fn run_transport(transport: Transport, tag: &str, seed: u64) {
    let dir = scratch_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = FuzzConfig::new(binary(), Duration::from_secs(5), seed);
    config.transport = transport;
    config.failures_dir = dir.clone();
    config.max_cases = 60;
    let outcome = fuzz::run(&config).expect("fuzz infrastructure works");
    assert!(
        outcome.failures.is_empty(),
        "clean tree must fuzz clean, got: {:?}",
        outcome.failures
    );
    assert!(outcome.cases > 0, "budget must admit at least one case");
    assert!(outcome.valid > 0, "mix must include valid compiles");
    assert!(
        !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
        "no repro files on a clean run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_tree_fuzzes_clean_over_stdio() {
    run_transport(Transport::Stdio, "stdio", 0x5eed_0001);
}

#[test]
fn clean_tree_fuzzes_clean_over_tcp() {
    run_transport(Transport::Tcp, "tcp", 0x5eed_0002);
}

#[test]
fn fuzz_subcommand_reports_outcome_and_exits_zero() {
    let dir = scratch_dir("cli");
    let _ = std::fs::remove_dir_all(&dir);
    let output = std::process::Command::new(binary())
        .args([
            "fuzz",
            "--budget",
            "3s",
            "--seed",
            "99",
            "--max-cases",
            "30",
            "--failures-dir",
        ])
        .arg(&dir)
        .output()
        .expect("raco fuzz runs");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "exit {:?}, stderr:\n{stderr}",
        output.status.code()
    );
    assert!(stderr.contains("seed 0x63"), "stderr:\n{stderr}");
    assert!(stderr.contains("0 failure(s)"), "stderr:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_subcommand_rejects_bad_flags() {
    for args in [
        vec!["fuzz", "--budget", "ten"],
        vec!["fuzz", "--transport", "carrier-pigeon"],
        vec!["fuzz", "extra-positional"],
    ] {
        let output = std::process::Command::new(binary())
            .args(&args)
            .output()
            .expect("raco runs");
        assert_eq!(output.status.code(), Some(2), "args {args:?}");
    }
}
