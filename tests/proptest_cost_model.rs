//! Differential properties of the modify-register-aware cost model.
//!
//! The allocator's Phase 2 prices modify registers itself, so its
//! predicted address-update count must equal what the cycle-accurate
//! simulator measures on the generated code — on every machine,
//! including MR-equipped ones. These properties pin that end to end:
//!
//! * **differential** — random patterns × machines with 0..=4 modify
//!   registers: allocate, generate code, simulate, and require
//!   `predicted == measured` exactly (single- and multi-array loops,
//!   uncached and through the pipeline's cached path);
//! * **monotonicity** — more modify registers never increase the
//!   predicted cost;
//! * **zero-MR identity** — on machines without modify registers the
//!   allocation is byte-identical to the pre-change model (the paper's
//!   Figure 1 reproduction cannot drift);
//! * **cache-key soundness** — machines differing only in MR count
//!   never share allocation-cache entries, in memory or through
//!   snapshots, and pre-bump snapshots are rejected cleanly.

use proptest::prelude::*;

use raco::agu::codegen::CodeGenerator;
use raco::agu::sim;
use raco::core::{Optimizer, OptimizerOptions};
use raco::driver::{persist, AllocationCache, Pipeline, PipelineConfig};
use raco::ir::{
    AccessKind, AccessPattern, AguSpec, CanonicalPattern, LoopSpec, MemoryLayout, Trace,
};

/// Strategy: a random access pattern (offsets, stride, modify range).
fn pattern() -> impl Strategy<Value = (Vec<i64>, i64, u32)> {
    (
        prop::collection::vec(-12i64..=12, 2..=10),
        prop_oneof![Just(1i64), Just(-1i64), Just(2i64), Just(-3i64), Just(5i64)],
        0u32..=2,
    )
}

/// Builds a single-array loop whose pattern is exactly `offsets`.
fn single_array_loop(offsets: &[i64], stride: i64) -> LoopSpec {
    let mut spec = LoopSpec::new("prop", "i", stride);
    let a = spec.add_array("a", 1);
    for &off in offsets {
        spec.push_access(a, off, AccessKind::Read).unwrap();
    }
    spec
}

/// Allocates `spec` on `agu`, generates code, simulates, and returns
/// `(predicted, measured)` updates per iteration.
fn predict_and_measure(spec: &LoopSpec, agu: AguSpec, iterations: u64) -> (u64, u64) {
    let alloc = Optimizer::new(agu).allocate_loop(spec).expect("allocates");
    let layout = MemoryLayout::contiguous(spec, 0x2000, 0x400);
    let program = CodeGenerator::new(agu)
        .generate(spec, &alloc, &layout)
        .expect("emits");
    let trace = Trace::capture(spec, &layout, iterations);
    let report = sim::run(&program, &trace, &agu).expect("simulates");
    (
        u64::from(alloc.total_cost()),
        report.explicit_updates_per_iteration(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core differential: predicted address-update cycles equal the
    /// simulator's measured cycles for every machine in 0..=4 modify
    /// registers.
    #[test]
    fn predicted_equals_measured_across_modify_register_counts(
        (offsets, stride, m) in pattern(),
        k in 1usize..=4,
        mr in 0usize..=4,
    ) {
        let spec = single_array_loop(&offsets, stride);
        let agu = AguSpec::new(k, m).unwrap().with_modify_registers(mr);
        let (predicted, measured) = predict_and_measure(&spec, agu, 8);
        prop_assert_eq!(
            predicted, measured,
            "K={} M={} MR={} offsets {:?} stride {}",
            k, m, mr, &offsets, stride
        );
    }

    /// Multi-array loops pool the machine-wide modify-register budget;
    /// prediction must still match measurement exactly.
    #[test]
    fn predicted_equals_measured_for_multi_array_loops(
        (offsets_a, stride, m) in pattern(),
        offsets_b in prop::collection::vec(-12i64..=12, 2..=8),
        k in 2usize..=4,
        mr in 0usize..=4,
    ) {
        let mut spec = LoopSpec::new("prop2", "i", stride);
        let a = spec.add_array("a", 1);
        let b = spec.add_array("b", 2);
        for (pos, &off) in offsets_a.iter().enumerate() {
            spec.push_access(a, off, AccessKind::Read).unwrap();
            if let Some(&boff) = offsets_b.get(pos) {
                spec.push_access(b, boff, AccessKind::Read).unwrap();
            }
        }
        for &boff in offsets_b.iter().skip(offsets_a.len()) {
            spec.push_access(b, boff, AccessKind::Write).unwrap();
        }
        let agu = AguSpec::new(k, m).unwrap().with_modify_registers(mr);
        let (predicted, measured) = predict_and_measure(&spec, agu, 6);
        prop_assert_eq!(
            predicted, measured,
            "K={} M={} MR={} a {:?} b {:?} stride {}",
            k, m, mr, &offsets_a, &offsets_b, stride
        );
    }

    /// The pipeline's cached path validates every loop against the
    /// simulator with the strict equality check — a random pattern must
    /// never trip it, warm or cold.
    #[test]
    fn pipeline_validation_never_sees_a_cost_mismatch(
        (offsets, stride, m) in pattern(),
        mr in 0usize..=4,
    ) {
        let agu = AguSpec::new(4, m).unwrap().with_modify_registers(mr);
        let mut config = PipelineConfig::new(agu);
        config.validation_iterations = 6;
        let pipeline = Pipeline::with_config(config);
        let spec = single_array_loop(&offsets, stride);
        for round in 0..2 {
            // Second round is a warm cache hit; results must validate
            // identically.
            let (report, _) = pipeline.compile_loop(&spec);
            prop_assert!(
                report.failure.is_none(),
                "round {}: {:?} (offsets {:?} stride {} MR {})",
                round, report.failure, &offsets, stride, mr
            );
            prop_assert_eq!(report.measured_cost, Some(report.cost));
        }
    }

    /// More modify registers never increase the predicted cost.
    #[test]
    fn predicted_cost_is_monotone_in_modify_registers(
        (offsets, stride, m) in pattern(),
        k in 1usize..=4,
    ) {
        let pattern = AccessPattern::from_offsets(&offsets, stride);
        let mut last = u32::MAX;
        for mr in 0..=4usize {
            let agu = AguSpec::new(k, m).unwrap().with_modify_registers(mr);
            let cost = Optimizer::new(agu).allocate(&pattern).cost();
            prop_assert!(
                cost <= last,
                "K={} M={} MR={}: cost {} > {} with one register fewer (offsets {:?})",
                k, m, mr, cost, last, &offsets
            );
            last = cost;
        }
    }

    /// Machines without modify registers allocate byte-identically to
    /// the pre-change model — no regression to the paper reproduction.
    #[test]
    fn zero_mr_allocations_are_byte_identical_to_the_plain_model(
        (offsets, stride, m) in pattern(),
        k in 1usize..=4,
    ) {
        let pattern = AccessPattern::from_offsets(&offsets, stride);
        let agu = AguSpec::new(k, m).unwrap();
        // `new` prices the machine (zero MRs here); explicit default
        // options are the pre-change model. Identical structs means
        // identical covers, costs, merge records and trajectories.
        let via_machine = Optimizer::new(agu).allocate(&pattern);
        let pre_change = Optimizer::with_options(agu, OptimizerOptions::default())
            .allocate(&pattern);
        prop_assert_eq!(via_machine, pre_change);
    }
}

/// Machines differing only in modify-register count must produce
/// distinct allocation-cache keys: the cost model's MR count is part of
/// the optimizer options, which are part of every key.
#[test]
fn cache_keys_distinguish_modify_register_counts() {
    let cache = AllocationCache::new();
    let canonical = CanonicalPattern::from_offsets(&[0, 10, 20, 30], 1);
    let pattern = AccessPattern::from_offsets(&[0, 10, 20, 30], 1);
    let mut computed = 0u32;
    for mr in [0usize, 2] {
        let agu = AguSpec::new(1, 1).unwrap().with_modify_registers(mr);
        let optimizer = Optimizer::new(agu);
        let _ = cache.allocation(
            &canonical,
            raco_ir::UpdateRange::symmetric(1),
            1,
            optimizer.options(),
            || {
                computed += 1;
                optimizer.allocate(&pattern)
            },
        );
    }
    assert_eq!(computed, 2, "each machine must compute its own entry");
    let stats = cache.stats();
    assert_eq!(stats.allocation_misses, 2);
    assert_eq!(stats.allocation_entries, 2);
}

/// A snapshot saved under one modify-register count must not warm-hit a
/// pipeline targeting another MR count — and must fully warm-hit the
/// same machine.
#[test]
fn snapshots_do_not_cross_modify_register_machines() {
    let source = "for (i = 0; i < 32; i++) { s += x[i] + x[i + 10] + x[i + 20]; }";
    let dir = std::env::temp_dir();
    let path = dir.join(format!("raco-mr-key-test-{}.snap", std::process::id()));

    let plain = Pipeline::new(AguSpec::new(2, 1).unwrap());
    let report = plain.compile_str("warm", source).unwrap();
    assert_eq!(report.failed(), 0);
    plain.save_cache(&path).unwrap();

    // Same machine: the first batch after boot is all hits.
    let same = Pipeline::new(AguSpec::new(2, 1).unwrap());
    same.load_cache(&path).unwrap();
    let warm = same.compile_str("warm", source).unwrap();
    assert_eq!(warm.cache.allocation_misses, 0, "{:?}", warm.cache);
    assert!(warm.cache.allocation_hits > 0);

    // A machine differing only in MR count: every allocation recomputes
    // (a false hit would replay MR-blind covers and costs).
    let other = Pipeline::new(AguSpec::new(2, 1).unwrap().with_modify_registers(2));
    other.load_cache(&path).unwrap();
    let cross = other.compile_str("warm", source).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(cross.failed(), 0);
    assert!(
        cross.cache.allocation_misses > 0,
        "MR-equipped machine must not reuse MR-blind snapshot entries: {:?}",
        cross.cache
    );
    assert_eq!(cross.cache.allocation_hits, 0, "{:?}", cross.cache);
}

/// Cross-version regression for the v1 → v2 snapshot bump: a
/// structurally valid version-1 file is rejected whole, with a warning,
/// and the cache stays cold.
#[test]
fn version_one_snapshots_are_rejected_by_the_version_two_reader() {
    assert_eq!(
        persist::SNAPSHOT_VERSION,
        3,
        "this regression test pins the v2 -> v3 bump; revisit it on the next bump"
    );
    // Both prior on-disk formats must be rejected whole: v1 predates
    // option-discriminated keys, v2 cannot express update ranges or
    // ADDA costs, so neither may warm-hit a v3 cache.
    for stale in [1u32, 2u32] {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&persist::SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&stale.to_le_bytes()); // the pre-bump version
        bytes.extend_from_slice(&0u32.to_le_bytes()); // reserved
        bytes.push(0x00); // end marker
        let sum = persist::checksum(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());

        let cache = AllocationCache::new();
        let report = persist::decode_into(&cache, &bytes);
        assert_eq!(report.loaded(), 0);
        assert_eq!(report.skipped, 1);
        let needle = format!("unsupported snapshot version {stale}");
        assert!(
            report.warnings[0].contains(&needle),
            "{:?}",
            report.warnings
        );
        assert_eq!(cache.stats().loaded, 0);
        assert_eq!(cache.stats().allocation_entries, 0);
    }
}
