//! The two description-only backends — `bwdsp` (clustered VLIW with
//! post-increment-only MAC addressing, two-cycle pointer loads) and
//! `saris` (stream-register machine: no free auto-modify at all, every
//! stride through a stream/modify register) — through the full
//! toolchain: every kernel compiles with predicted == measured under
//! both validation oracles, the three nested kernels pin byte-identical
//! golden listings, and a corrupted post-modify / stream update is
//! caught by a *named* checker invariant per description.

use raco::agu::codegen::CodeGenerator;
use raco::agu::isa::{AddressInstr, AddressProgram, Update};
use raco::agu::sim;
use raco::check;
use raco::core::Optimizer;
use raco::driver::{Parallelism, Pipeline, PipelineConfig};
use raco::ir::{AguSpec, LoopSpec, MachineDescription, MemoryLayout, Trace};

const NEW_MACHINES: [&str; 2] = ["bwdsp", "saris"];

fn spec_for(machine: &str) -> AguSpec {
    *MachineDescription::builtin(machine)
        .unwrap_or_else(|| panic!("`{machine}` is a built-in"))
        .spec()
}

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn layout_for(spec: &LoopSpec) -> MemoryLayout {
    MemoryLayout::contiguous(spec, 0x1000, 0x400)
}

#[test]
fn new_backends_compile_every_kernel_with_predicted_equal_measured() {
    for machine in NEW_MACHINES {
        let mut config = PipelineConfig::new(spec_for(machine));
        config.parallelism = Parallelism::Sequential;
        let report = Pipeline::with_config(config).compile_kernels();
        assert_eq!(
            report.loop_count(),
            raco::kernels::suite().len(),
            "{machine}: one loop per kernel"
        );
        // `failed() == 0` means BOTH oracles (simulator replay and the
        // declarative checker) passed on every kernel — the pipeline
        // gates on the pair and reports disagreement as its own class.
        assert_eq!(report.failed(), 0, "{machine}:\n{}", report.render_table());
        for lr in report.loops() {
            assert_eq!(
                lr.measured_cost,
                Some(lr.cost),
                "{machine}/{}: predicted != measured",
                lr.name
            );
        }
    }
}

#[test]
fn new_backends_pass_both_oracles_standalone() {
    // Same two oracles, driven directly (no pipeline) so a pipeline
    // wiring bug can't mask a backend bug.
    for machine in NEW_MACHINES {
        let agu = spec_for(machine);
        for kernel in raco::kernels::suite() {
            let spec = kernel.spec();
            let allocation = Optimizer::new(agu)
                .allocate_loop(spec)
                .unwrap_or_else(|e| panic!("{machine}/{}: {e:?}", kernel.name()));
            let layout = layout_for(spec);
            let program = CodeGenerator::new(agu)
                .generate(spec, &allocation, &layout)
                .unwrap_or_else(|e| panic!("{machine}/{}: {e:?}", kernel.name()));
            let iterations = match spec.nest() {
                Some(nest) => nest.total_iterations().clamp(1, 256),
                None => 16,
            };
            let trace = Trace::capture(spec, &layout, iterations);
            sim::run(&program, &trace, &agu)
                .unwrap_or_else(|e| panic!("{machine}/{}: simulator rejected: {e}", kernel.name()));
            let report = check::check_program(spec, &layout, &agu, &program, None);
            assert!(
                report.is_clean(),
                "{machine}/{}: checker rejected: {}",
                kernel.name(),
                report.summary()
            );
        }
    }
}

#[test]
fn new_backend_golden_listings_are_byte_identical() {
    for machine in NEW_MACHINES {
        let mut config = PipelineConfig::new(spec_for(machine));
        config.listings = true;
        config.parallelism = Parallelism::Sequential;
        let report = Pipeline::with_config(config).compile_kernels();
        assert_eq!(report.failed(), 0, "{machine}:\n{}", report.render_table());
        for lr in report.loops() {
            if !matches!(lr.name.as_str(), "conv2d" | "transpose" | "stencil5") {
                continue;
            }
            let expected = fixture(&format!("listing_{machine}_{}.txt", lr.name));
            let actual = lr.listing.as_deref().expect("listings requested");
            assert_eq!(
                actual, expected,
                "{machine}/{}: listing drifted from the golden fixture",
                lr.name
            );
        }
    }
}

#[test]
fn saris_listings_route_every_stride_through_stream_registers() {
    // The SARIS description has update range [0, 0]: NO free
    // auto-modify. A `USE *ARn+=d` with d != 0 in a saris listing would
    // mean the codegen ignored the description's range.
    let agu = spec_for("saris");
    for kernel in raco::kernels::suite() {
        let spec = kernel.spec();
        let allocation = Optimizer::new(agu).allocate_loop(spec).unwrap();
        let layout = layout_for(spec);
        let program = CodeGenerator::new(agu)
            .generate(spec, &allocation, &layout)
            .unwrap();
        for instr in program.body() {
            if let AddressInstr::Use {
                update: Update::Auto { delta },
                ..
            } = instr
            {
                assert_eq!(
                    *delta,
                    0,
                    "{}: saris must not auto-modify by {delta}",
                    kernel.name()
                );
            }
        }
    }
}

#[test]
fn bwdsp_listings_never_use_free_decrements() {
    // The BWDSP description frees only post-increments ([0, 1]); a
    // free `-=` step would violate its update-range shape.
    let agu = spec_for("bwdsp");
    for kernel in raco::kernels::suite() {
        let spec = kernel.spec();
        let allocation = Optimizer::new(agu).allocate_loop(spec).unwrap();
        let layout = layout_for(spec);
        let program = CodeGenerator::new(agu)
            .generate(spec, &allocation, &layout)
            .unwrap();
        for instr in program.body() {
            if let AddressInstr::Use {
                update: Update::Auto { delta },
                ..
            } = instr
            {
                assert!(
                    (0..=1).contains(delta),
                    "{}: bwdsp auto-update {delta} outside [0, 1]",
                    kernel.name()
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Checker mutation tests per description: corrupting one post-modify
// (bwdsp) or one stream update (saris) must trip a *named* invariant.
// ---------------------------------------------------------------------

/// Rebuilds `program` with its cost table preserved — `AddressProgram::
/// new` defaults to unit costs, which would itself trip the checker's
/// cycle accounting on bwdsp/saris and mask the intended mutation.
fn rebuild(
    program: &AddressProgram,
    body: Vec<AddressInstr>,
    modify_values: Vec<i64>,
) -> AddressProgram {
    AddressProgram::new(
        program.prologue().to_vec(),
        body,
        program.address_registers(),
        modify_values,
    )
    .with_carries(program.carries().to_vec())
    .with_cost_table(program.cost_table())
}

/// bwdsp mutation: bump the first free post-increment out of the
/// machine's `[0, 1]` update range.
fn corrupt_post_modify(program: &AddressProgram) -> Option<AddressProgram> {
    let mut body = program.body().to_vec();
    let delta = body.iter_mut().find_map(|instr| match instr {
        AddressInstr::Use {
            update: Update::Auto { delta },
            ..
        } if *delta != 0 => Some(delta),
        _ => None,
    })?;
    *delta += 1;
    Some(rebuild(program, body, program.modify_values().to_vec()))
}

/// saris mutation: corrupt the value streamed through the first modify
/// register — every subsequent `+=Mn` step lands on the wrong address.
fn corrupt_stream_update(program: &AddressProgram) -> Option<AddressProgram> {
    let mut modify_values = program.modify_values().to_vec();
    let slot = modify_values.iter_mut().find(|v| **v != 0)?;
    *slot += 1;
    Some(rebuild(program, program.body().to_vec(), modify_values))
}

fn mutation_is_caught(machine: &str, corrupt: fn(&AddressProgram) -> Option<AddressProgram>) {
    let agu = spec_for(machine);
    let mut caught = 0usize;
    for kernel in raco::kernels::suite() {
        let spec = kernel.spec();
        let allocation = Optimizer::new(agu).allocate_loop(spec).unwrap();
        let layout = layout_for(spec);
        let program = CodeGenerator::new(agu)
            .generate(spec, &allocation, &layout)
            .unwrap();
        let Some(corrupted) = corrupt(&program) else {
            continue;
        };
        let report = check::check_program(spec, &layout, &agu, &corrupted, None);
        assert!(
            !report.is_clean(),
            "{machine}/{}: corrupted update slipped past the checker",
            kernel.name()
        );
        let named: Vec<&str> = report.violations().iter().map(|v| v.invariant).collect();
        assert!(
            named.iter().any(|invariant| matches!(
                *invariant,
                "free-updates-in-range"
                    | "delta-coverage"
                    | "steady-state-advance"
                    | "cycle-accounting"
            )),
            "{machine}/{}: unexpected invariants {named:?}",
            kernel.name()
        );
        caught += 1;
    }
    assert!(
        caught >= 5,
        "{machine}: only {caught} kernels had an update to corrupt"
    );
}

#[test]
fn corrupted_bwdsp_post_modify_trips_a_named_invariant() {
    mutation_is_caught("bwdsp", corrupt_post_modify);
}

#[test]
fn corrupted_saris_stream_update_trips_a_named_invariant() {
    mutation_is_caught("saris", corrupt_stream_update);
}
