//! Property-based tests of the DSL front end: printing and re-parsing
//! round-trips, affine index extraction, and program-level parsing.

use proptest::prelude::*;

use raco::ir::dsl::{self, AssignOp, BinOp, CmpOp, Cond, Expr, ForLoop, LValue, Stmt, Update};
use raco::ir::pretty;

/// Strategy: a random expression over the loop variable `i`, scalars and
/// array elements (depth-limited).
fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-30i64..=30).prop_map(Expr::Num),
        Just(Expr::Var("i".to_owned())),
        Just(Expr::Var("s".to_owned())),
        (-6i64..=6).prop_map(|d| Expr::index(
            "A",
            Expr::binary(BinOp::Add, Expr::Var("i".to_owned()), Expr::Num(d)),
        )),
        (-6i64..=6).prop_map(|d| Expr::index(
            "B",
            Expr::binary(BinOp::Sub, Expr::Num(d), Expr::Var("i".to_owned())),
        )),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::binary(BinOp::Sub, a, b)),
            // Multiplication only by a constant keeps indices affine.
            (inner.clone(), -4i64..=4).prop_map(|(a, c)| Expr::binary(BinOp::Mul, a, Expr::Num(c))),
            inner.prop_map(|e| Expr::Neg(Box::new(e))),
        ]
    })
}

fn stmt() -> impl Strategy<Value = Stmt> {
    (
        prop_oneof![
            Just(LValue::Scalar("acc".to_owned())),
            (-4i64..=4).prop_map(|d| LValue::element(
                "Y",
                Expr::binary(BinOp::Add, Expr::Var("i".to_owned()), Expr::Num(d)),
            )),
        ],
        prop_oneof![
            Just(AssignOp::Assign),
            Just(AssignOp::AddAssign),
            Just(AssignOp::SubAssign),
            Just(AssignOp::MulAssign),
        ],
        expr(),
    )
        .prop_map(|(lhs, op, rhs)| Stmt {
            lhs,
            op,
            rhs,
            span: Default::default(),
        })
}

fn for_loop() -> impl Strategy<Value = ForLoop> {
    (
        -8i64..=8,
        1i64..=200,
        prop_oneof![
            Just(Update::Increment),
            Just(Update::Decrement),
            (2i64..=4).prop_map(Update::Step),
            (-4i64..=-2).prop_map(Update::Step),
        ],
        prop::collection::vec(stmt(), 1..=5),
    )
        .prop_map(|(start, bound, update, body)| ForLoop {
            var: "i".to_owned(),
            start: Some(start),
            init: Expr::Num(start),
            cond: Cond {
                op: if update.stride() > 0 {
                    CmpOp::Lt
                } else {
                    CmpOp::Gt
                },
                bound: Expr::Num(bound),
            },
            update,
            body,
            nested: None,
            span: Default::default(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn print_parse_round_trip_preserves_semantics(ast in for_loop()) {
        let printed = pretty::print_for(&ast);
        let reparsed = dsl::parse_for(&printed)
            .unwrap_or_else(|e| panic!("printed source must re-parse: {e}\n{printed}"));
        // Compare lowered semantics (spans differ); both may fail to
        // lower only in exactly the same way (e.g. mixed coefficients).
        match (dsl::lower_loop(&ast), dsl::lower_loop(&reparsed)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "printed:\n{}", printed),
            (Err(ea), Err(eb)) => prop_assert_eq!(ea.kind(), eb.kind()),
            (a, b) => prop_assert!(false, "lowering diverged: {:?} vs {:?}", a, b),
        }
    }

    #[test]
    fn affine_indices_lower_to_coefficient_and_offset(
        coeff in -5i64..=5,
        offset in -50i64..=50,
    ) {
        // Render `coeff*i + offset` in a randomly chosen textual shape.
        let index = match (coeff, offset) {
            (0, d) => format!("{d}"),
            (1, 0) => "i".to_owned(),
            (1, d) if d > 0 => format!("i + {d}"),
            (1, d) => format!("i - {}", -d),
            (-1, d) => format!("{d} - i"),
            (c, 0) => format!("{c} * i"),
            (c, d) if d > 0 => format!("{c} * i + {d}"),
            (c, d) => format!("{c} * i - {}", -d),
        };
        let src = format!("for (i = 0; i < 9; i++) {{ s = A[{index}]; }}");
        let spec = dsl::parse_loop(&src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let info = &spec.arrays()[0];
        let expected_coeff = if coeff == -1 && offset != 0 { -1 } else { coeff };
        prop_assert_eq!(info.coefficient(), expected_coeff, "{}", src);
        prop_assert_eq!(spec.accesses()[0].offset, offset, "{}", src);
    }

    #[test]
    fn programs_concatenate_loops(count in 1usize..=4) {
        let src: String = (0..count)
            .map(|j| format!("for (i = 0; i < 8; i++) {{ y[i] = x[i + {j}]; }}\n"))
            .collect();
        let loops = dsl::parse_program(&src).expect("valid program");
        prop_assert_eq!(loops.len(), count);
        for (j, spec) in loops.iter().enumerate() {
            let expected_name = format!("loop{j}");
            prop_assert_eq!(spec.name(), expected_name.as_str());
            let x = spec.pattern_for(spec.array_id("x").unwrap()).unwrap();
            prop_assert_eq!(x.offsets(), vec![j as i64]);
        }
    }

    #[test]
    fn listings_mention_every_access(ast in for_loop()) {
        if let Ok(spec) = dsl::lower_loop(&ast) {
            if spec.is_empty() {
                return Ok(());
            }
            let listing = pretty::print_access_listing(&spec);
            for k in 1..=spec.len() {
                prop_assert!(
                    listing.contains(&format!("a_{k} ")),
                    "listing lacks a_{k}:\n{listing}"
                );
            }
        }
    }
}
