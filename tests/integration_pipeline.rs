//! Cross-crate pipeline tests: DSL source → IR → allocation → address
//! code → verified simulation, over a variety of loop shapes.

use raco::agu::codegen::CodeGenerator;
use raco::agu::sim;
use raco::core::{AllocError, Optimizer};
use raco::ir::{dsl, AguSpec, MemoryLayout, Trace};

/// Compiles and verifies a DSL loop, returning the measured explicit
/// updates per iteration.
fn compile_and_verify(source: &str, agu: AguSpec, iterations: u64) -> u64 {
    let spec = dsl::parse_loop(source).expect("source parses");
    let alloc = Optimizer::new(agu).allocate_loop(&spec).expect("allocates");
    let layout = MemoryLayout::contiguous(&spec, 0x1000, 0x200);
    let program = CodeGenerator::new(agu)
        .generate(&spec, &alloc, &layout)
        .expect("emits");
    let trace = Trace::capture(&spec, &layout, iterations);
    let report = sim::run(&program, &trace, &agu).expect("verifies");
    // The allocator's cost model prices modify registers too, so
    // prediction equals measurement on every machine.
    assert_eq!(
        report.explicit_updates_per_iteration(),
        u64::from(alloc.total_cost()),
        "prediction must match measurement for {source} on {agu}"
    );
    report.explicit_updates_per_iteration()
}

#[test]
fn forward_loop_with_two_arrays() {
    let cost = compile_and_verify(
        "for (i = 1; i < 100; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }",
        AguSpec::new(3, 1).unwrap(),
        64,
    );
    assert_eq!(cost, 0, "x chains forward, y is a free singleton");
}

#[test]
fn backward_loop_negative_stride() {
    let cost = compile_and_verify(
        "for (i = 99; i > 0; i--) { s += a[i] * b[i]; }",
        AguSpec::new(2, 1).unwrap(),
        64,
    );
    assert_eq!(cost, 0);
}

#[test]
fn reversed_coefficient_array() {
    // h runs backwards relative to i: effective stride -1.
    let cost = compile_and_verify(
        "for (i = 0; i < 32; i++) { acc += x[i] * h[31 - i]; }",
        AguSpec::new(2, 1).unwrap(),
        30,
    );
    assert_eq!(cost, 0);
}

#[test]
fn interleaved_complex_coefficient_two() {
    let cost = compile_and_verify(
        "for (i = 0; i < 64; i++) { y[2*i] = x[2*i] - x[2*i+1]; y[2*i+1] = x[2*i] + x[2*i+1]; }",
        AguSpec::new(4, 1).unwrap(),
        48,
    );
    assert_eq!(cost, 0, "stride 2 with offsets 0/1 chains freely");
}

#[test]
fn loop_invariant_array_is_free() {
    let cost = compile_and_verify(
        "for (i = 0; i < 64; i++) { s += t[3] * x[i]; }",
        AguSpec::new(2, 1).unwrap(),
        20,
    );
    assert_eq!(cost, 0, "coefficient-0 array has stride 0: stays put");
}

#[test]
fn big_stride_needs_explicit_updates_without_modify_registers() {
    let agu = AguSpec::new(2, 1).unwrap();
    let cost = compile_and_verify(
        "for (i = 0; i < 8; i++) { acc += a[i] * b[8 * i]; }",
        agu,
        8,
    );
    assert!(cost >= 1, "the stride-8 column access cannot be free");

    let with_mr = AguSpec::new(2, 1).unwrap().with_modify_registers(1);
    let cost_mr = compile_and_verify(
        "for (i = 0; i < 8; i++) { acc += a[i] * b[8 * i]; }",
        with_mr,
        8,
    );
    assert!(cost_mr < cost, "a modify register absorbs the +8 step");
}

#[test]
fn compound_assignment_read_write_pairs_verify() {
    let cost = compile_and_verify(
        "for (i = 0; i < 50; i++) { a[i] += b[i]; }",
        AguSpec::new(2, 1).unwrap(),
        32,
    );
    // a is read and written at the same address: distance 0 is free.
    assert_eq!(cost, 0);
}

#[test]
fn insufficient_registers_is_a_clean_error() {
    let spec = dsl::parse_loop("for (i = 0; i < 9; i++) { a[i] = b[i] + c[i]; }").unwrap();
    let err = Optimizer::new(AguSpec::new(2, 1).unwrap())
        .allocate_loop(&spec)
        .unwrap_err();
    assert_eq!(
        err,
        AllocError::InsufficientRegisters {
            arrays: 3,
            registers: 2
        }
    );
}

#[test]
fn scalar_only_loop_is_a_clean_error() {
    let spec = dsl::parse_loop("for (i = 0; i < 9; i++) { s = s * 2; }").unwrap();
    let err = Optimizer::new(AguSpec::new(2, 1).unwrap())
        .allocate_loop(&spec)
        .unwrap_err();
    assert_eq!(err, AllocError::EmptyLoop);
}

#[test]
fn register_partitioning_favours_the_hungry_array() {
    let spec = dsl::parse_loop(
        "for (i = 0; i < 64; i++) {
            s = mono[i] + sparse[i] + sparse[i + 16] + sparse[i + 32];
        }",
    )
    .unwrap();
    let alloc = Optimizer::new(AguSpec::new(4, 1).unwrap())
        .allocate_loop(&spec)
        .unwrap();
    let mono = spec.array_id("mono").unwrap();
    let sparse = spec.array_id("sparse").unwrap();
    assert_eq!(alloc.for_array(mono).unwrap().register_count(), 1);
    assert_eq!(alloc.for_array(sparse).unwrap().register_count(), 3);
    assert_eq!(alloc.total_cost(), 0);
}

#[test]
fn larger_modify_range_never_hurts() {
    let source = "for (i = 2; i <= 100; i++) {
        s1 = A[i+1]; s2 = A[i]; s3 = A[i+2]; s4 = A[i-1];
        s5 = A[i+1]; s6 = A[i]; s7 = A[i-2];
    }";
    let mut last = u64::MAX;
    for m in 1..=4u32 {
        let cost = compile_and_verify(source, AguSpec::new(2, m).unwrap(), 16);
        assert!(
            cost <= last,
            "M = {m} must not cost more than M = {}",
            m - 1
        );
        last = cost;
    }
    assert_eq!(last, 0, "M = 4 covers every distance in the example");
}

#[test]
fn long_unrolled_loop_allocates_and_verifies() {
    // 32 accesses with a deliberately adversarial interleaving.
    let mut body = String::new();
    for j in 0..16 {
        body.push_str(&format!(
            "t{j} = A[i + {}] + A[i - {}];\n",
            j % 5,
            (j * 3) % 7
        ));
    }
    let source = format!("for (i = 10; i < 1000; i++) {{\n{body}}}");
    let cost = compile_and_verify(&source, AguSpec::new(4, 1).unwrap(), 25);
    // Not asserting an exact number (heuristic), but it must be bounded
    // by one update per access.
    assert!(cost <= 32);
}
