//! Two-oracle validation at the integration level.
//!
//! The pipeline validates every generated listing twice: operationally
//! (the simulator replays it against a captured access trace) and
//! declaratively (`raco-check` re-derives correctness from the listing
//! rows alone). These tests drive both oracles over the full kernel
//! suite and then mutation-test the declarative one: a deliberately
//! corrupted listing must be caught, the offending program shrunk, and
//! a minimal `.dsp` reproducer written — the same path `raco fuzz`
//! takes on a real failure.

use raco::agu::codegen::CodeGenerator;
use raco::agu::isa::{AddressInstr, AddressProgram, Update};
use raco::agu::sim;
use raco::check;
use raco::core::Optimizer;
use raco::fuzz::{gen_unit, shrink_unit, write_failure, GenUnit};
use raco::ir::dsl;
use raco::ir::{AguSpec, LoopSpec, MemoryLayout, Trace};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The pipeline's layout defaults (`PipelineConfig::new`).
fn layout_for(spec: &LoopSpec) -> MemoryLayout {
    MemoryLayout::contiguous(spec, 0x1000, 0x400)
}

/// Compiles the loop, or `None` when the machine is too small for it
/// (e.g. a 3-array kernel on K = 2 — a legitimate allocation error,
/// not a listing bug).
fn compile(spec: &LoopSpec, agu: &AguSpec) -> Option<(MemoryLayout, AddressProgram)> {
    let allocation = Optimizer::new(*agu).allocate_loop(spec).ok()?;
    let layout = layout_for(spec);
    let program = CodeGenerator::new(*agu)
        .generate(spec, &allocation, &layout)
        .expect("kernel codegen succeeds");
    Some((layout, program))
}

fn simulate(
    spec: &LoopSpec,
    layout: &MemoryLayout,
    agu: &AguSpec,
    program: &AddressProgram,
) -> Result<(), String> {
    let iterations = match spec.nest() {
        Some(nest) => nest.total_iterations().clamp(1, 256),
        None => 16,
    };
    let trace = Trace::capture(spec, layout, iterations);
    sim::run(program, &trace, agu)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

#[test]
fn every_kernel_passes_both_oracles_across_machines() {
    let machines = [
        AguSpec::new(2, 1).unwrap(),
        AguSpec::new(4, 1).unwrap(),
        AguSpec::new(4, 2).unwrap().with_modify_registers(2),
        AguSpec::new(8, 0).unwrap().with_modify_registers(1),
    ];
    let suite = raco::kernels::suite();
    assert!(suite.len() >= 12, "kernel suite shrank to {}", suite.len());
    let mut combinations = 0usize;
    for kernel in &suite {
        for agu in &machines {
            let spec = kernel.spec();
            let Some((layout, program)) = compile(spec, agu) else {
                continue;
            };
            combinations += 1;
            simulate(spec, &layout, agu, &program).unwrap_or_else(|e| {
                panic!(
                    "simulator rejected kernel `{}` on {agu:?}: {e}",
                    kernel.name()
                )
            });
            let report = check::check_program(spec, &layout, agu, &program, None);
            assert!(
                report.is_clean(),
                "checker rejected kernel `{}` on {agu:?}: {}",
                kernel.name(),
                report.summary()
            );
        }
    }
    assert!(
        combinations >= suite.len() * 2,
        "too few feasible kernel × machine combinations: {combinations}"
    );
}

#[test]
fn pipeline_rejects_nothing_on_the_clean_kernel_suite() {
    // The pipeline gates on BOTH oracles since the checker landed; a
    // clean suite means neither oracle fires and they never disagree.
    let report = raco::driver::Pipeline::new(AguSpec::new(4, 1).unwrap()).compile_kernels();
    assert_eq!(report.failed(), 0, "{}", report.render_table());
}

/// Corrupts the first auto-update of the body: the classic off-by-one
/// a buggy distance model would produce. Returns `None` for programs
/// with no auto-updating serve (nothing to corrupt).
fn corrupt_first_auto_update(program: &AddressProgram) -> Option<AddressProgram> {
    let mut body = program.body().to_vec();
    let target = body.iter_mut().find_map(|instr| match instr {
        AddressInstr::Use {
            update: Update::Auto { delta },
            ..
        } => Some(delta),
        _ => None,
    })?;
    *target += 1;
    Some(
        AddressProgram::new(
            program.prologue().to_vec(),
            body,
            program.address_registers(),
            program.modify_values().to_vec(),
        )
        .with_carries(program.carries().to_vec()),
    )
}

/// The mutation predicate `raco fuzz` would shrink against: compile
/// the unit with the reference toolchain, corrupt the listing, and
/// report whether the declarative checker catches it.
fn mutated_unit_fails_checker(unit: &GenUnit, agu: &AguSpec) -> bool {
    let Ok(specs) = dsl::parse_program(&unit.render()) else {
        return false;
    };
    for spec in &specs {
        let Ok(allocation) = Optimizer::new(*agu).allocate_loop(spec) else {
            continue;
        };
        let layout = layout_for(spec);
        let Ok(program) = CodeGenerator::new(*agu).generate(spec, &allocation, &layout) else {
            continue;
        };
        let Some(corrupted) = corrupt_first_auto_update(&program) else {
            continue;
        };
        if !check::check_program(spec, &layout, agu, &corrupted, None).is_clean() {
            return true;
        }
    }
    false
}

#[test]
fn corrupted_listing_is_caught_shrunk_and_written_as_a_repro() {
    let agu = AguSpec::new(4, 1).unwrap();
    let mut rng = SmallRng::seed_from_u64(0xbadc0de);
    // Find a generated unit whose corrupted listing the checker flags
    // (almost all of them: any program with an auto-updating serve).
    let unit = loop {
        let unit = gen_unit(&mut rng);
        if mutated_unit_fails_checker(&unit, &agu) {
            break unit;
        }
    };

    let minimal = shrink_unit(&unit, |u| mutated_unit_fails_checker(u, &agu), 400);
    assert!(
        mutated_unit_fails_checker(&minimal, &agu),
        "shrinking must preserve the failure"
    );
    assert_eq!(minimal.loops.len(), 1, "minimal repro keeps one loop");
    assert_eq!(
        minimal.loops[0].stmts.len(),
        1,
        "minimal repro keeps one statement"
    );

    // The fuzz failure path writes the shrunk source as a `.dsp` repro
    // with a JSON sidecar carrying the seed and request.
    let dir = std::env::temp_dir().join(format!("raco-check-mutation-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let source = minimal.render();
    let path = write_failure(
        &dir,
        "checker-mutation",
        0xbadc0de,
        1,
        Some(&source),
        r#"{"op":"compile","name":"mutation"}"#,
        "corrupted auto-update caught by delta-coverage",
    )
    .unwrap();
    assert!(path.exists());
    let dsp = std::fs::read_to_string(&path).unwrap();
    assert!(dsp.contains("seed 0xbadc0de"));
    // The repro must itself be valid DSL (comments included).
    let reparsed = dsl::parse_program(&source).expect("repro parses");
    assert!(!reparsed.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checker_names_the_violated_invariant_for_a_corrupted_kernel() {
    let agu = AguSpec::new(4, 1).unwrap();
    let suite = raco::kernels::suite();
    let mut corrupted_any = false;
    for kernel in &suite {
        let spec = kernel.spec();
        let (layout, program) = compile(spec, &agu).expect("K = 4 fits every kernel");
        let Some(corrupted) = corrupt_first_auto_update(&program) else {
            continue;
        };
        corrupted_any = true;
        let report = check::check_program(spec, &layout, &agu, &corrupted, None);
        assert!(
            !report.is_clean(),
            "kernel `{}`: corrupted listing slipped past the checker",
            kernel.name()
        );
        assert!(
            report
                .violations()
                .iter()
                .any(|v| v.invariant == "delta-coverage" || v.invariant == "steady-state-advance"),
            "kernel `{}`: unexpected invariants {:?}",
            kernel.name(),
            report
                .violations()
                .iter()
                .map(|v| v.invariant)
                .collect::<Vec<_>>()
        );
    }
    assert!(corrupted_any, "no kernel had an auto-update to corrupt");
}
