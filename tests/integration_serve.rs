//! End-to-end tests of the serve front end: golden NDJSON round-trips
//! over the stdio loop, protocol error paths, cross-request cache
//! reuse observed through the `stats` op, bounded-cache eviction under
//! a sweep of distinct patterns, and a concurrent TCP session.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use raco::driver::json::Json;
use raco::driver::{CachePolicy, PipelineConfig};
use raco::ir::AguSpec;
use raco::serve::Server;

fn default_server() -> Server {
    Server::new(PipelineConfig::new(AguSpec::new(4, 1).unwrap()))
}

/// Runs NDJSON `requests` through the blocking stdio loop and returns
/// one parsed response per request line.
fn round_trip(server: &Server, requests: &str) -> Vec<Json> {
    let mut output = Vec::new();
    server
        .serve(BufReader::new(requests.as_bytes()), &mut output)
        .expect("in-memory transport cannot fail");
    String::from_utf8(output)
        .expect("responses are UTF-8")
        .lines()
        .map(|line| Json::parse(line).expect("every response line is valid JSON"))
        .collect()
}

fn ok(response: &Json) -> bool {
    response.get("ok") == Some(&Json::Bool(true))
}

#[test]
fn golden_stdio_round_trip() {
    let server = default_server();
    let responses = round_trip(
        &server,
        concat!(
            r#"{"id": 1, "op": "ping"}"#,
            "\n\n", // blank lines are skipped
            r#"{"id": 2, "op": "compile", "name": "fir3", "source": "for (i = 1; i < 100; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }"}"#,
            "\n",
            r#"{"id": 3, "op": "kernels", "kernel": "paper_example"}"#,
            "\n",
            r#"{"id": 4, "op": "shutdown"}"#,
            "\n",
        ),
    );
    assert_eq!(responses.len(), 4);
    assert!(
        responses[0]
            .render()
            .starts_with(r#"{"id":1,"ok":true,"pong":true,"elapsed_us":"#),
        "{}",
        responses[0].render()
    );

    let report = responses[1].get("report").expect("compile report");
    assert_eq!(report.get("loops").and_then(Json::as_u64), Some(1));
    assert_eq!(report.get("failed").and_then(Json::as_u64), Some(0));
    let unit = match report.get("units") {
        Some(Json::Arr(units)) => &units[0],
        other => panic!("units array expected, got {other:?}"),
    };
    assert_eq!(unit.get("name").and_then(Json::as_str), Some("fir3"));

    let kernel_report = responses[2].get("report").expect("kernel report");
    assert_eq!(kernel_report.get("failed").and_then(Json::as_u64), Some(0));

    assert!(
        responses[3]
            .render()
            .starts_with(r#"{"id":4,"ok":true,"shutdown":true,"elapsed_us":"#),
        "{}",
        responses[3].render()
    );

    // Every response line carries its end-to-end wall time.
    for response in &responses {
        assert!(
            response.get("elapsed_us").is_some(),
            "missing elapsed_us: {response:?}"
        );
    }
}

#[test]
fn metrics_round_trip_reports_request_and_stage_latency() {
    let server = default_server();
    let compile = r#"{"op": "compile", "source": "for (i = 0; i < 32; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }"}"#;
    let script = format!("{compile}\n{compile}\n{}\n", r#"{"op":"metrics","id":"m"}"#);
    let responses = round_trip(&server, &script);
    assert_eq!(responses.len(), 3);
    assert!(responses.iter().all(ok));

    let metrics = responses[2].get("metrics").expect("metrics payload");
    assert!(metrics.get("uptime_ms").and_then(Json::as_u64).is_some());
    assert_eq!(
        metrics
            .get("requests")
            .and_then(|r| r.get("by_op"))
            .and_then(|o| o.get("compile"))
            .and_then(Json::as_u64),
        Some(2)
    );

    // End-to-end compile latency: both requests counted, quantiles sane.
    let compile_latency = metrics
        .get("latency_us")
        .and_then(|l| l.get("compile"))
        .expect("compile latency");
    assert_eq!(compile_latency.get("count").and_then(Json::as_u64), Some(2));
    let us = |field: &str| match compile_latency.get(field) {
        Some(Json::Num(n)) => *n,
        Some(Json::UInt(u)) => *u as f64,
        Some(Json::Int(i)) => *i as f64,
        other => panic!("{field} must be a number, got {other:?}"),
    };
    let (p50, p99) = (us("p50_us"), us("p99_us"));
    assert!(p50 > 0.0, "a real compile takes measurable time");
    assert!(p99 >= p50);

    // The compiles above exercised the pipeline, so per-stage timings
    // accumulated under their global names.
    let pipeline = metrics.get("pipeline_us").expect("pipeline stages");
    for stage in ["pipeline.parse", "pipeline.codegen", "pipeline.simulate"] {
        assert!(
            pipeline
                .get(stage)
                .and_then(|s| s.get("count"))
                .and_then(Json::as_u64)
                .unwrap_or(0)
                >= 2,
            "{stage} must have accumulated two compiles"
        );
    }

    // Cache rates ride along: the second identical compile hit.
    let cache = metrics.get("cache").expect("cache rates");
    assert!(cache.get("allocation_hits").and_then(Json::as_u64).unwrap() > 0);
    assert!(cache.get("hit_rate").is_some());
}

#[test]
fn shutdown_stops_the_loop_before_later_requests() {
    let server = default_server();
    let responses = round_trip(
        &server,
        "{\"op\":\"shutdown\"}\n{\"op\":\"ping\",\"id\":\"never\"}\n",
    );
    assert_eq!(responses.len(), 1, "nothing is served after shutdown");
}

#[test]
fn malformed_requests_get_error_responses_and_do_not_kill_the_session() {
    let server = default_server();
    let responses = round_trip(
        &server,
        concat!(
            "this is not json\n",
            r#"{"op": "compile", "id": 7}"#,
            "\n",
            r#"{"op": "compile", "id": 8, "source": "for (i = 0; i++) {"}"#,
            "\n",
            r#"{"op": "ping", "id": 9}"#,
            "\n",
        ),
    );
    assert_eq!(responses.len(), 4);
    assert!(!ok(&responses[0]));
    assert!(responses[0]
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("invalid JSON"));
    assert!(!ok(&responses[1]));
    assert_eq!(responses[1].get("id").and_then(Json::as_u64), Some(7));
    assert!(!ok(&responses[2]), "parse errors surface as responses");
    assert!(ok(&responses[3]), "the session survives all of it");
}

#[test]
fn oversized_request_lines_error_without_killing_the_session() {
    use raco::serve::MAX_REQUEST_LINE;
    let server = default_server();
    // A single line well past the cap (a comment keeps it lexically
    // plausible so only the length can be at fault), framed by normal
    // requests that must both be served.
    let oversized = format!(
        r#"{{"op":"compile","source":"// {}"}}"#,
        "x".repeat(MAX_REQUEST_LINE + 1024)
    );
    let script = format!(
        "{}\n{}\n{}\n",
        r#"{"op":"ping","id":"before"}"#, oversized, r#"{"op":"ping","id":"after"}"#
    );
    let responses = round_trip(&server, &script);
    assert_eq!(
        responses.len(),
        3,
        "one response per line, oversized included"
    );
    assert!(ok(&responses[0]));
    assert!(!ok(&responses[1]), "oversized line is an error response");
    let message = responses[1].get("error").and_then(Json::as_str).unwrap();
    assert!(
        message.contains("exceeds") && message.contains("limit"),
        "error names the limit: {message}"
    );
    assert!(ok(&responses[2]), "the session survives the oversized line");
}

#[test]
fn oversized_tcp_lines_leave_the_connection_usable() {
    use raco::serve::MAX_REQUEST_LINE;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = default_server();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        // Scoped so both socket handles close before shutdown: the
        // server's scoped connection threads only exit at end of input.
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let huge = "y".repeat(MAX_REQUEST_LINE + 1);
            writeln!(stream, "{huge}").unwrap();
            writeln!(stream, r#"{{"op":"ping","id":"still-alive"}}"#).unwrap();
            stream.flush().unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            let responses: Vec<Json> = reader
                .lines()
                .take(2)
                .map(|line| Json::parse(&line.expect("read")).expect("valid JSON"))
                .collect();
            assert!(!ok(&responses[0]));
            assert!(ok(&responses[1]), "same connection keeps serving");
        }

        let mut bye = TcpStream::connect(addr).expect("connect");
        writeln!(bye, r#"{{"op":"shutdown"}}"#).unwrap();
        bye.flush().unwrap();
        let mut line = String::new();
        BufReader::new(&bye).read_line(&mut line).unwrap();
        handle.join().expect("server thread").expect("clean exit");
    });
}

#[test]
fn second_identical_request_is_a_cache_hit() {
    let server = default_server();
    let compile = r#"{"op": "compile", "source": "for (i = 0; i < 64; i++) { y[i] = x[i-2] + x[i] + x[i+2]; }"}"#;
    let script = format!(
        "{compile}\n{}\n{compile}\n{}\n",
        r#"{"op": "stats", "id": "s1"}"#, r#"{"op": "stats", "id": "s2"}"#
    );
    let responses = round_trip(&server, &script);
    assert_eq!(responses.len(), 4);
    assert!(responses.iter().all(ok));

    let hits = |stats: &Json| {
        stats
            .get("stats")
            .and_then(|s| s.get("allocation_hits"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    let misses = |stats: &Json| {
        stats
            .get("stats")
            .and_then(|s| s.get("allocation_misses"))
            .and_then(Json::as_u64)
            .unwrap()
    };
    let (h1, m1) = (hits(&responses[1]), misses(&responses[1]));
    let (h2, m2) = (hits(&responses[3]), misses(&responses[3]));
    assert!(
        h2 > h1,
        "second identical request must add hits ({h1} → {h2})"
    );
    assert_eq!(m2, m1, "…and no new misses");

    // The compiled results themselves are identical.
    assert_eq!(
        responses[0].get("report").and_then(|r| r.get("units")),
        responses[2].get("report").and_then(|r| r.get("units"))
    );
}

#[test]
fn clear_cache_empties_entries_over_the_protocol() {
    let server = default_server();
    let responses = round_trip(
        &server,
        concat!(
            r#"{"op": "kernels"}"#,
            "\n",
            r#"{"op": "clear_cache", "id": "c"}"#,
            "\n",
            r#"{"op": "stats", "id": "after"}"#,
            "\n",
        ),
    );
    assert!(
        responses[1]
            .render()
            .starts_with(r#"{"id":"c","ok":true,"cleared":true,"elapsed_us":"#),
        "{}",
        responses[1].render()
    );
    let entries = responses[2]
        .get("stats")
        .and_then(|s| s.get("allocation_entries"))
        .and_then(Json::as_u64);
    assert_eq!(entries, Some(0));
}

#[test]
fn bounded_server_evicts_under_a_sweep_of_distinct_patterns() {
    let mut config = PipelineConfig::new(AguSpec::new(4, 1).unwrap());
    config.cache_policy = CachePolicy::Bounded(32);
    let server = Server::new(config);

    // 150 distinct shapes (every gap width canonicalizes differently).
    let script: String = (1..=150)
        .map(|gap| {
            format!(
                r#"{{"op":"compile","source":"for (i = 0; i < 32; i++) {{ y[i] = x[i] + x[i + {gap}] + x[i + {}]; }}"}}"#,
                3 * gap
            ) + "\n"
        })
        .chain(std::iter::once(format!(
            "{}\n",
            r#"{"op":"stats","id":"sweep"}"#
        )))
        .collect();
    let responses = round_trip(&server, &script);
    assert_eq!(responses.len(), 151);
    assert!(responses.iter().all(ok), "every compile succeeds");

    let stats = responses.last().unwrap().get("stats").unwrap();
    let entries = stats
        .get("allocation_entries")
        .and_then(Json::as_u64)
        .unwrap();
    let evictions = stats
        .get("allocation_evictions")
        .and_then(Json::as_u64)
        .unwrap();
    // CachePolicy::Bounded(32) rounds up to 2 entries across each of
    // 16 shards; allow that slack but no unbounded growth.
    assert!(entries <= 32 + 16, "entries {entries} exceed the bound");
    assert!(evictions > 0, "the sweep must have evicted");
}

#[test]
fn per_request_machines_share_the_server_cache_soundly() {
    let server = default_server();
    let source = "for (i = 0; i < 16; i++) { s += x[i] + x[i + 4]; }";
    let script = format!(
        concat!(
            r#"{{"op":"compile","id":1,"source":"{s}"}}"#,
            "\n",
            r#"{{"op":"compile","id":2,"source":"{s}","registers":2,"modify":2}}"#,
            "\n",
            r#"{{"op":"compile","id":3,"source":"{s}"}}"#,
            "\n",
        ),
        s = source
    );
    let responses = round_trip(&server, &script);
    assert!(responses.iter().all(ok));
    let machine = |r: &Json, field: &str| {
        r.get("report")
            .and_then(|r| r.get("machine"))
            .and_then(|m| m.get(field))
            .and_then(Json::as_u64)
            .unwrap()
    };
    assert_eq!(machine(&responses[0], "address_registers"), 4);
    assert_eq!(machine(&responses[1], "address_registers"), 2);
    assert_eq!(machine(&responses[1], "modify_range"), 2);
    assert_eq!(machine(&responses[2], "address_registers"), 4);
    // Same source, same default machine → identical results.
    assert_eq!(
        responses[0].get("report").and_then(|r| r.get("units")),
        responses[2].get("report").and_then(|r| r.get("units"))
    );
}

#[test]
fn modify_register_requests_report_matching_predicted_and_measured_cycles() {
    let server = default_server();
    // A scattered chain: repeated over-range +10 deltas, absorbed once
    // the requested machine has modify registers.
    let source = "for (i = 0; i < 16; i++) { s += x[i] + x[i + 10] + x[i + 20] + x[i + 30]; }";
    let script = format!(
        concat!(
            r#"{{"op":"compile","id":1,"source":"{s}","registers":1}}"#,
            "\n",
            r#"{{"op":"compile","id":2,"source":"{s}","registers":1,"modify_registers":2}}"#,
            "\n",
        ),
        s = source
    );
    let responses = round_trip(&server, &script);
    assert!(responses.iter().all(ok));
    let first = |j: &Json| match j {
        Json::Arr(items) => items.first().cloned(),
        _ => None,
    };
    let loop0 = |r: &Json| {
        r.get("report")
            .and_then(|r| r.get("units"))
            .and_then(&first)
            .and_then(|u| u.get("loops").cloned())
            .and_then(|l| first(&l))
            .unwrap()
    };
    let cycles = |l: &Json, field: &str| l.get(field).and_then(Json::as_u64).unwrap();
    let plain = loop0(&responses[0]);
    let with_mr = loop0(&responses[1]);
    // The machine is echoed, and prediction equals measurement on both.
    assert_eq!(
        responses[1]
            .get("report")
            .and_then(|r| r.get("machine"))
            .and_then(|m| m.get("modify_registers"))
            .and_then(Json::as_u64),
        Some(2)
    );
    for l in [&plain, &with_mr] {
        assert_eq!(
            cycles(l, "predicted_cycles"),
            cycles(l, "measured_cycles"),
            "predicted == measured: {l:?}"
        );
    }
    // And the modify registers genuinely bought something.
    assert!(cycles(&with_mr, "predicted_cycles") < cycles(&plain, "predicted_cycles"));
}

#[test]
fn tcp_clients_share_one_warm_cache() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = default_server();

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        let request_and_read = |lines: &[&str]| -> Vec<Json> {
            let mut stream = TcpStream::connect(addr).expect("connect");
            for line in lines {
                writeln!(stream, "{line}").expect("send");
            }
            stream.flush().unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            let mut responses = Vec::new();
            for line in reader.lines().take(lines.len()) {
                responses.push(Json::parse(&line.expect("read")).expect("valid JSON"));
            }
            responses
        };

        // First client compiles; second client repeats it and asks for
        // stats: the hits prove the cache outlived the first session.
        let compile = r#"{"op":"compile","source":"for (i = 0; i < 32; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }"}"#;
        let first = request_and_read(&[compile]);
        assert!(ok(&first[0]));

        let second = request_and_read(&[compile, r#"{"op":"stats","id":"s"}"#]);
        assert!(ok(&second[0]));
        let hits = second[1]
            .get("stats")
            .and_then(|s| s.get("allocation_hits"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(hits > 0, "second connection must hit the first one's work");

        // A shutdown request stops the accept loop and serve_tcp returns.
        let bye = request_and_read(&[r#"{"op":"shutdown"}"#]);
        assert_eq!(bye[0].get("shutdown"), Some(&Json::Bool(true)));
        handle.join().expect("server thread").expect("clean exit");
    });
}

#[test]
fn graceful_drain_closes_idle_connections_and_snapshots_the_cache() {
    use std::io::Read;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let snap = std::env::temp_dir().join(format!("raco-serve-drain-{}.snap", std::process::id()));
    std::fs::remove_file(&snap).ok();
    let server =
        Server::new(PipelineConfig::new(AguSpec::new(4, 1).unwrap())).with_cache_save_path(&snap);
    assert_eq!(server.cache_save_path(), Some(snap.as_path()));

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        // A client that compiles once and then parks, connection open,
        // never sending another byte — the shape of an idle keep-alive
        // client that used to wedge shutdown forever.
        let idle = TcpStream::connect(addr).expect("connect");
        let mut idle_writer = idle.try_clone().unwrap();
        let mut idle_reader = BufReader::new(idle);
        writeln!(
            idle_writer,
            r#"{{"op":"compile","source":"for (i = 0; i < 32; i++) {{ y[i] = x[i-1] + x[i] + x[i+1]; }}"}}"#
        )
        .unwrap();
        let mut response = String::new();
        idle_reader.read_line(&mut response).expect("reply");
        assert!(response.contains(r#""ok":true"#));

        // A second client asks the whole server to shut down.
        let mut bye = TcpStream::connect(addr).expect("connect");
        writeln!(bye, r#"{{"op":"shutdown"}}"#).unwrap();
        let mut ack = String::new();
        BufReader::new(bye.try_clone().unwrap())
            .read_line(&mut ack)
            .unwrap();
        assert!(ack.contains(r#""shutdown":true"#));

        // serve_tcp must drain and return even though the idle client
        // never hung up (this join deadlocked before the drain fix) …
        handle.join().expect("server thread").expect("clean exit");

        // … and the idle client sees a clean server-side close.
        let mut rest = String::new();
        let eof = idle_reader.read_to_string(&mut rest);
        assert!(
            matches!(eof, Ok(0)),
            "drained connection must close: {eof:?} {rest:?}"
        );
    });

    // The graceful shutdown snapshotted the warm cache; a fresh
    // pipeline boots warm from it.
    let restored = raco::driver::Pipeline::new(AguSpec::new(4, 1).unwrap());
    let report = restored
        .load_cache(&snap)
        .expect("snapshot written on shutdown");
    std::fs::remove_file(&snap).ok();
    assert!(report.loaded() > 0, "{report:?}");
    assert_eq!(report.skipped, 0, "{:?}", report.warnings);
}

#[test]
fn save_cache_requests_write_loadable_snapshots() {
    let snap = std::env::temp_dir().join(format!("raco-serve-saveop-{}.snap", std::process::id()));
    std::fs::remove_file(&snap).ok();

    // Without a path and without a configured default, the request is
    // a (non-fatal) error response.
    let server = default_server();
    let responses = round_trip(
        &server,
        concat!(
            r#"{"id": 1, "op": "compile", "source": "for (i = 0; i < 16; i++) { s += x[i]; }"}"#,
            "\n",
            r#"{"id": 2, "op": "save_cache"}"#,
            "\n",
        ),
    );
    assert!(ok(&responses[0]));
    assert!(!ok(&responses[1]));
    assert!(responses[1]
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("needs a `path`"));

    // With an explicit path the snapshot is written and reports what
    // it holds; a knobbed save_cache is rejected like other control ops.
    let request = format!(
        "{}\n{}\n",
        Json::Obj(vec![
            ("id".to_owned(), Json::Int(3)),
            ("op".to_owned(), Json::str("save_cache")),
            ("path".to_owned(), Json::str(snap.display().to_string())),
        ])
        .render(),
        r#"{"id": 4, "op": "save_cache", "registers": 2}"#,
    );
    let responses = round_trip(&server, &request);
    let saved = responses[0].get("saved").expect("saved payload");
    assert!(saved.get("allocations").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(
        saved.get("path").and_then(Json::as_str),
        Some(snap.display().to_string().as_str())
    );
    assert!(!ok(&responses[1]), "knobs on save_cache must error");

    let restored = raco::driver::Pipeline::new(AguSpec::new(4, 1).unwrap());
    let report = restored.load_cache(&snap).expect("snapshot readable");
    std::fs::remove_file(&snap).ok();
    assert!(report.loaded() > 0);
    assert_eq!(restored.cache_stats().loaded, report.loaded() as u64);
}

#[test]
fn drain_gives_half_received_requests_a_grace_to_finish() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = default_server();

    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        // A client that has sent only *part* of a request line when
        // the shutdown lands …
        let slow = TcpStream::connect(addr).expect("connect");
        let mut slow_writer = slow.try_clone().unwrap();
        let mut slow_reader = BufReader::new(slow);
        write!(slow_writer, r#"{{"id":7,"op":"pi"#).unwrap();
        slow_writer.flush().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(120));

        let mut bye = TcpStream::connect(addr).expect("connect");
        writeln!(bye, r#"{{"op":"shutdown"}}"#).unwrap();
        let mut ack = String::new();
        BufReader::new(bye.try_clone().unwrap())
            .read_line(&mut ack)
            .unwrap();
        assert!(ack.contains(r#""shutdown":true"#));

        // … and completes it shortly after (well inside the drain
        // grace): the request must still be answered, not dropped.
        std::thread::sleep(std::time::Duration::from_millis(100));
        writeln!(slow_writer, r#"ng"}}"#).unwrap();
        slow_writer.flush().unwrap();
        let mut response = String::new();
        slow_reader.read_line(&mut response).expect("read");
        assert!(
            response.contains(r#""pong":true"#) && response.contains(r#""id":7"#),
            "half-received request must be served through the drain: {response:?}"
        );

        handle.join().expect("server thread").expect("clean exit");
    });
}

/// A small valid compile request with a distinctive reply.
const DRIBBLE_REQUEST: &str =
    r#"{"id":"dribble","op":"compile","source":"for (i = 0; i < 8; i++) { s += x[i] + y[i]; }"}"#;

/// Reads exactly one reply line from the stream.
fn one_reply(stream: &TcpStream) -> Json {
    let mut line = String::new();
    BufReader::new(stream.try_clone().expect("clone socket"))
        .read_line(&mut line)
        .expect("read reply");
    Json::parse(line.trim()).expect("reply is valid JSON")
}

/// Projects a reply onto its deterministic parts — id, ok, and the
/// report's `machine`/`units` subtrees — dropping wall-clock and
/// cumulative-cache fields that legitimately differ across requests.
fn stable(reply: &Json) -> Json {
    let report = reply.get("report");
    Json::Obj(vec![
        (
            "id".to_owned(),
            reply.get("id").cloned().unwrap_or(Json::Null),
        ),
        (
            "ok".to_owned(),
            reply.get("ok").cloned().unwrap_or(Json::Null),
        ),
        (
            "machine".to_owned(),
            report
                .and_then(|r| r.get("machine"))
                .cloned()
                .unwrap_or(Json::Null),
        ),
        (
            "units".to_owned(),
            report
                .and_then(|r| r.get("units"))
                .cloned()
                .unwrap_or(Json::Null),
        ),
    ])
}

#[test]
fn dribbled_tcp_writes_parse_identically_to_whole_line_writes() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = default_server();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        let whole = {
            let mut stream = TcpStream::connect(addr).expect("connect");
            writeln!(stream, "{DRIBBLE_REQUEST}").unwrap();
            stream.flush().unwrap();
            one_reply(&stream)
        };
        assert!(ok(&whole), "baseline request compiles: {whole:?}");

        // Byte-at-a-time: every byte of the frame (newline included)
        // arrives in its own TCP segment.
        let dribbled = {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let framed = format!("{DRIBBLE_REQUEST}\n");
            for byte in framed.as_bytes() {
                stream.write_all(std::slice::from_ref(byte)).unwrap();
                stream.flush().unwrap();
            }
            one_reply(&stream)
        };

        // Split at an awkward mid-token boundary with a pause between
        // the halves, so the frame straddles two reads.
        let split = {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            let framed = format!("{DRIBBLE_REQUEST}\n");
            let (head, tail) = framed.as_bytes().split_at(framed.len() / 2);
            stream.write_all(head).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(120));
            stream.write_all(tail).unwrap();
            stream.flush().unwrap();
            one_reply(&stream)
        };

        assert_eq!(
            stable(&dribbled),
            stable(&whole),
            "byte-at-a-time delivery must parse to the identical reply"
        );
        assert_eq!(
            stable(&split),
            stable(&whole),
            "a frame straddling two reads must parse to the identical reply"
        );

        let mut bye = TcpStream::connect(addr).expect("connect");
        writeln!(bye, r#"{{"op":"shutdown"}}"#).unwrap();
        bye.flush().unwrap();
        let mut line = String::new();
        BufReader::new(&bye).read_line(&mut line).unwrap();
        handle.join().expect("server thread").expect("clean exit");
    });
}

#[test]
fn coalesced_tcp_frames_each_get_their_own_reply() {
    // The inverse of dribbling: several frames land in one segment.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server = default_server();
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| server.serve_tcp(&listener));

        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let batch = format!(
                "{}\n{}\n{}\n",
                r#"{"op":"ping","id":1}"#, DRIBBLE_REQUEST, r#"{"op":"ping","id":2}"#
            );
            stream.write_all(batch.as_bytes()).unwrap();
            stream.flush().unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            let replies: Vec<Json> = reader
                .lines()
                .take(3)
                .map(|line| Json::parse(&line.expect("read")).expect("valid JSON"))
                .collect();
            assert_eq!(replies.len(), 3);
            assert!(
                replies.iter().all(ok),
                "all three frames served: {replies:?}"
            );
            assert_eq!(replies[0].get("id"), Some(&Json::Int(1)));
            assert_eq!(replies[2].get("id"), Some(&Json::Int(2)));
        }

        let mut bye = TcpStream::connect(addr).expect("connect");
        writeln!(bye, r#"{{"op":"shutdown"}}"#).unwrap();
        bye.flush().unwrap();
        let mut line = String::new();
        BufReader::new(&bye).read_line(&mut line).unwrap();
        handle.join().expect("server thread").expect("clean exit");
    });
}

#[test]
fn one_connection_compiles_the_same_source_on_two_backends() {
    // The `machine` knob swaps the whole description per request: the
    // same source on `paper` and `saris` over one session must come
    // back with each machine's own parameters and costs, and switching
    // back must reproduce the first answer exactly.
    let server = default_server();
    let source = "for (i = 0; i < 32; i++) { s += x[i] + x[i + 3] + x[i + 7]; }";
    let script = format!(
        concat!(
            r#"{{"op":"compile","id":1,"source":"{s}","machine":"paper"}}"#,
            "\n",
            r#"{{"op":"compile","id":2,"source":"{s}","machine":"saris"}}"#,
            "\n",
            r#"{{"op":"compile","id":3,"source":"{s}","machine":"paper"}}"#,
            "\n",
        ),
        s = source
    );
    let responses = round_trip(&server, &script);
    assert_eq!(responses.len(), 3);
    assert!(responses.iter().all(ok), "{responses:?}");

    let machine = |r: &Json, field: &str| {
        r.get("report")
            .and_then(|r| r.get("machine"))
            .and_then(|m| m.get(field))
            .and_then(Json::as_i64)
            .unwrap_or_else(|| panic!("machine.{field} missing: {r:?}"))
    };
    // paper: K=4, symmetric +/-1, no modify registers.
    assert_eq!(machine(&responses[0], "address_registers"), 4);
    assert_eq!(machine(&responses[0], "modify_registers"), 0);
    // saris: K=8, update range [0, 0], MR=8 -- every stride is streamed.
    assert_eq!(machine(&responses[1], "address_registers"), 8);
    assert_eq!(machine(&responses[1], "update_min"), 0);
    assert_eq!(machine(&responses[1], "update_max"), 0);
    assert_eq!(machine(&responses[1], "modify_registers"), 8);

    // Prediction equals measurement on both backends.
    for response in &responses {
        let units = response
            .get("report")
            .and_then(|r| r.get("units"))
            .expect("report.units");
        let Json::Arr(units) = units else {
            panic!("units is an array: {units:?}")
        };
        let loops = units[0].get("loops").expect("units[0].loops");
        let Json::Arr(loops) = loops else {
            panic!("loops is an array: {loops:?}")
        };
        for lp in loops {
            assert_eq!(
                lp.get("predicted_cycles"),
                lp.get("measured_cycles"),
                "{lp:?}"
            );
        }
    }

    // Flipping back to the first backend reproduces its answer exactly
    // (no cross-machine cache bleed within the session).
    assert_eq!(
        responses[0].get("report").and_then(|r| r.get("units")),
        responses[2].get("report").and_then(|r| r.get("units"))
    );
}
