//! Differential properties over *randomly generated machine
//! descriptions* — the declarative-backend analogue of
//! `proptest_cost_model.rs`. A backend here is pure data (register
//! count, update-range shape, modify registers, per-opcode costs), so
//! these properties quantify over the description space itself:
//!
//! * **differential** — random descriptions × random 1D patterns and
//!   random 1D/2D DSL programs: the pipeline's predicted cycles equal
//!   the simulator's measured cycles under both validation oracles;
//! * **curve/allocate agreement** — `cost_curve(p, k)[k-1]` equals
//!   `allocate_with_registers(p, k).cost()` for every budget on every
//!   description;
//! * **monotonicity** — more address registers never increase the
//!   predicted cost, whatever the range shape or cost table;
//! * **description round-trip** — `parse(to_text(d))` reproduces the
//!   spec exactly, for random descriptions.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use raco::driver::{Parallelism, Pipeline, PipelineConfig};
use raco::ir::{
    AccessKind, AccessPattern, AguSpec, CostTable, LoopSpec, MachineDescription, UpdateRange,
};

/// Strategy: a random machine description. Ranges cover the symmetric
/// classics, post-increment-only (bwdsp-shaped), stream-only
/// (saris-shaped), and skewed asymmetric shapes; cost tables cover
/// unit and non-unit opcodes.
fn machine() -> impl Strategy<Value = AguSpec> {
    (
        1usize..=6,
        prop_oneof![
            Just(UpdateRange::symmetric(0)),
            Just(UpdateRange::symmetric(1)),
            Just(UpdateRange::symmetric(2)),
            Just(UpdateRange::new(0, 1).unwrap()),
            Just(UpdateRange::new(0, 2).unwrap()),
            Just(UpdateRange::new(-1, 2).unwrap()),
            Just(UpdateRange::new(-2, 1).unwrap()),
        ],
        0usize..=4,
        (1u32..=3, 1u32..=3, 1u32..=2),
    )
        .prop_map(|(k, range, mr, (lda, ldm, adda))| {
            AguSpec::new(k, 1)
                .unwrap()
                .with_update_range(range)
                .with_modify_registers(mr)
                .with_cost_table(CostTable::new(lda, ldm, adda).unwrap())
        })
}

/// Strategy: a random single-array access pattern.
fn pattern() -> impl Strategy<Value = (Vec<i64>, i64)> {
    (
        prop::collection::vec(-10i64..=10, 2..=9),
        prop_oneof![Just(1i64), Just(-1i64), Just(2i64), Just(-3i64)],
    )
}

fn single_array_loop(offsets: &[i64], stride: i64) -> LoopSpec {
    let mut spec = LoopSpec::new("prop", "i", stride);
    let a = spec.add_array("a", 1);
    for &off in offsets {
        spec.push_access(a, off, AccessKind::Read).unwrap();
    }
    spec
}

fn pipeline_for(agu: AguSpec) -> Pipeline {
    let mut config = PipelineConfig::new(agu);
    config.parallelism = Parallelism::Sequential;
    Pipeline::with_config(config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core differential: on a random description, the pipeline's
    /// predicted cycles equal what the simulator measures — and the
    /// declarative checker agrees (the pipeline gates on both oracles;
    /// a disagreement is reported as its own failure class).
    #[test]
    fn predicted_equals_measured_on_random_descriptions(
        agu in machine(),
        (offsets, stride) in pattern(),
    ) {
        let spec = single_array_loop(&offsets, stride);
        let (lr, _) = pipeline_for(agu).compile_loop(&spec);
        prop_assert!(
            lr.succeeded(),
            "{agu:?} offsets {:?} stride {}: {:?}",
            &offsets, stride, lr.failure
        );
        prop_assert_eq!(
            lr.measured_cost, Some(lr.cost),
            "{:?} offsets {:?} stride {}: predicted != measured",
            agu, &offsets, stride
        );
    }

    /// Same differential over whole random DSL programs (1D loops and
    /// 2-level nests from the fuzzer's generator), through the batch
    /// entry point — carries and multi-array pooling included.
    #[test]
    fn random_programs_validate_on_random_descriptions(
        agu in machine(),
        seed in 0u64..=u64::MAX,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let unit = raco::fuzz::gen_unit(&mut rng);
        // Generated loops draw from up to three arrays; a machine with
        // fewer address registers fails allocation legitimately, which
        // is not what this property is about.
        let agu = agu
            .with_address_registers(agu.address_registers().max(3))
            .expect("within the register cap");
        let report = pipeline_for(agu)
            .compile_str("prop", &unit.render())
            .expect("generated units parse");
        prop_assert_eq!(
            report.failed(), 0,
            "{:?} seed {:#x}:\n{}\nsource:\n{}",
            agu, seed, report.render_table(), unit.render()
        );
        for lr in report.loops() {
            prop_assert_eq!(
                lr.measured_cost, Some(lr.cost),
                "{:?} seed {:#x} loop {}: predicted != measured",
                agu, seed, &lr.name
            );
        }
    }

    /// The register sweep and the per-budget allocator must tell the
    /// same story on every description: `curve[k-1] == allocate(k)`.
    #[test]
    fn cost_curve_agrees_with_per_budget_allocation(
        agu in machine(),
        (offsets, stride) in pattern(),
    ) {
        let optimizer = raco::core::Optimizer::new(agu);
        let pattern = AccessPattern::from_offsets(&offsets, stride);
        let k_max = agu.address_registers();
        let curve = optimizer.cost_curve(&pattern, k_max);
        prop_assert_eq!(curve.len(), k_max);
        for k in 1..=k_max {
            let allocation = optimizer.allocate_with_registers(&pattern, k);
            prop_assert_eq!(
                curve[k - 1],
                allocation.cost(),
                "{:?} offsets {:?} stride {}: curve[{}] != allocate({})",
                agu, &offsets, stride, k - 1, k
            );
        }
    }

    /// More address registers never hurt, whatever the range shape or
    /// cost table.
    #[test]
    fn predicted_cost_is_monotone_in_the_register_budget(
        agu in machine(),
        (offsets, stride) in pattern(),
    ) {
        let optimizer = raco::core::Optimizer::new(agu);
        let pattern = AccessPattern::from_offsets(&offsets, stride);
        let mut previous = u32::MAX;
        for k in 1..=agu.address_registers() {
            let cost = optimizer.allocate_with_registers(&pattern, k).cost();
            prop_assert!(
                cost <= previous,
                "{:?} offsets {:?} stride {}: cost({}) = {} > cost({}) = {}",
                agu, &offsets, stride, k, cost, k - 1, previous
            );
            previous = cost;
        }
    }

    /// A description rendered to text and parsed back is the same
    /// machine — the snapshot fingerprint and the `--machine <file>`
    /// path both lean on this.
    #[test]
    fn descriptions_round_trip_through_text(agu in machine()) {
        let description = MachineDescription::new("prop", agu);
        let text = description.to_text();
        let reparsed = MachineDescription::parse(&text)
            .unwrap_or_else(|e| panic!("rendered description must parse: {e}\n{text}"));
        prop_assert_eq!(reparsed.spec(), description.spec());
        prop_assert_eq!(reparsed.name(), description.name());
    }
}
