//! End-to-end cache persistence: a warm cache saved by one pipeline —
//! or one *process* — boots the next one warm.
//!
//! In-process: pipeline A compiles the kernel suite and snapshots its
//! cache; pipeline B loads the snapshot and must serve its first,
//! identical batch entirely from hits, with byte-identical listings.
//!
//! Cross-process: the `raco` binary itself (via `CARGO_BIN_EXE_raco`)
//! runs `kernels --cache-save` then `kernels --cache-load`, and the
//! second process must report zero allocation misses and a
//! byte-identical report (modulo timing fields).

use std::path::PathBuf;
use std::process::Command;

use raco::driver::json::Json;
use raco::driver::{Pipeline, PipelineConfig};
use raco::ir::AguSpec;

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("raco-persist-{tag}-{}.snap", std::process::id()))
}

fn listing_config() -> PipelineConfig {
    let mut config = PipelineConfig::new(AguSpec::new(4, 1).unwrap());
    config.listings = true;
    config
}

#[test]
fn second_pipeline_boots_warm_and_reproduces_listings() {
    let snap = temp_path("inproc");
    std::fs::remove_file(&snap).ok();

    let first = Pipeline::with_config(listing_config());
    let cold = first.compile_kernels();
    assert_eq!(cold.failed(), 0);
    assert!(cold.cache.allocation_misses > 0, "first run computes");
    let saved = first.save_cache(&snap).expect("snapshot written");
    assert!(saved.entries() > 0);
    assert_eq!(first.cache_stats().persisted, saved.entries() as u64);

    let second = Pipeline::with_config(listing_config());
    let loaded = second.load_cache(&snap).expect("snapshot read");
    std::fs::remove_file(&snap).ok();
    assert_eq!(loaded.skipped, 0, "{:?}", loaded.warnings);
    assert_eq!(loaded.loaded(), saved.entries());
    assert_eq!(second.cache_stats().loaded, saved.entries() as u64);

    // The very FIRST batch on the restored pipeline is all hits …
    let warm = second.compile_kernels();
    assert_eq!(warm.failed(), 0);
    assert_eq!(warm.cache.allocation_misses, 0, "{:?}", warm.cache);
    assert_eq!(warm.cache.curve_misses, 0);
    assert!(warm.cache.allocation_hits > 0);

    // … and its output is byte-identical, listing for listing.
    assert_eq!(cold.units.len(), warm.units.len());
    for (a, b) in cold.units.iter().zip(&warm.units) {
        assert_eq!(a.listing, b.listing, "unit {} listing drifted", a.name);
        for (la, lb) in a.loops.iter().zip(&b.loops) {
            assert_eq!(la, lb, "loop report drifted");
        }
    }
}

#[test]
fn snapshots_load_across_machine_configs_without_false_sharing() {
    // Entries are keyed by (pattern, M, granted registers, options) —
    // deliberately not by the machine's K. Restoring a K=4 snapshot
    // into a K=2 pipeline may therefore legitimately hit where the
    // *grants* coincide, but must never change what the K=2 machine
    // compiles: cost curves (keyed by k_max = K) recompute, and the
    // report must be byte-identical to a cold K=2 run.
    let snap = temp_path("machines");
    std::fs::remove_file(&snap).ok();

    let source = "for (i = 0; i < 64; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }";
    let k4 = Pipeline::new(AguSpec::new(4, 1).unwrap());
    k4.compile_str("unit", source).unwrap();
    k4.save_cache(&snap).unwrap();

    let warmed = Pipeline::new(AguSpec::new(2, 1).unwrap());
    let loaded = warmed.load_cache(&snap).expect("snapshot read");
    std::fs::remove_file(&snap).ok();
    assert!(loaded.loaded() > 0);

    let warm = warmed.compile_str("unit", source).unwrap();
    assert_eq!(warm.failed(), 0);
    assert!(
        warm.cache.curve_misses > 0,
        "K=2 curves cannot reuse K=4 curves: {:?}",
        warm.cache
    );

    let cold = Pipeline::new(AguSpec::new(2, 1).unwrap())
        .compile_str("unit", source)
        .unwrap();
    for (a, b) in cold.loops().zip(warm.loops()) {
        assert_eq!(a, b, "foreign snapshot must not change K=2 results");
    }
}

/// Strips the fields that legitimately differ between two runs
/// (timing, throughput, cache counters, stage timings — a warm run
/// takes hit stages where a cold run took miss stages) so the rest
/// must match byte for byte.
fn stable_fields(mut json: Json) -> Json {
    if let Json::Obj(fields) = &mut json {
        fields.retain(|(key, _)| {
            !matches!(
                key.as_str(),
                "elapsed_us" | "loops_per_second" | "threads" | "cache" | "timings"
            )
        });
    }
    json
}

#[test]
fn second_process_with_cache_load_is_all_hits_and_byte_identical() {
    let snap = temp_path("process");
    std::fs::remove_file(&snap).ok();
    let raco = env!("CARGO_BIN_EXE_raco");

    let run = |args: &[&str]| -> Json {
        let output = Command::new(raco)
            .args(["kernels", "--quiet", "--json", "--listing"])
            .args(args)
            .output()
            .expect("raco runs");
        assert!(
            output.status.success(),
            "raco failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        Json::parse(&String::from_utf8_lossy(&output.stdout)).expect("JSON report")
    };

    let first = run(&["--cache-save", &snap.display().to_string()]);
    assert!(snap.exists(), "snapshot written by the first process");
    let second = run(&["--cache-load", &snap.display().to_string()]);
    std::fs::remove_file(&snap).ok();

    // The second process reports hits on its FIRST (and only) request
    // and never recomputes an allocation.
    let cache = second.get("cache").expect("cache stats");
    assert_eq!(
        cache.get("allocation_misses").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(cache.get("curve_misses").and_then(Json::as_u64), Some(0));
    assert!(cache.get("allocation_hits").and_then(Json::as_u64).unwrap() > 0);
    assert!(cache.get("loaded").and_then(Json::as_u64).unwrap() > 0);

    // Everything except timings — listings included — is identical.
    assert_eq!(
        stable_fields(first).render(),
        stable_fields(second).render(),
        "cold and snapshot-warmed processes must emit identical reports"
    );
}

/// One-array shapes: each distinct `gap` canonicalizes to exactly one
/// allocation entry and one cost-curve entry, so cache arithmetic
/// below is exact.
fn sweep_source(gap: usize) -> (String, String) {
    (
        format!("sweep{gap}"),
        format!("for (i = 0; i < 32; i++) {{ s += x[i] + x[i + {gap}]; }}"),
    )
}

#[test]
fn bounded_cache_snapshot_survives_evictions_and_warm_boots_consistently() {
    use raco::driver::CachePolicy;

    let snap = temp_path("bounded");
    std::fs::remove_file(&snap).ok();

    const SHAPES: usize = 40;
    let sweep: Vec<(String, String)> = (1..=SHAPES).map(sweep_source).collect();

    // Cold bounded pipeline: the sweep must overflow the bound and
    // evict FIFO-style before we snapshot.
    let mut config = PipelineConfig::new(AguSpec::new(4, 1).unwrap());
    config.cache_policy = CachePolicy::Bounded(16);
    let bounded = Pipeline::with_config(config.clone());
    let cold = bounded
        .compile_units_with(bounded.config(), &sweep)
        .expect("sweep compiles");
    assert_eq!(cold.failed(), 0);
    let stats = bounded.cache_stats();
    assert!(
        stats.allocation_evictions > 0,
        "40 shapes over Bounded(16) must evict: {stats:?}"
    );
    let resident = stats.allocation_entries + stats.curve_entries;

    // The snapshot holds exactly the SURVIVING entries — what FIFO
    // kept, not what the sweep computed.
    let saved = bounded.save_cache(&snap).expect("snapshot written");
    assert_eq!(saved.entries(), resident, "snapshot == resident entries");
    assert!(
        (saved.allocations as u64) < SHAPES as u64,
        "evictions must have trimmed the snapshot"
    );

    // Warm boot into an UNBOUNDED pipeline: every surviving entry
    // loads, and recompiling the full sweep misses exactly on the
    // evicted shapes — a single spurious miss of a loaded entry would
    // break the arithmetic.
    let warm = Pipeline::with_config(PipelineConfig::new(AguSpec::new(4, 1).unwrap()));
    let loaded = warm.load_cache(&snap).expect("snapshot read");
    assert_eq!(loaded.skipped, 0, "{:?}", loaded.warnings);
    assert_eq!(loaded.duplicates, 0);
    assert_eq!(loaded.loaded(), saved.entries());
    assert_eq!(warm.cache_stats().loaded, saved.entries() as u64);

    let resweep = warm
        .compile_units_with(warm.config(), &sweep)
        .expect("resweep compiles");
    assert_eq!(resweep.failed(), 0);
    let warm_stats = warm.cache_stats();
    assert_eq!(
        warm_stats.allocation_hits, saved.allocations as u64,
        "every loaded allocation must hit exactly once"
    );
    assert_eq!(
        warm_stats.allocation_misses,
        SHAPES as u64 - saved.allocations as u64,
        "misses must be exactly the evicted shapes"
    );
    assert_eq!(warm_stats.curve_hits, saved.curves as u64);
    assert_eq!(warm_stats.curve_misses, SHAPES as u64 - saved.curves as u64);

    // Warm boot into another BOUNDED pipeline: the load itself must
    // respect the bound rather than ballooning past it.
    let rebounded = Pipeline::with_config(config);
    let reloaded = rebounded.load_cache(&snap).expect("snapshot read");
    std::fs::remove_file(&snap).ok();
    let rebounded_stats = rebounded.cache_stats();
    assert!(
        rebounded_stats.allocation_entries <= 16 + 16,
        "bounded load must stay near the bound: {rebounded_stats:?}"
    );
    assert_eq!(
        rebounded_stats.loaded,
        reloaded.loaded() as u64,
        "loaded counter matches the load report"
    );
}
