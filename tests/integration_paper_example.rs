//! End-to-end integration test: the complete paper walkthrough on the
//! running example of Section 2 / Figure 1.

use raco::agu::codegen::CodeGenerator;
use raco::agu::sim;
use raco::core::{exact, CostModel, Optimizer, Phase1Outcome};
use raco::graph::{AccessGraph, Path};
use raco::ir::{examples, AguSpec, MemoryLayout, Trace};

#[test]
fn figure1_edge_set_is_reproduced_exactly() {
    let spec = examples::paper_loop();
    let graph = AccessGraph::build(&spec.patterns()[0], 1);
    let expected: Vec<(usize, usize)> = vec![
        (0, 1),
        (0, 2),
        (0, 4),
        (0, 5),
        (1, 3),
        (1, 4),
        (1, 5),
        (2, 4),
        (3, 5),
        (3, 6),
        (4, 5),
    ];
    assert_eq!(graph.intra_edges(), expected.as_slice());
}

#[test]
fn section2_subsequence_is_a_zero_cost_path() {
    // "the access sub-sequence (a_1, a_3, a_5, a_6) … could be realized
    //  with a single register R and using only auto-increment and
    //  auto-decrement operations on R."
    let spec = examples::paper_loop();
    let graph = AccessGraph::build(&spec.patterns()[0], 1);
    let path = Path::new(vec![0, 2, 4, 5]).unwrap();
    assert_eq!(path.intra_cost(graph.distance_model()), 0);
    for step in path.intra_steps(graph.distance_model()) {
        assert!(step.abs() <= 1, "step {step} must be auto-inc/dec");
    }
}

#[test]
fn phase1_proves_three_virtual_registers() {
    let spec = examples::paper_loop();
    let alloc = Optimizer::new(AguSpec::new(8, 1).unwrap()).allocate(&spec.patterns()[0]);
    assert_eq!(alloc.virtual_registers(), 3);
    assert_eq!(
        alloc.phase1().outcome(),
        Phase1Outcome::ZeroCost {
            proved_minimal: true
        }
    );
    assert_eq!(alloc.phase1().lower_bound(), 2);
    assert!(alloc.is_zero_cost());
    // a_7 is necessarily alone: only offset -2 wrap-closes onto -2.
    let a7 = alloc.cover().path_of(6).unwrap();
    assert_eq!(a7.indices(), &[6]);
}

#[test]
fn register_sweep_matches_the_exhaustive_oracle() {
    let spec = examples::paper_loop();
    let pattern = &spec.patterns()[0];
    for k in 1..=4usize {
        let alloc = Optimizer::new(AguSpec::new(k, 1).unwrap()).allocate(pattern);
        let (optimal, _) =
            exact::optimal_allocation(alloc.distance_model(), k, CostModel::steady_state());
        assert_eq!(
            alloc.cost(),
            optimal,
            "greedy must match the oracle on the paper example at K = {k}"
        );
    }
}

#[test]
fn each_merge_costs_at_least_one_unit() {
    // "each merge operation incurs at least one unit-cost address
    //  computation" — implied by the minimality of K̃.
    let spec = examples::paper_loop();
    let alloc = Optimizer::new(AguSpec::new(1, 1).unwrap()).allocate(&spec.patterns()[0]);
    let mut previous = 0;
    for record in alloc.phase2().records() {
        assert!(record.total_cost_after > previous);
        previous = record.total_cost_after;
    }
    assert_eq!(alloc.phase2().records().len(), 2); // K̃ - K = 3 - 1
}

#[test]
fn generated_code_executes_correctly_for_every_k() {
    let spec = examples::paper_loop();
    for k in 1..=4usize {
        let agu = AguSpec::new(k, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0x100, 64);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        let trace = Trace::capture(&spec, &layout, 50);
        let report = sim::run(&program, &trace, &agu).expect("verified run");
        assert_eq!(
            report.explicit_updates_per_iteration(),
            u64::from(alloc.total_cost()),
            "K = {k}: predicted cost must equal simulator-measured updates"
        );
        assert_eq!(report.accesses_checked(), 50 * 7);
    }
}

#[test]
fn merge_example_from_section_3_2() {
    // "merging paths P1 = (a_1, a_4, a_6) and P2 = (a_3, a_5) results in
    //  the path P1 ⊕ P2 = (a_1, a_3, a_4, a_5, a_6)."
    let p1 = Path::new(vec![0, 3, 5]).unwrap();
    let p2 = Path::new(vec![2, 4]).unwrap();
    assert_eq!(p1.merge(&p2).unwrap().indices(), &[0, 2, 3, 4, 5]);
}
