//! Property-based end-to-end validation: random loops are lowered,
//! allocated, compiled to address code and simulated; the simulator is
//! the judge.

use proptest::prelude::*;

use raco::agu::codegen::CodeGenerator;
use raco::agu::sim;
use raco::core::Optimizer;
use raco::ir::{AccessKind, AguSpec, LoopSpec, MemoryLayout, Trace};

/// Strategy: a random loop over 1–3 arrays with random offsets, kinds,
/// coefficients and stride.
fn random_loop() -> impl Strategy<Value = LoopSpec> {
    let arrays = prop::collection::vec(
        (prop_oneof![Just(0i64), Just(1i64), Just(2i64), Just(-1i64)],),
        1..=3,
    );
    let accesses = prop::collection::vec((0usize..3, -5i64..=5, prop::bool::ANY), 1..=12);
    let stride = prop_oneof![Just(1i64), Just(-1i64), Just(2i64)];
    let start = -4i64..=4;
    (arrays, accesses, stride, start).prop_map(|(arrays, accesses, stride, start)| {
        let mut spec = LoopSpec::new("prop", "i", stride);
        spec.set_start(start);
        let ids: Vec<_> = arrays
            .iter()
            .enumerate()
            .map(|(idx, (coeff,))| spec.add_array(&format!("arr{idx}"), *coeff))
            .collect();
        for (which, offset, write) in accesses {
            let id = ids[which % ids.len()];
            let kind = if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            spec.push_access(id, offset, kind).expect("known array");
        }
        spec
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_loops_compile_and_verify(
        spec in random_loop(),
        k in 3usize..=6,
        m in 1u32..=2,
        iterations in 1u64..=12,
    ) {
        let agu = AguSpec::new(k, m).unwrap();
        let arrays_used = spec.patterns().len();
        if arrays_used == 0 || arrays_used > k {
            return Ok(());
        }
        let alloc = Optimizer::new(agu).allocate_loop(&spec).expect("fits");
        let layout = MemoryLayout::contiguous(&spec, 0x1000, 0x100);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .expect("emits");
        let trace = Trace::capture(&spec, &layout, iterations);
        let report = sim::run(&program, &trace, &agu).expect("verifies");
        prop_assert_eq!(
            report.explicit_updates_per_iteration(),
            u64::from(alloc.total_cost())
        );
        prop_assert_eq!(report.accesses_checked(), iterations * spec.len() as u64);
    }

    #[test]
    fn modify_registers_never_hurt(
        spec in random_loop(),
        mr in 1usize..=3,
    ) {
        let plain = AguSpec::new(6, 1).unwrap();
        let with_mr = AguSpec::new(6, 1).unwrap().with_modify_registers(mr);
        let arrays_used = spec.patterns().len();
        if arrays_used == 0 || arrays_used > 6 {
            return Ok(());
        }
        let alloc = Optimizer::new(plain).allocate_loop(&spec).expect("fits");
        let layout = MemoryLayout::contiguous(&spec, 0x1000, 0x100);
        let trace = Trace::capture(&spec, &layout, 8);

        let p_plain = CodeGenerator::new(plain)
            .generate(&spec, &alloc, &layout)
            .expect("emits");
        let p_mr = CodeGenerator::new(with_mr)
            .generate(&spec, &alloc, &layout)
            .expect("emits");
        let r_plain = sim::run(&p_plain, &trace, &plain).expect("verifies");
        let r_mr = sim::run(&p_mr, &trace, &with_mr).expect("verifies");
        prop_assert!(
            r_mr.explicit_updates_per_iteration()
                <= r_plain.explicit_updates_per_iteration()
        );
    }

    #[test]
    fn corrupted_layout_is_always_caught(
        spec in random_loop(),
        delta in 1i64..=64,
    ) {
        // Generate code against one layout, simulate against a shifted
        // trace: the simulator must detect the mismatch on loops that
        // actually access memory.
        let agu = AguSpec::new(6, 1).unwrap();
        let arrays_used = spec.patterns().len();
        if arrays_used == 0 || arrays_used > 6 {
            return Ok(());
        }
        let alloc = Optimizer::new(agu).allocate_loop(&spec).expect("fits");
        let layout = MemoryLayout::contiguous(&spec, 0x1000, 0x100);
        let shifted = MemoryLayout::contiguous(&spec, 0x1000 + delta, 0x100);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .expect("emits");
        let trace = Trace::capture(&spec, &shifted, 4);
        prop_assert!(sim::run(&program, &trace, &agu).is_err());
    }

    #[test]
    fn peephole_recovers_injected_slack(
        spec in random_loop(),
        split in -2i64..=2,
    ) {
        // Take a correct generated program, de-optimize it in
        // semantics-preserving ways (free updates → explicit ADDAs, one
        // ADDA → two, stray ADDA 0s), then peephole-optimize and check
        // both the slack and the optimized program still verify — and
        // that the optimizer never makes things worse.
        use raco::agu::{peephole, AddressInstr, AddressProgram, Update};
        let agu = AguSpec::new(6, 1).unwrap();
        let arrays_used = spec.patterns().len();
        if arrays_used == 0 || arrays_used > 6 {
            return Ok(());
        }
        let alloc = Optimizer::new(agu).allocate_loop(&spec).expect("fits");
        let layout = MemoryLayout::contiguous(&spec, 0x1000, 0x100);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .expect("emits");

        let mut slack_body: Vec<AddressInstr> = Vec::new();
        for instr in program.body() {
            match *instr {
                AddressInstr::Use {
                    reg,
                    position,
                    update: Update::Auto { delta },
                } if delta != 0 => {
                    // Free update → USE + explicit ADDA (possibly split).
                    slack_body.push(AddressInstr::Use {
                        reg,
                        position,
                        update: Update::None,
                    });
                    if split != 0 && split != delta {
                        slack_body.push(AddressInstr::Adda { reg, delta: split });
                        slack_body.push(AddressInstr::Adda {
                            reg,
                            delta: delta - split,
                        });
                    } else {
                        slack_body.push(AddressInstr::Adda { reg, delta });
                    }
                    slack_body.push(AddressInstr::Adda { reg, delta: 0 });
                }
                other => slack_body.push(other),
            }
        }
        let slack = AddressProgram::new(
            program.prologue().to_vec(),
            slack_body,
            program.address_registers(),
            program.modify_values().to_vec(),
        );
        // A slack machine with a huge modify range would hide nothing;
        // verify against the true machine. The slack program's explicit
        // ADDAs are machine-independent, so it still runs on `agu`.
        let trace = Trace::capture(&spec, &layout, 6);
        let slack_report = sim::run(&slack, &trace, &agu).expect("slack verifies");
        let (optimized, stats) = peephole::optimize(&slack, &agu);
        let opt_report = sim::run(&optimized, &trace, &agu).expect("optimized verifies");
        prop_assert!(
            opt_report.explicit_updates_per_iteration()
                <= slack_report.explicit_updates_per_iteration()
        );
        // Everything injected must be recoverable.
        prop_assert_eq!(
            opt_report.explicit_updates_per_iteration(),
            u64::from(alloc.total_cost()),
            "peephole must restore the original cost (stats {:?})",
            stats
        );
    }

    #[test]
    fn listings_are_parseable_text(spec in random_loop()) {
        let agu = AguSpec::new(6, 1).unwrap().with_modify_registers(1);
        let arrays_used = spec.patterns().len();
        if arrays_used == 0 || arrays_used > 6 {
            return Ok(());
        }
        let alloc = Optimizer::new(agu).allocate_loop(&spec).expect("fits");
        let layout = MemoryLayout::contiguous(&spec, 0, 0x100);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .expect("emits");
        let listing = program.to_string();
        prop_assert!(listing.contains("; prologue"));
        prop_assert!(listing.contains("; loop body"));
        // Every USE line names a register and an access label.
        for line in listing.lines().filter(|l| l.contains("USE")) {
            prop_assert!(line.contains("*AR"), "line: {line}");
            prop_assert!(line.contains("; a_"), "line: {line}");
        }
    }
}
