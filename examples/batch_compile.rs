//! Batch compilation through the driver pipeline: a multi-loop DSL
//! program goes end to end (parse → allocate → codegen → simulate),
//! with the allocation cache absorbing repeated access-pattern shapes.
//!
//! Run with `cargo run --example batch_compile`.

use raco::driver::{Pipeline, PipelineConfig};
use raco::ir::AguSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small "DSP application": filtering, downmixing and an energy
    // reduction, written as loops back to back. Loops 2 and 3 reuse
    // loop 1's access-pattern shapes at different base offsets — the
    // case the allocation cache exists for.
    let source = "
        // stage 1: 3-tap smoothing
        for (i = 1; i < 255; i++) {
            y[i] = x[i - 1] + x[i] + x[i + 1];
        }
        // stage 2: same shape, different arrays and offsets
        for (j = 5; j < 250; j++) {
            z[j] = y[j + 4] + y[j + 5] + y[j + 6];
        }
        // stage 3: interleaved complex downmix
        for (k = 0; k < 128; k++) {
            m[2*k]     = z[2*k] + z[2*k + 1];
            m[2*k + 1] = z[2*k] - z[2*k + 1];
        }
        // stage 4: energy
        for (n = 0; n < 256; n++) {
            acc += m[n] * m[n];
        }
    ";

    let agu = AguSpec::new(4, 1)?;
    let mut config = PipelineConfig::new(agu);
    config.listings = true;
    let pipeline = Pipeline::with_config(config);

    let report = pipeline.compile_str("pipeline-demo", source)?;
    print!("{}", report.render_table());

    let unit = &report.units[0];
    if let Some(listing) = &unit.listing {
        println!("\n{listing}");
    }

    println!("machine-readable report:\n{}", report.to_json());

    // The same pipeline instance keeps its cache: compiling the unit
    // again is almost free.
    let again = pipeline.compile_str("pipeline-demo (warm)", source)?;
    println!(
        "warm re-run: {} loop(s), cache hit rate {:.0}%",
        again.loop_count(),
        again.cache.hit_rate() * 100.0
    );
    Ok(())
}
