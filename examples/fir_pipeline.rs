//! The workload the paper's introduction motivates: an FIR filter whose
//! array addressing is moved entirely into the AGU.
//!
//! Compares three compilation models on an 8-tap FIR — explicit
//! addressing ("regular C compiler"), naive per-array chaining, and the
//! paper's two-phase allocation — then shows the optimized assembly.
//!
//! Run with: `cargo run --example fir_pipeline`

use raco::agu::codegen::CodeGenerator;
use raco::agu::metrics::{improvement_percent, ProgramMetrics};
use raco::agu::sim;
use raco::core::Optimizer;
use raco::graph::PathCover;
use raco::ir::{AguSpec, MemoryLayout, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = raco::kernels::fir(8);
    let spec = kernel.spec();
    println!("kernel: {} — {}\n", kernel.name(), kernel.description());
    println!("{}\n", kernel.source());

    let iterations = 256;
    let agu = AguSpec::new(4, 1)?;

    // Model 1: explicit addressing, two instructions per access.
    let explicit = ProgramMetrics::explicit_addressing(spec.len());

    // Model 2: naive chaining, one register per array in program order.
    let chain_cost: u64 = spec
        .patterns()
        .iter()
        .map(|p| {
            let dm = raco::graph::DistanceModel::new(p, agu.modify_range());
            u64::from(PathCover::single_chain(p.len()).total_cost(&dm, true))
        })
        .sum();
    let chain =
        ProgramMetrics::synthetic(spec.patterns().len() as u64, chain_cost, spec.len() as u64);

    // Model 3: the paper's allocator, emitted and verified.
    let alloc = Optimizer::new(agu).allocate_loop(spec)?;
    let layout = MemoryLayout::contiguous(spec, 0x2000, 0x400);
    let program = CodeGenerator::new(agu).generate(spec, &alloc, &layout)?;
    let trace = Trace::capture(spec, &layout, iterations);
    let report = sim::run(&program, &trace, &agu)?;
    let optimized = ProgramMetrics::of(&program);

    let compute = kernel.compute_ops();
    println!(
        "{:<22} {:>12} {:>14}",
        "model", "code words", "total cycles"
    );
    for (name, m) in [
        ("explicit addressing", explicit),
        ("naive chaining", chain),
        ("two-phase optimized", optimized),
    ] {
        println!(
            "{name:<22} {:>12} {:>14}",
            m.code_words(compute),
            m.cycles(compute, iterations)
        );
    }
    println!(
        "\noptimized vs explicit: code size -{:.1} %, speed -{:.1} %",
        improvement_percent(explicit.code_words(compute), optimized.code_words(compute)),
        improvement_percent(
            explicit.cycles(compute, iterations),
            optimized.cycles(compute, iterations)
        ),
    );
    println!(
        "simulation: {} accesses verified, {} explicit update(s)/iteration ✓\n",
        report.accesses_checked(),
        report.explicit_updates_per_iteration()
    );
    println!("{program}");
    Ok(())
}
