//! Quickstart: optimize the paper's running example.
//!
//! Run with: `cargo run --example quickstart`

use raco::core::Optimizer;
use raco::ir::{examples, pretty, AguSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The example loop from Section 2 of the paper: seven accesses to
    // array A with offsets 1, 0, 2, -1, 1, 0, -2.
    let spec = examples::paper_loop();
    println!("{}", pretty::print_access_listing(&spec));

    let pattern = &spec.patterns()[0];

    // An AGU with auto-modify range M = 1 and K = 2 address registers.
    let agu = AguSpec::new(2, 1)?;
    let allocation = Optimizer::new(agu).allocate(pattern);

    // The report shows both phases, every merge and the register paths.
    println!("{}", allocation.report());
    Ok(())
}
