//! The complementary scalar side (the paper's refs [4, 5]): simple and
//! general offset assignment for the scalar temporaries of a code block.
//!
//! Run with: `cargo run --example offset_assignment`

use raco::oa::{exhaustive, goa, soa, AccessSequence, StackLayout, VarId};

fn main() {
    // The access sequence of an imaginary expression block.
    let names = ["a", "b", "c", "a", "d", "b", "a", "c", "d", "b", "a", "d"];
    let (seq, table) = AccessSequence::from_names(&names);
    println!("access sequence: {}", names.join(" "));
    println!("variables: {}\n", table.join(", "));

    let show = |label: &str, layout: &StackLayout| {
        let mut slots: Vec<(usize, &str)> = table
            .iter()
            .enumerate()
            .map(|(v, name)| (layout.offset(VarId(v as u32)), name.as_str()))
            .collect();
        slots.sort_unstable();
        let frame: Vec<&str> = slots.into_iter().map(|(_, n)| n).collect();
        println!(
            "{label:<18} frame [{}]  cost {}",
            frame.join(" "),
            layout.cost(&seq, 1)
        );
    };

    show("first-use order", &StackLayout::first_use(&seq));
    show("Liao SOA", &soa::liao(&seq));
    let (optimal, cost) = exhaustive::optimal_soa(&seq);
    show("optimal (oracle)", &optimal);
    assert_eq!(cost, optimal.cost(&seq, 1));

    println!("\nGOA with k address registers:");
    for k in 1..=3 {
        let solution = goa::run(&seq, k);
        let groups: Vec<String> = (0..k)
            .map(|r| {
                let members: Vec<&str> = table
                    .iter()
                    .enumerate()
                    .filter(|(v, _)| solution.register_of(VarId(*v as u32)) == r)
                    .map(|(_, n)| n.as_str())
                    .collect();
                format!("AR{r}{{{}}}", members.join(","))
            })
            .collect();
        println!(
            "  k = {k}: cost {:<2} {}",
            solution.cost(),
            groups.join(" ")
        );
    }
}
