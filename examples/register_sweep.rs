//! How the addressing cost falls as registers are added.
//!
//! Sweeps the register count for the paper example and two kernels, using
//! the cost-curve API (one merge trajectory per pattern — the whole sweep
//! is a single allocation).
//!
//! Run with: `cargo run --example register_sweep`

use raco::core::Optimizer;
use raco::ir::AguSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let agu = AguSpec::new(8, 1)?;
    let optimizer = Optimizer::new(agu);

    let mut rows: Vec<(String, Vec<u32>)> = Vec::new();
    let paper = raco::ir::examples::paper_loop();
    rows.push((
        "paper_example/A".into(),
        optimizer.cost_curve(&paper.patterns()[0], 8),
    ));
    for kernel in [raco::kernels::fir(8), raco::kernels::biquad()] {
        for pattern in kernel.spec().patterns() {
            rows.push((
                format!("{}/{}", kernel.name(), pattern.array_name()),
                optimizer.cost_curve(&pattern, 8),
            ));
        }
    }

    println!("unit-cost address computations per iteration, by register count K\n");
    print!("{:<24}", "pattern");
    for k in 1..=8 {
        print!(" K={k:<2}");
    }
    println!();
    for (name, curve) in &rows {
        print!("{name:<24}");
        for cost in curve {
            print!(" {cost:<4}");
        }
        println!();
    }
    println!(
        "\nEvery curve is non-increasing and hits 0 at the pattern's K̃ — the\n\
         number of virtual registers from Phase 1 of the paper."
    );
    Ok(())
}
