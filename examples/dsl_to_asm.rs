//! From C-like source to verified AGU assembly.
//!
//! Parses a loop written in the `raco-ir` DSL, allocates address
//! registers with the paper's two-phase algorithm, emits the address
//! program, and proves it correct by simulating it against the reference
//! address trace.
//!
//! Run with: `cargo run --example dsl_to_asm`

use raco::agu::codegen::CodeGenerator;
use raco::agu::sim;
use raco::core::Optimizer;
use raco::ir::{dsl, AguSpec, MemoryLayout, Trace};

const SOURCE: &str = "
for (i = 1; i < 255; i++) {
    // A symmetric 3-tap smoother with distinct in/out arrays.
    y[i] = c0 * x[i - 1] + c1 * x[i] + c0 * x[i + 1];
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("source:\n{SOURCE}\n");
    let spec = dsl::parse_loop(SOURCE)?;

    let agu = AguSpec::new(3, 1)?;
    let allocation = Optimizer::new(agu).allocate_loop(&spec)?;
    println!(
        "allocation: {} register(s), {} unit-cost update(s)/iteration",
        allocation.total_registers(),
        allocation.total_cost()
    );

    let layout = MemoryLayout::contiguous(&spec, 0x0400, 0x0100);
    let program = CodeGenerator::new(agu).generate(&spec, &allocation, &layout)?;
    println!("\n{program}");

    // Prove the program serves every access of 100 iterations correctly.
    let trace = Trace::capture(&spec, &layout, 100);
    let report = sim::run(&program, &trace, &agu)?;
    println!(
        "simulation: {} iterations, {} accesses checked, {} explicit update(s)/iteration ✓",
        report.iterations(),
        report.accesses_checked(),
        report.explicit_updates_per_iteration()
    );
    Ok(())
}
