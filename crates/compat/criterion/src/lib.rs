//! Offline shim for the subset of `criterion 0.5` used by this workspace.
//!
//! Real wall-clock measurement with a compact median/min/max report per
//! benchmark — no plots, no statistical regression analysis. Honors the
//! `--test` flag (each benchmark runs exactly one iteration) so the
//! bench binaries stay usable as smoke tests, and a positional filter
//! argument like upstream criterion.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id that is only a parameter rendering.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives iteration of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Calls `routine` repeatedly, measuring each call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: `sample_size` samples or until the time budget
        // runs out, whichever is later bounded by 2x the budget.
        let budget_start = Instant::now();
        let hard_cap = self.measurement_time * 2;
        for i in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > self.measurement_time && i >= 9 {
                break;
            }
            if budget_start.elapsed() > hard_cap {
                break;
            }
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Target measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R>(&mut self, id: impl fmt::Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            test_mode: self.criterion.test_mode,
        };
        routine(&mut bencher);
        report(
            &full,
            &bencher.samples,
            self.throughput,
            self.criterion.test_mode,
        );
        self
    }

    /// Benchmarks `routine` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (upstream flushes reports here; the shim reports
    /// eagerly, so this only exists for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>, test_mode: bool) {
    if test_mode {
        println!("{name}: test mode, 1 iteration — ok");
        return;
    }
    if samples.is_empty() {
        println!("{name}: no samples collected");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  thrpt: {:.1} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  thrpt: {:.1} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name}: time [{} {} {}] ({} samples){rate}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(max),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Benchmark driver (shim): collects groups and runs them immediately.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_flag = false;
        let mut bench_flag = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "-t" => test_flag = true,
                "--bench" => bench_flag = true,
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_owned()),
            }
        }
        // Upstream semantics: `cargo bench` passes `--bench` and runs
        // real measurements; `cargo test --benches` (and running the
        // binary bare) executes each benchmark once as a smoke test.
        Criterion {
            filter,
            test_mode: test_flag || !bench_flag,
        }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            throughput: None,
            criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R>(&mut self, id: impl fmt::Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        if self.matches(&name) {
            let mut bencher = Bencher {
                samples: Vec::new(),
                sample_size: 100,
                measurement_time: Duration::from_secs(5),
                warm_up_time: Duration::from_secs(3),
                test_mode: self.test_mode,
            };
            routine(&mut bencher);
            report(&name, &bencher.samples, None, self.test_mode);
        }
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("fir_8").to_string(), "fir_8");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
