//! Offline shim for the subset of `proptest 1.x` used by this workspace.
//!
//! Implements random **generation** (no shrinking): the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`,
//! integer-range and tuple and collection strategies, `prop_oneof!`,
//! [`strategy::Just`], `prop::bool::ANY`, [`ProptestConfig`] and the
//! [`proptest!`] / `prop_assert*` macros. A failing case panics with its
//! seed and case index instead of shrinking.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng, SeedableRng};

/// Test-case failure carried by `prop_assert!` and friends.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion / rejected case with an explanatory message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (the `with_cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::*;

    /// A generator of random values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking;
    /// `new_value` directly produces a value.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, runner: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f`
        /// returns for it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Recursive strategies: applies `recurse` up to `depth` times
        /// to the leaf strategy. `desired_size` and `expected_branch`
        /// are accepted for API compatibility and unused.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut current = self.boxed();
            for _ in 0..depth {
                current = recurse(current).boxed();
            }
            current
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn ObjectSafeStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Object-safe core of [`Strategy`](super::strategy::Strategy).
    trait ObjectSafeStrategy<T> {
        fn new_value_dyn(&self, runner: &mut TestRng) -> T;
    }

    impl<S: Strategy> ObjectSafeStrategy<S::Value> for S {
        fn new_value_dyn(&self, runner: &mut TestRng) -> S::Value {
            self.new_value(runner)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRng) -> T {
            self.inner.new_value_dyn(runner)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _runner: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(super) inner: S,
        pub(super) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, runner: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(super) inner: S,
        pub(super) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, runner: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(runner)).new_value(runner)
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    #[derive(Debug, Clone)]
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRng) -> T {
            let idx = runner.gen_range(0..self.options.len());
            self.options[idx].new_value(runner)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRng) -> $t {
                    runner.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRng) -> $t {
                    runner.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, runner: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(runner),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// The `prop::…` namespace (`collection`, `bool`, `num`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::strategy::Strategy;
        use super::super::TestRng;
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Length ranges accepted by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for `Vec`s with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, runner: &mut TestRng) -> Vec<S::Value> {
                let len = runner.gen_range(self.size.lo..=self.size.hi);
                (0..len).map(|_| self.element.new_value(runner)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::strategy::Strategy;
        use super::super::TestRng;
        use rand::Rng;

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The canonical boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn new_value(&self, runner: &mut TestRng) -> bool {
                runner.gen::<bool>()
            }
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Environment variable overriding every property's case count.
pub const CASES_ENV: &str = "RACO_PROPTEST_CASES";

/// Environment variable replaying one specific case seed (as printed
/// by a failure) instead of the whole stream.
pub const SEED_ENV: &str = "RACO_PROPTEST_SEED";

/// Effective case count: `RACO_PROPTEST_CASES` overrides the
/// per-property config when set, so one knob turns every harness in
/// the workspace into a quick smoke (`RACO_PROPTEST_CASES=16`) or a
/// long soak (`RACO_PROPTEST_CASES=65536`) without touching code.
fn effective_cases(config: &ProptestConfig) -> u32 {
    match std::env::var(CASES_ENV) {
        Ok(value) => value
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{CASES_ENV}=`{value}` is not a valid case count")),
        Err(_) => config.cases,
    }
}

fn parse_seed(value: &str) -> u64 {
    let trimmed = value.trim();
    let parsed = match trimmed.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => trimmed.parse(),
    };
    parsed.unwrap_or_else(|_| panic!("{SEED_ENV}=`{value}` is not a valid seed"))
}

/// Runs one property: `cases` random cases from a fixed seed; panics on
/// the first failing case printing the exact per-case seed, which
/// `RACO_PROPTEST_SEED=<seed>` replays as a single case.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    if let Ok(value) = std::env::var(SEED_ENV) {
        let case_seed = parse_seed(&value);
        let mut rng = TestRng::seed_from_u64(case_seed);
        if let Err(e) = case(&mut rng) {
            panic!("proptest property `{name}` failed replaying seed {case_seed:#x}: {e}");
        }
        return;
    }
    // Derive the seed from the property name so distinct properties
    // explore distinct streams, deterministically across runs.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let cases = effective_cases(config);
    for case_index in 0..cases {
        let case_seed = seed.wrapping_add(u64::from(case_index));
        let mut rng = TestRng::seed_from_u64(case_seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest property `{name}` failed at case {case_index}/{cases} \
                 (case seed {case_seed:#x}): {e}\n\
                 reproduce this exact case with {SEED_ENV}={case_seed:#x}"
            );
        }
    }
}

/// Defines proptest-style property tests (generation only, no shrinking).
#[macro_export]
macro_rules! proptest {
    // With a leading #![proptest_config(...)] attribute.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            // Attributes (including the caller's `#[test]`, `#[ignore]`,
            // `#[cfg(...)]`) pass through exactly as upstream proptest
            // emits them; the macro adds none of its own.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(
                    stringify!($name),
                    &config,
                    |rng: &mut $crate::TestRng| -> $crate::TestCaseResult {
                        use $crate::strategy::Strategy as _;
                        $(let $pat = ($strat).new_value(rng);)+
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    // Without a config attribute: default configuration.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        use $crate::strategy::Strategy as _;
        $crate::strategy::Union::new(vec![$(($strat).boxed()),+])
    }};
}

/// `assert!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` that fails the current case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn union_and_ranges_generate_in_bounds() {
        let strat = prop_oneof![Just(1i64), Just(5i64)];
        crate::run_property("union", &ProptestConfig::with_cases(64), |rng| {
            let v = strat.new_value(rng);
            prop_assert!(v == 1 || v == 5);
            Ok(())
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vectors_have_requested_lengths(v in prop::collection::vec(-3i64..=3, 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|x| (-3..=3).contains(x)));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u32..4, 0u32..4), c in (0i64..10).prop_map(|x| x * 2)) {
            prop_assert!(a < 4 && b < 4);
            prop_assert_eq!(c % 2, 0);
        }

        #[test]
        fn flat_map_threads_values(len in (1usize..4).prop_flat_map(|n| prop::collection::vec(0u32..2, n..=n).prop_map(move |v| (n, v.len())))) {
            let (want, got) = len;
            prop_assert_eq!(want, got);
        }
    }

    /// Serializes the env-var tests: environment mutation is process
    /// global and the test harness runs threads in parallel.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn cases_env_overrides_the_config() {
        let _guard = env_lock();
        std::env::set_var(super::CASES_ENV, "7");
        let mut ran = 0u32;
        crate::run_property("env_cases", &ProptestConfig::with_cases(1000), |_rng| {
            ran += 1;
            Ok(())
        });
        std::env::remove_var(super::CASES_ENV);
        assert_eq!(ran, 7, "{} must override config.cases", super::CASES_ENV);
    }

    #[test]
    fn seed_env_replays_exactly_one_case() {
        let _guard = env_lock();
        std::env::set_var(super::SEED_ENV, "0xdead");
        let mut values = Vec::new();
        crate::run_property("env_seed", &ProptestConfig::with_cases(1000), |rng| {
            values.push(rng.gen::<u64>());
            Ok(())
        });
        std::env::remove_var(super::SEED_ENV);
        assert_eq!(values.len(), 1, "seed replay runs a single case");
        let mut replay = TestRng::seed_from_u64(0xdead);
        assert_eq!(values[0], replay.gen::<u64>(), "replay uses the given seed");
    }

    #[test]
    fn failures_print_the_reproducing_seed() {
        let _guard = env_lock();
        std::env::remove_var(super::CASES_ENV);
        std::env::remove_var(super::SEED_ENV);
        let outcome = std::panic::catch_unwind(|| {
            crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_rng| {
                Err(TestCaseError::fail("forced"))
            });
        });
        let payload = outcome.expect_err("failing property panics");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("panic payload is a formatted message");
        assert!(
            message.contains("case seed 0x"),
            "failure must print its case seed: {message}"
        );
        assert!(
            message.contains(&format!("{}=0x", super::SEED_ENV)),
            "failure must say how to replay: {message}"
        );
    }
}
