//! Offline shim for the subset of `rand 0.8` used by this workspace.
//!
//! Provides [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`] and the
//! [`Rng`] extension trait with `gen` / `gen_range`. Sequences are
//! deterministic per seed (xoshiro256** seeded via splitmix64) but are
//! not bit-compatible with upstream `rand`; every caller in this
//! workspace only relies on seeded determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Integer types uniformly sampleable from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// The predecessor of `v` (used to turn exclusive bounds inclusive).
    fn prev(v: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128) - (low as i128) + 1;
                // Modulo bias is < 2^-64 for every span used in this
                // workspace; determinism, not perfection, is the goal.
                let r = (rng.next_u64() as i128) % span;
                ((low as i128) + r) as $t
            }
            fn prev(v: Self) -> Self {
                v - 1
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, T::prev(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods over any [`RngCore`] (the `rand::Rng` subset).
pub trait Rng: RngCore {
    /// Samples a value of type `T` (only `f64`, `bool`, `u32`, `u64`
    /// are provided by the shim).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast RNG: xoshiro256** with splitmix64 seeding.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-6i64..=6);
            assert!((-6..=6).contains(&v));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
