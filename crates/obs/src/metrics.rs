//! Lock-free scalar metrics: monotonic counters and signed gauges.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations use relaxed atomics: counters are statistics, not
/// synchronization primitives, and readers tolerate being a few events
/// behind a concurrent writer.
///
/// ```
/// let c = raco_obs::Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed gauge for instantaneous levels (in-flight requests, queue
/// depth). Unlike [`Counter`] it can move in both directions.
///
/// ```
/// let g = raco_obs::Gauge::new();
/// g.inc();
/// g.inc();
/// g.dec();
/// assert_eq!(g.get(), 1);
/// g.set(-3);
/// assert_eq!(g.get(), -3);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Adds one to the gauge.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one from the gauge.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (which may be negative) to the gauge.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the gauge with `n`.
    pub fn set(&self, n: i64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Returns the current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 11);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.dec();
        assert_eq!(g.get(), 4);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }
}
