//! RAII span timers.

use std::sync::Arc;
use std::time::Instant;

use crate::histogram::Histogram;

/// An RAII timer that records elapsed wall time (nanoseconds) into a
/// histogram when dropped.
///
/// Created by [`Registry::time`](crate::Registry::time) or the
/// [`span!`](crate::span) macro. Bind it to a named variable — `let _span
/// = ...` — so the span covers the intended scope (a bare `let _ = ...`
/// drops immediately).
///
/// ```
/// let registry = raco_obs::Registry::new();
/// {
///     let _span = registry.time("stage");
/// }
/// assert_eq!(registry.histogram("stage").snapshot().count, 1);
/// ```
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Arc<Histogram>,
    start: Instant,
    recorded: bool,
}

impl SpanTimer {
    /// Starts a span that records into `histogram` on drop. Hot paths
    /// that cache their histogram handle (e.g. in a `OnceLock`) use
    /// this directly to skip the per-call registry lookup of
    /// [`Registry::time`](crate::Registry::time).
    pub fn new(histogram: Arc<Histogram>) -> Self {
        Self {
            histogram,
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Stops the span early and returns the recorded duration in
    /// nanoseconds. Dropping after `stop` records nothing further.
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        if self.recorded {
            return 0;
        }
        self.recorded = true;
        let elapsed = self.start.elapsed().as_nanos() as u64;
        self.histogram.record(elapsed);
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let histogram = Arc::new(Histogram::new());
        {
            let _span = SpanTimer::new(Arc::clone(&histogram));
        }
        assert_eq!(histogram.snapshot().count, 1);
    }

    #[test]
    fn stop_records_and_defuses_drop() {
        let histogram = Arc::new(Histogram::new());
        let span = SpanTimer::new(Arc::clone(&histogram));
        std::thread::sleep(std::time::Duration::from_millis(1));
        let elapsed = span.stop();
        assert!(elapsed >= 1_000_000, "{elapsed}");
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 1);
        assert_eq!(snapshot.sum, snapshot.max);
    }

    #[test]
    fn nested_spans_each_record() {
        let registry = crate::Registry::new();
        {
            let _outer = registry.time("outer");
            {
                let _inner = registry.time("inner");
            }
        }
        assert_eq!(registry.histogram("outer").snapshot().count, 1);
        assert_eq!(registry.histogram("inner").snapshot().count, 1);
        // The outer span strictly contains the inner one.
        assert!(
            registry.histogram("outer").snapshot().sum
                >= registry.histogram("inner").snapshot().sum
        );
    }
}
