//! Fixed log2-bucket histogram with exact count/sum and quantile
//! estimation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 holds the value 0, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i)`, with bucket 64 absorbing everything
/// from `2^63` up to `u64::MAX` (saturation bucket).
pub const BUCKETS: usize = 65;

/// Returns the bucket index for a recorded value.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive value range `[lo, hi]` covered by a bucket.
fn bucket_range(index: usize) -> (u64, u64) {
    match index {
        0 => (0, 0),
        64 => (1u64 << 63, u64::MAX),
        i => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// A lock-free latency histogram.
///
/// Values (nanoseconds by convention) land in one of [`BUCKETS`]
/// power-of-two buckets. `count` and `sum` are exact; quantiles are
/// estimated by walking the cumulative bucket counts and linearly
/// interpolating inside the matched bucket, so the estimate is always
/// within the matched bucket's `[lo, hi]` range.
///
/// All updates use relaxed atomics: a concurrent snapshot may observe a
/// recording partially applied (e.g. count without sum), which is
/// acceptable for statistics and avoids locking the hot path.
///
/// ```
/// let h = raco_obs::Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// let s = h.snapshot();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.sum, 106);
/// assert_eq!(s.max, 100);
/// assert!(s.quantile(0.5) <= 100);
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. `sum` wraps on overflow (u64 nanoseconds
    /// overflow after ~584 years of accumulated time).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records the elapsed time of `f` in nanoseconds and returns its
    /// result.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record(start.elapsed().as_nanos() as u64);
        out
    }

    /// Folds another histogram's observations into this one.
    pub fn merge_from(&self, other: &Histogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Folds an already-taken snapshot into this histogram — callers
    /// that need both a snapshot and a merge (batch finish does) pay
    /// for the source's atomic loads once.
    pub fn merge_snapshot(&self, snapshot: &HistogramSnapshot) {
        if snapshot.count == 0 {
            return;
        }
        for (mine, &n) in self.buckets.iter().zip(snapshot.buckets.iter()) {
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snapshot.count, Ordering::Relaxed);
        self.sum.fetch_add(snapshot.sum, Ordering::Relaxed);
        self.max.fetch_max(snapshot.max, Ordering::Relaxed);
    }

    /// Exact number of recorded observations: one relaxed load, so
    /// emptiness checks skip the full [`snapshot`](Self::snapshot).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact (wrapping) sum of recorded values, as one relaxed load.
    ///
    /// Together with [`count`](Self::count) and
    /// [`max_value`](Self::max_value) this lets a quiesced histogram
    /// with ≤ 2 observations be reconstructed exactly — the two values
    /// are `max` and `sum - max` — without walking the buckets.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value, as one relaxed load.
    pub fn max_value(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Returns a point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Estimated value at quantile `q` (see [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// An owned, immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Exact number of recorded observations.
    pub count: u64,
    /// Exact sum of recorded values (wrapping).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket observation counts.
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated value at quantile `q` (clamped to `[0, 1]`).
    ///
    /// Finds the bucket containing the `ceil(q * count)`-th smallest
    /// observation and linearly interpolates across that bucket's value
    /// range by the observation's rank within the bucket. Returns 0 for
    /// an empty histogram. The estimate never exceeds `max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let (lo, hi) = bucket_range(index);
                let rank = target - seen; // 1-based rank within this bucket
                let fraction = if n <= 1 {
                    1.0
                } else {
                    (rank - 1) as f64 / (n - 1) as f64
                };
                // `(hi - lo) as f64` can round up to 2^63 in the top
                // bucket, so the offset add must saturate.
                let offset = ((hi - lo) as f64 * fraction) as u64;
                return lo.saturating_add(offset).min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Estimates several quantiles in one pass over the buckets.
    ///
    /// `qs` must be ascending; each output equals what
    /// [`quantile`](Self::quantile) would return for the same `q`.
    /// Summaries that want p50/p95/p99 together use this to walk the
    /// bucket array once instead of three times.
    pub fn quantiles<const N: usize>(&self, qs: [f64; N]) -> [u64; N] {
        debug_assert!(qs.windows(2).all(|w| w[0] <= w[1]), "qs must be ascending");
        let mut out = [0u64; N];
        if self.count == 0 {
            return out;
        }
        let targets = qs.map(|q| {
            let q = q.clamp(0.0, 1.0);
            ((q * self.count as f64).ceil() as u64).clamp(1, self.count)
        });
        let mut seen = 0u64;
        let mut next = 0usize;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            while next < N && seen + n >= targets[next] {
                let (lo, hi) = bucket_range(index);
                let rank = targets[next] - seen;
                let fraction = if n <= 1 {
                    1.0
                } else {
                    (rank - 1) as f64 / (n - 1) as f64
                };
                let offset = ((hi - lo) as f64 * fraction) as u64;
                out[next] = lo.saturating_add(offset).min(self.max);
                next += 1;
            }
            seen += n;
            if next == N {
                return out;
            }
        }
        while next < N {
            out[next] = self.max;
            next += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_ranges_cover_u64_without_gaps() {
        assert_eq!(bucket_range(0), (0, 0));
        let mut next = 1u64;
        for index in 1..BUCKETS {
            let (lo, hi) = bucket_range(index);
            assert_eq!(
                lo, next,
                "bucket {index} must start where the previous ended"
            );
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), index);
            assert_eq!(bucket_index(hi), index);
            next = hi.wrapping_add(1);
        }
        assert_eq!(next, 0, "top bucket must end at u64::MAX");
    }

    #[test]
    fn count_and_sum_are_exact() {
        let h = Histogram::new();
        let values = [0u64, 1, 7, 8, 1000, 65_536, 123_456_789];
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, values.len() as u64);
        assert_eq!(s.sum, values.iter().sum::<u64>());
        assert_eq!(s.max, 123_456_789);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p95 = s.quantile(0.95);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= s.max);
        // The p50 of 1..=1000 lies in bucket [512, 1023]; interpolation
        // should keep it near the true median.
        assert!((400..=700).contains(&p50), "{p50}");
        assert_eq!(s.quantile(0.0), 1);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_of_uniform_value_is_that_value() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(42);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let estimate = s.quantile(q);
            let (lo, hi) = bucket_range(bucket_index(42));
            assert!(
                estimate >= lo && estimate <= hi.min(s.max),
                "{q} -> {estimate}"
            );
        }
        assert_eq!(s.quantile(1.0), 42);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn saturation_bucket_holds_extremes() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.quantile(0.99), u64::MAX);
    }

    #[test]
    fn merge_preserves_totals() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 10, 100] {
            a.record(v);
        }
        for v in [5u64, 50, 500, 5000] {
            b.record(v);
        }
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 111 + 5555);
        assert_eq!(s.max, 5000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 7);
    }

    #[test]
    fn merge_snapshot_matches_merge_from() {
        let source = Histogram::new();
        for v in [3u64, 300, 30_000] {
            source.record(v);
        }
        let via_histogram = Histogram::new();
        via_histogram.merge_from(&source);
        let via_snapshot = Histogram::new();
        via_snapshot.merge_snapshot(&source.snapshot());
        assert_eq!(via_histogram.snapshot(), via_snapshot.snapshot());
    }

    #[test]
    fn batched_quantiles_match_individual_calls() {
        let h = Histogram::new();
        for v in (0..500u64).map(|i| i * i % 7919) {
            h.record(v);
        }
        let s = h.snapshot();
        let qs = [0.0, 0.25, 0.50, 0.95, 0.99, 1.0];
        let batched = s.quantiles(qs);
        for (q, got) in qs.iter().zip(batched) {
            assert_eq!(got, s.quantile(*q), "q={q}");
        }
        assert_eq!(Histogram::new().snapshot().quantiles([0.5, 0.99]), [0, 0]);
    }

    #[test]
    fn time_records_one_observation() {
        let h = Histogram::new();
        let out = h.time(|| 2 + 2);
        assert_eq!(out, 4);
        assert_eq!(h.snapshot().count, 1);
    }
}
