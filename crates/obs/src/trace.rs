//! Optional structured trace sink: captures a per-compile span tree.

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed (or still-open) span captured by a [`TraceSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name, e.g. `"phase2"`.
    pub name: String,
    /// Index of the parent span within the sink, or `None` for roots.
    pub parent: Option<usize>,
    /// Start offset from the sink's creation, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds; `None` while the span is still open.
    pub duration_ns: Option<u64>,
}

/// Collects a tree of timed spans for a single unit of work.
///
/// Unlike the registry histograms (which aggregate across compiles), a
/// sink is created per compile and captures *which* spans ran, their
/// nesting, and their individual durations. Parent links are explicit
/// span ids rather than thread-local ambient state because pipeline work
/// fans out across a worker pool: a child span may close on a different
/// thread than its parent.
///
/// ```
/// let sink = std::sync::Arc::new(raco_obs::TraceSink::new());
/// let compile = sink.span("compile", None);
/// {
///     let _phase1 = sink.span("phase1", Some(compile.id()));
/// }
/// drop(compile);
/// let records = sink.records();
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[1].parent, Some(0));
/// assert!(records.iter().all(|r| r.duration_ns.is_some()));
/// ```
#[derive(Debug, Default)]
pub struct TraceSink {
    epoch: Option<Instant>,
    spans: Mutex<Vec<SpanRecord>>,
}

impl TraceSink {
    /// Creates an empty sink whose clock starts now.
    pub fn new() -> Self {
        Self {
            epoch: Some(Instant::now()),
            spans: Mutex::new(Vec::new()),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch
            .map_or(0, |epoch| epoch.elapsed().as_nanos() as u64)
    }

    /// Opens a span and returns its id. Prefer [`span`](Self::span) for
    /// RAII closing; use `begin`/[`end`](Self::end) when the span's
    /// lifetime cannot follow a scope.
    pub fn begin(&self, name: &str, parent: Option<usize>) -> usize {
        let mut spans = self.spans.lock().expect("trace sink poisoned");
        spans.push(SpanRecord {
            name: name.to_string(),
            parent,
            start_ns: self.now_ns(),
            duration_ns: None,
        });
        spans.len() - 1
    }

    /// Closes the span with the given id. Closing an already-closed or
    /// unknown id is a no-op.
    pub fn end(&self, id: usize) {
        let now = self.now_ns();
        let mut spans = self.spans.lock().expect("trace sink poisoned");
        if let Some(span) = spans.get_mut(id) {
            if span.duration_ns.is_none() {
                span.duration_ns = Some(now.saturating_sub(span.start_ns));
            }
        }
    }

    /// Opens an RAII span that closes when the guard drops.
    pub fn span(self: &Arc<Self>, name: &str, parent: Option<usize>) -> TraceSpan {
        TraceSpan {
            sink: Arc::clone(self),
            id: self.begin(name, parent),
        }
    }

    /// Returns all captured spans in open order.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("trace sink poisoned").clone()
    }
}

/// RAII guard for a span opened via [`TraceSink::span`].
#[derive(Debug)]
pub struct TraceSpan {
    sink: Arc<TraceSink>,
    id: usize,
}

impl TraceSpan {
    /// The span's id, usable as the `parent` of child spans.
    pub fn id(&self) -> usize {
        self.id
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        self.sink.end(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn captures_parent_child_tree() {
        let sink = Arc::new(TraceSink::new());
        let root = sink.span("compile", None);
        let phase1 = sink.span("phase1", Some(root.id()));
        drop(phase1);
        let phase2 = sink.span("phase2", Some(root.id()));
        drop(phase2);
        drop(root);

        let records = sink.records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "compile");
        assert_eq!(records[0].parent, None);
        assert_eq!(records[1].parent, Some(0));
        assert_eq!(records[2].parent, Some(0));
        // Children start no earlier than the root and all spans closed.
        assert!(records[1].start_ns >= records[0].start_ns);
        assert!(records.iter().all(|r| r.duration_ns.is_some()));
        // The root span contains the sum of its children.
        let children: u64 = records[1..].iter().map(|r| r.duration_ns.unwrap()).sum();
        assert!(records[0].duration_ns.unwrap() >= children);
    }

    #[test]
    fn end_is_idempotent_and_bounds_checked() {
        let sink = TraceSink::new();
        let id = sink.begin("once", None);
        sink.end(id);
        let first = sink.records()[0].duration_ns;
        sink.end(id);
        sink.end(999);
        assert_eq!(sink.records()[0].duration_ns, first);
    }

    #[test]
    fn spans_close_across_threads() {
        let sink = Arc::new(TraceSink::new());
        let root = sink.span("root", None);
        let root_id = root.id();
        let threads: Vec<_> = (0..4)
            .map(|worker| {
                let sink = Arc::clone(&sink);
                std::thread::spawn(move || {
                    let _child = sink.span(&format!("worker{worker}"), Some(root_id));
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        drop(root);
        let records = sink.records();
        assert_eq!(records.len(), 5);
        assert_eq!(
            records.iter().filter(|r| r.parent == Some(root_id)).count(),
            4
        );
    }
}
