//! Dependency-free observability primitives for the raco workspace.
//!
//! The crate provides four building blocks:
//!
//! * [`Counter`] / [`Gauge`] — lock-free monotonic counters and signed
//!   gauges backed by atomics.
//! * [`Histogram`] — a fixed log2-bucket latency histogram with exact
//!   `count`/`sum`/`max` and p50/p95/p99 estimation via linear
//!   interpolation inside the matched bucket.
//! * [`Registry`] — a named collection of the above. A process-wide
//!   instance is available through [`global()`]; per-component instances
//!   (e.g. one per server) are plain `Registry::new()` values.
//! * [`SpanTimer`] / [`span!`] / [`TraceSink`] — RAII timers that record
//!   elapsed wall time into a named histogram on drop, plus an optional
//!   structured sink that captures a parent/child span tree for a single
//!   compile.
//!
//! All durations are recorded in **nanoseconds**; presentation layers
//! convert to microseconds when rendering.
//!
//! # Example
//!
//! ```
//! let registry = raco_obs::Registry::new();
//! {
//!     let _span = raco_obs::span!(&registry, "phase2");
//!     // ... timed work ...
//! } // drop records the elapsed nanoseconds into histogram "phase2"
//! let snapshot = registry.histogram("phase2").snapshot();
//! assert_eq!(snapshot.count, 1);
//! assert!(snapshot.sum > 0);
//! ```

mod histogram;
mod metrics;
mod registry;
mod span;
mod trace;

pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::Registry;
pub use span::SpanTimer;
pub use trace::{SpanRecord, TraceSink, TraceSpan};

static GLOBAL: Registry = Registry::new();

/// The process-wide metrics registry.
///
/// Pipeline stages record here so that long-lived consumers (the serve
/// tier's `metrics` op, `--timings` tables) can read accumulated totals
/// without threading a registry handle through every call site.
///
/// ```
/// raco_obs::global().counter("doc.example").inc();
/// assert!(raco_obs::global().counter("doc.example").get() >= 1);
/// ```
pub fn global() -> &'static Registry {
    &GLOBAL
}

/// Starts a [`SpanTimer`] recording into a named histogram on drop.
///
/// With one argument the histogram is resolved in the [`global()`]
/// registry; with two, in the given registry.
///
/// ```
/// let registry = raco_obs::Registry::new();
/// let span = raco_obs::span!(&registry, "stage");
/// drop(span);
/// assert_eq!(registry.histogram("stage").snapshot().count, 1);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().time($name)
    };
    ($registry:expr, $name:expr) => {
        ($registry).time($name)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_is_shared() {
        super::global().counter("lib.shared").add(2);
        assert!(super::global().counter("lib.shared").get() >= 2);
    }

    #[test]
    fn span_macro_records_into_global() {
        {
            let _span = crate::span!("lib.span_macro");
        }
        assert!(super::global().histogram("lib.span_macro").snapshot().count >= 1);
    }
}
