//! Named metric registry.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metrics::{Counter, Gauge};
use crate::span::SpanTimer;

/// A named collection of counters, gauges, and histograms.
///
/// Lookups return `Arc` handles so call sites can resolve a metric once
/// and record through the atomic handle without touching the registry
/// lock again. Names are stored in `BTreeMap`s so enumeration order is
/// deterministic, which keeps rendered tables and JSON stable.
///
/// The registry is `Send + Sync`; the worker pool records into shared
/// handles concurrently.
///
/// ```
/// let registry = raco_obs::Registry::new();
/// let hits = registry.counter("cache.hits");
/// hits.inc();
/// assert_eq!(registry.counter("cache.hits").get(), 1); // same metric
/// ```
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn resolve<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("metric registry poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut writable = map.write().expect("metric registry poisoned");
    Arc::clone(writable.entry(name.to_string()).or_default())
}

fn enumerate<T, V>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    view: impl Fn(&T) -> V,
) -> Vec<(String, V)> {
    map.read()
        .expect("metric registry poisoned")
        .iter()
        .map(|(name, metric)| (name.clone(), view(metric)))
        .collect()
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Self {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Repeated lookups return handles to the same counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        resolve(&self.counters, name)
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        resolve(&self.gauges, name)
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        resolve(&self.histograms, name)
    }

    /// Starts a [`SpanTimer`] that records into histogram `name` when
    /// dropped.
    pub fn time(&self, name: &str) -> SpanTimer {
        SpanTimer::new(self.histogram(name))
    }

    /// All counters with their current values, in name order.
    pub fn counters(&self) -> Vec<(String, u64)> {
        enumerate(&self.counters, |c| c.get())
    }

    /// All gauges with their current levels, in name order.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        enumerate(&self.gauges, |g| g.get())
    }

    /// Snapshots of all histograms, in name order.
    pub fn histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        enumerate(&self.histograms, |h| h.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_dedupe_by_name() {
        let registry = Registry::new();
        let a = registry.histogram("x");
        let b = registry.histogram("x");
        assert!(Arc::ptr_eq(&a, &b));
        a.record(5);
        assert_eq!(b.snapshot().count, 1);
    }

    #[test]
    fn enumeration_is_name_ordered() {
        let registry = Registry::new();
        registry.counter("zulu").inc();
        registry.counter("alpha").inc();
        registry.counter("mike").inc();
        let names: Vec<_> = registry.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mike", "zulu"]);
    }

    #[test]
    fn registry_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Registry>();
    }

    #[test]
    fn concurrent_resolution_yields_one_metric() {
        let registry = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        registry.counter("contended").inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(registry.counter("contended").get(), 800);
        assert_eq!(registry.counters().len(), 1);
    }
}
