//! Phase 1: the minimum number of virtual registers `K̃`.
//!
//! Runs the exact branch-and-bound of `raco-graph` (the paper's ref \[3\])
//! and reports the zero-cost cover. When no zero-cost cover exists at all
//! (possible when the effective stride exceeds `M`) or the search budget
//! runs out, Phase 1 falls back to the relaxed matching cover — zero
//! intra-iteration cost, wrap steps paid — so that Phase 2 can still
//! proceed; the outcome records which case occurred.

use raco_graph::{bb, matching, BbOptions, DistanceModel, PathCover};

/// How Phase 1 obtained its cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Phase1Outcome {
    /// A zero-cost cover was found; `K̃` is its register count.
    /// `proved_minimal` is `false` only if the branch-and-bound budget ran
    /// out after finding a feasible but possibly non-minimal cover.
    ZeroCost {
        /// Whether minimality was proved.
        proved_minimal: bool,
    },
    /// No zero-cost cover exists (or was found within budget); the relaxed
    /// matching cover is used instead and wrap steps cost one instruction
    /// each.
    Relaxed,
}

/// The result of Phase 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase1Report {
    cover: PathCover,
    outcome: Phase1Outcome,
    lower_bound: usize,
    nodes: u64,
}

impl Phase1Report {
    /// Reassembles a report from its serialized parts — the inverse of
    /// the [`cover`](Self::cover)/[`outcome`](Self::outcome)/
    /// [`lower_bound`](Self::lower_bound)/[`nodes`](Self::nodes)
    /// accessors, used by snapshot decoders (`raco_driver::persist`)
    /// to rebuild cached allocations without re-running the search.
    pub fn from_parts(
        cover: PathCover,
        outcome: Phase1Outcome,
        lower_bound: usize,
        nodes: u64,
    ) -> Self {
        Phase1Report {
            cover,
            outcome,
            lower_bound,
            nodes,
        }
    }

    /// The Phase-1 cover (zero-cost if `outcome` is
    /// [`Phase1Outcome::ZeroCost`]).
    pub fn cover(&self) -> &PathCover {
        &self.cover
    }

    /// The number of virtual registers `K̃` (register count of the cover).
    pub fn virtual_registers(&self) -> usize {
        self.cover.register_count()
    }

    /// How the cover was obtained.
    pub fn outcome(&self) -> Phase1Outcome {
        self.outcome
    }

    /// The matching lower bound on `K̃`.
    pub fn lower_bound(&self) -> usize {
        self.lower_bound
    }

    /// Branch-and-bound nodes expanded (0 if the bounds were tight).
    pub fn nodes(&self) -> u64 {
        self.nodes
    }
}

/// Runs Phase 1 on a distance model.
///
/// # Examples
///
/// ```
/// use raco_core::phase1;
/// use raco_graph::{BbOptions, DistanceModel};
///
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let report = phase1::run(&dm, BbOptions::default());
/// assert_eq!(report.virtual_registers(), 3);
/// ```
pub fn run(dm: &DistanceModel, options: BbOptions) -> Phase1Report {
    match bb::min_zero_cost_cover_with(dm, options) {
        Ok(result) => Phase1Report {
            cover: result.cover.clone(),
            outcome: Phase1Outcome::ZeroCost {
                proved_minimal: result.optimal,
            },
            lower_bound: result.lower_bound,
            nodes: result.nodes,
        },
        // `CoverSearchError` is non-exhaustive; every failure mode —
        // infeasibility or an exhausted budget — degrades to the relaxed
        // matching cover.
        Err(_) => {
            let cover = matching::min_path_cover(dm);
            let lower_bound = cover.register_count();
            Phase1Report {
                cover,
                outcome: Phase1Outcome::Relaxed,
                lower_bound,
                nodes: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_zero_cost_with_three_registers() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let r = run(&dm, BbOptions::default());
        assert_eq!(r.virtual_registers(), 3);
        assert_eq!(
            r.outcome(),
            Phase1Outcome::ZeroCost {
                proved_minimal: true
            }
        );
        assert!(r.cover().is_zero_cost(&dm));
        assert_eq!(r.lower_bound(), 2);
    }

    #[test]
    fn infeasible_patterns_fall_back_to_relaxed_cover() {
        // Stride 5, M = 1: no wrap ever closes.
        let dm = DistanceModel::from_offsets(&[0, 1, 2], 5, 1);
        let r = run(&dm, BbOptions::default());
        assert_eq!(r.outcome(), Phase1Outcome::Relaxed);
        // Relaxed cover still has zero intra cost …
        assert_eq!(r.cover().total_cost(&dm, false), 0);
        // … and pays for every wrap.
        assert_eq!(
            r.cover().total_cost(&dm, true),
            r.cover().register_count() as u32
        );
    }

    #[test]
    fn relaxed_fallback_minimizes_path_count() {
        let dm = DistanceModel::from_offsets(&[0, 1, 2], 5, 1);
        let r = run(&dm, BbOptions::default());
        // The chain 0→1→2 is intra-free, so one path suffices.
        assert_eq!(r.virtual_registers(), 1);
    }

    #[test]
    fn budget_exhaustion_without_feasible_cover_degrades_gracefully() {
        let dm = DistanceModel::from_offsets(&[0, 10], 5, 1);
        let r = run(
            &dm,
            BbOptions {
                node_limit: 0,
                memoize: true,
            },
        );
        assert_eq!(r.outcome(), Phase1Outcome::Relaxed);
        assert_eq!(r.virtual_registers(), 2);
    }
}
