//! # raco-core — register-constrained address-register allocation
//!
//! The paper's contribution (*"Register-Constrained Address Computation in
//! DSP Programs"*, Basu/Leupers/Marwedel, DATE 1998, Section 3): given a
//! loop access pattern and an AGU with `K` address registers and
//! auto-modify range `M`, minimize the number of unit-cost address
//! computations per iteration. The algorithm has two phases:
//!
//! 1. **Phase 1** ([`phase1`]): compute the minimum number `K̃` of
//!    *virtual* registers admitting a completely zero-cost addressing
//!    scheme (exact branch-and-bound over path covers, inter-iteration
//!    dependencies included). If `K̃ <= K` the allocation is free.
//! 2. **Phase 2** ([`phase2`]): otherwise merge paths — always the pair
//!    whose merge `P_i ⊕ P_j` is cheapest — until only `K` paths remain.
//!
//! The crate also provides the paper's evaluation baseline (*naive*
//! allocation: merge arbitrary paths), a worst-case strategy, an exact
//! optimal allocator for small instances ([`exact`]), seeded random
//! pattern generation ([`random`]) for the statistical experiment, and a
//! register-partitioning pass for loops that access several arrays
//! ([`partition`]).
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use raco_core::Optimizer;
//! use raco_ir::{examples, AguSpec};
//!
//! let spec = examples::paper_loop();
//! let pattern = &spec.patterns()[0];
//!
//! // The example needs K̃ = 3 virtual registers for zero cost; with only
//! // K = 2 physical registers one merge is necessary.
//! let alloc = Optimizer::new(AguSpec::new(2, 1)?).allocate(pattern);
//! assert_eq!(alloc.virtual_registers(), 3);
//! assert_eq!(alloc.register_count(), 2);
//! assert!(alloc.cost() >= 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod anneal;
mod cost;
pub mod exact;
mod optimizer;
pub mod partition;
pub mod phase1;
pub mod phase2;
pub mod random;
mod report;

pub use cost::CostModel;
pub use optimizer::{AllocError, Allocation, LoopAllocation, Optimizer, OptimizerOptions};
pub use phase1::{Phase1Outcome, Phase1Report};
pub use phase2::{MergeRecord, MergeStrategy, Phase2Report};
pub use report::AllocationReport;
