//! Exact optimal allocation for small instances (quality oracle).
//!
//! The overall problem — partition the access sequence into at most `K`
//! order-preserving subsequences minimizing total unit-cost updates — is
//! solved exactly here by exhaustive partition enumeration (Bell-number
//! complexity, so `N <= 12`). Experiment E6 uses this to measure the
//! optimality gap of the two-phase heuristic; tests use it as an oracle.

use raco_graph::{brute, DistanceModel, PathCover};

use crate::cost::CostModel;

/// The exact optimum: minimum achievable cost with at most `k` registers,
/// together with an optimal cover.
///
/// # Panics
///
/// Panics if `dm.len() > 12` or `k == 0` (see
/// [`brute::min_cost_allocation_brute`]).
///
/// # Examples
///
/// ```
/// use raco_core::{exact, CostModel};
/// use raco_graph::DistanceModel;
///
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let (cost, _) = exact::optimal_allocation(&dm, 3, CostModel::steady_state());
/// assert_eq!(cost, 0); // K̃ = 3
/// let (cost, _) = exact::optimal_allocation(&dm, 2, CostModel::steady_state());
/// assert_eq!(cost, 2); // a_7 forces either a paid wrap or a lone register
/// ```
pub fn optimal_allocation(dm: &DistanceModel, k: usize, cost_model: CostModel) -> (u32, PathCover) {
    brute::min_cost_allocation_brute(dm, k, cost_model.includes_wrap())
}

/// Difference between `cost` and the exact optimum for the same instance.
///
/// Returns `None` when the instance is too large for the oracle
/// (`dm.len() > 12`).
pub fn optimality_gap(
    dm: &DistanceModel,
    k: usize,
    cost_model: CostModel,
    cost: u32,
) -> Option<u32> {
    if dm.len() > 12 || k == 0 {
        return None;
    }
    let (optimal, _) = optimal_allocation(dm, k, cost_model);
    Some(cost.saturating_sub(optimal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MergeStrategy, Optimizer};
    use raco_ir::AguSpec;

    #[test]
    fn paper_example_optimum_by_k() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let model = CostModel::steady_state();
        let by_k: Vec<u32> = (1..=4)
            .map(|k| optimal_allocation(&dm, k, model).0)
            .collect();
        assert_eq!(by_k[3], 0);
        assert_eq!(by_k[2], 0);
        // With K = 2 the optimum is 2: any path containing a_7 and another
        // access pays its wrap (only offset -2 closes onto -2), and no
        // complement path is simultaneously free.
        assert_eq!(by_k[1], 2);
        assert!(by_k[0] >= by_k[1]);
    }

    #[test]
    fn heuristic_gap_is_zero_on_the_paper_example() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        for k in 1..=3 {
            let agu = AguSpec::new(k, 1).unwrap();
            let alloc = Optimizer::new(agu).allocate_model(dm.clone());
            let gap = optimality_gap(&dm, k, CostModel::steady_state(), alloc.cost())
                .expect("small instance");
            assert_eq!(gap, 0, "k = {k}");
        }
    }

    #[test]
    fn greedy_dominates_worst_case_against_the_oracle() {
        let dm = DistanceModel::from_offsets(&[0, 3, 1, 4, 2, 5], 1, 1);
        let k = 2;
        let greedy = Optimizer::new(AguSpec::new(k, 1).unwrap())
            .allocate_model(dm.clone())
            .cost();
        let worst = Optimizer::new(AguSpec::new(k, 1).unwrap())
            .strategy(MergeStrategy::WorstCost)
            .allocate_model(dm.clone())
            .cost();
        let (optimal, _) = optimal_allocation(&dm, k, CostModel::steady_state());
        assert!(optimal <= greedy);
        assert!(greedy <= worst);
    }

    #[test]
    fn gap_is_none_for_large_instances() {
        let offsets: Vec<i64> = (0..20).collect();
        let dm = DistanceModel::from_offsets(&offsets, 1, 1);
        assert_eq!(optimality_gap(&dm, 2, CostModel::steady_state(), 5), None);
    }

    #[test]
    fn paper_literal_cost_model_is_respected() {
        let dm = DistanceModel::from_offsets(&[0, 5, 0, 5], 1, 1);
        // Intra-only: {(a1,a3),(a2,a4)} both have one zero step (0→0, 5→5)
        // → cost 0 even though wraps cost under steady state.
        let (cost, _) = optimal_allocation(&dm, 2, CostModel::paper_literal());
        assert_eq!(cost, 0);
        let (cost_ss, _) = optimal_allocation(&dm, 2, CostModel::steady_state());
        assert_eq!(cost_ss, 0, "wraps 0+1-0 = 1 and 5+1-5 = 1 are free too");
        // With only one register the interleaving costs intra steps.
        let (cost1, _) = optimal_allocation(&dm, 1, CostModel::paper_literal());
        assert_eq!(cost1, 3);
    }
}
