//! The cost model configuration.

use raco_graph::{DistanceModel, ModifyAllocation, Path, PathCover};

/// Selects how path costs are measured.
///
/// The paper defines `C(P)` as the number of over-range consecutive pairs
/// *inside* a path (Section 3.2). For the cost to agree with what the loop
/// actually executes in steady state, the back-edge (wrap) step of each
/// register must be counted too — Phase 1 requires it to be free for every
/// virtual register, so a merge that breaks a wrap genuinely costs an
/// instruction. [`CostModel::steady_state`] therefore includes wrap costs
/// and is the default; [`CostModel::paper_literal`] reproduces the
/// intra-only definition for ablation experiments.
///
/// ## Modify registers
///
/// Real AGUs (DSP56k, ADSP-210x) add *modify registers*: a post-update by
/// the content of a modify register is as free as an in-range auto-modify.
/// [`CostModel::with_modify_registers`] prices that machine: a cover's
/// cost charges a delta **zero** cycles when one of the machine's modify
/// registers would hold it — ranked by per-iteration frequency, exactly
/// the ranking code generation uses ([`ModifyAllocation`]) — so the
/// allocator's predicted cost equals the simulator's measured cost on
/// MR-equipped machines. With zero modify registers (the default, the
/// plain paper machine) every cost is byte-identical to the base model.
///
/// # Examples
///
/// ```
/// use raco_core::CostModel;
/// use raco_graph::{DistanceModel, Path, PathCover};
///
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let p = Path::new(vec![0, 2, 4, 5]).unwrap(); // (a_1, a_3, a_5, a_6)
/// assert_eq!(CostModel::paper_literal().path_cost(&p, &dm), 0);
/// assert_eq!(CostModel::steady_state().path_cost(&p, &dm), 1); // wrap = 2
///
/// // A repeated over-range delta becomes free once an MR holds it:
/// let dm = DistanceModel::from_offsets(&[0, 7, 14, 21], 22, 1);
/// let chain = PathCover::single_chain(4);
/// assert_eq!(CostModel::steady_state().cover_cost(&chain, &dm), 3);
/// let mr = CostModel::steady_state().with_modify_registers(1);
/// assert_eq!(mr.cover_cost(&chain, &dm), 0); // three +7 steps absorbed
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    include_wrap: bool,
    modify_registers: usize,
    adda_cost: u32,
}

impl CostModel {
    /// Steady-state cost: intra-path unit costs plus the wrap step.
    pub fn steady_state() -> Self {
        CostModel {
            include_wrap: true,
            modify_registers: 0,
            adda_cost: 1,
        }
    }

    /// Paper-literal `C(P)`: intra-path unit costs only.
    pub fn paper_literal() -> Self {
        CostModel {
            include_wrap: false,
            modify_registers: 0,
            adda_cost: 1,
        }
    }

    /// Prices a machine with `count` modify registers (builder style):
    /// cover costs charge zero for deltas a globally-allocated modify
    /// register would absorb.
    #[must_use]
    pub fn with_modify_registers(mut self, count: usize) -> Self {
        self.modify_registers = count;
        self
    }

    /// Prices machines whose explicit `ADDA` costs `cycles` instead of
    /// one (builder style). Scaling is uniform, so the optimal cover is
    /// unchanged; only reported costs grow — keeping `predicted ==
    /// measured` on machines with multi-cycle address arithmetic.
    ///
    /// A `cycles` of zero is treated as one (explicit instructions are
    /// never free).
    #[must_use]
    pub fn with_adda_cost(mut self, cycles: u32) -> Self {
        self.adda_cost = cycles.max(1);
        self
    }

    /// Whether wrap (back-edge) steps are charged.
    pub fn includes_wrap(&self) -> bool {
        self.include_wrap
    }

    /// Modify registers priced by this model (zero on the plain paper
    /// machine).
    pub fn modify_registers(&self) -> usize {
        self.modify_registers
    }

    /// Cycles charged per explicit `ADDA` (one on the paper machine).
    pub fn adda_cost(&self) -> u32 {
        self.adda_cost
    }

    /// Cost of a single path under this model.
    ///
    /// Path costs are deliberately **modify-register-unaware**: which
    /// deltas a modify register absorbs is a property of the whole cover
    /// (registers are a machine-wide resource ranked by global delta
    /// frequency), so only [`cover_cost`](Self::cover_cost) and
    /// [`covers_cost`](Self::covers_cost) price them.
    pub fn path_cost(&self, path: &Path, dm: &DistanceModel) -> u32 {
        path.cost(dm, self.include_wrap)
            .saturating_mul(self.adda_cost)
    }

    /// Total cost of a cover under this model.
    ///
    /// With modify registers, the `count` most frequent over-range deltas
    /// of the cover (the ones [`ModifyAllocation`] would load) are charged
    /// zero cycles.
    pub fn cover_cost(&self, cover: &PathCover, dm: &DistanceModel) -> u32 {
        let raw = cover.total_cost(dm, self.include_wrap);
        let count = if self.modify_registers == 0 {
            raw
        } else {
            let modify = ModifyAllocation::for_covers_with_wrap(
                [(cover, dm)],
                self.modify_registers,
                self.include_wrap,
            );
            raw - modify.savings()
        };
        count.saturating_mul(self.adda_cost)
    }

    /// Total cost of several covers sharing one machine — the cost of a
    /// whole loop whose arrays were allocated independently.
    ///
    /// Modify registers are a machine-wide resource: the ranking pools
    /// the over-range deltas of *every* cover before picking the most
    /// frequent values, exactly as code generation does. Summing
    /// per-cover [`cover_cost`](Self::cover_cost)s instead would let
    /// each array claim the full modify-register budget for itself and
    /// under-predict multi-array loops.
    pub fn covers_cost(&self, items: &[(&PathCover, &DistanceModel)]) -> u32 {
        let raw: u32 = items
            .iter()
            .map(|(cover, dm)| cover.total_cost(dm, self.include_wrap))
            .sum();
        let count = if self.modify_registers == 0 {
            raw
        } else {
            let modify = ModifyAllocation::for_covers_with_wrap(
                items.iter().copied(),
                self.modify_registers,
                self.include_wrap,
            );
            raw - modify.savings()
        };
        count.saturating_mul(self.adda_cost)
    }
}

impl Default for CostModel {
    /// Defaults to [`CostModel::steady_state`].
    fn default() -> Self {
        CostModel::steady_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_steady_state() {
        assert_eq!(CostModel::default(), CostModel::steady_state());
        assert!(CostModel::steady_state().includes_wrap());
        assert!(!CostModel::paper_literal().includes_wrap());
        assert_eq!(CostModel::steady_state().modify_registers(), 0);
        assert_eq!(
            CostModel::steady_state().with_modify_registers(0),
            CostModel::steady_state(),
            "a zero-MR model is the plain model"
        );
    }

    #[test]
    fn cover_cost_matches_sum_of_paths() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let cover = PathCover::single_chain(7);
        let model = CostModel::steady_state();
        let by_paths: u32 = cover.paths().iter().map(|p| model.path_cost(p, &dm)).sum();
        assert_eq!(model.cover_cost(&cover, &dm), by_paths);
        assert_eq!(model.cover_cost(&cover, &dm), 5);
        assert_eq!(CostModel::paper_literal().cover_cost(&cover, &dm), 4);
    }

    #[test]
    fn modify_registers_absorb_top_ranked_deltas() {
        // Chain steps: +7, +7, +7; wrap 0 + 22 - 21 = 1 (free).
        let dm = DistanceModel::from_offsets(&[0, 7, 14, 21], 22, 1);
        let chain = PathCover::single_chain(4);
        let base = CostModel::steady_state();
        assert_eq!(base.cover_cost(&chain, &dm), 3);
        assert_eq!(base.with_modify_registers(1).cover_cost(&chain, &dm), 0);
        // More registers than distinct deltas: cost still bottoms at 0.
        assert_eq!(base.with_modify_registers(4).cover_cost(&chain, &dm), 0);
    }

    #[test]
    fn modify_cost_is_monotone_in_register_count_for_a_fixed_cover() {
        let dm = DistanceModel::from_offsets(&[0, 5, -4, 13, 6], 1, 1);
        let cover = PathCover::single_chain(5);
        let mut last = u32::MAX;
        for count in 0..6 {
            let cost = CostModel::steady_state()
                .with_modify_registers(count)
                .cover_cost(&cover, &dm);
            assert!(cost <= last, "MR {count}: {cost} > {last}");
            last = cost;
        }
    }

    #[test]
    fn paper_literal_with_modify_registers_ranks_intra_steps_only() {
        // Only step is the wrap (+8): paper-literal charges nothing and
        // must not rank the wrap into a modify register either.
        let dm = DistanceModel::from_offsets(&[0, 1], 9, 1);
        let cover = PathCover::single_chain(2);
        let model = CostModel::paper_literal().with_modify_registers(2);
        assert_eq!(model.cover_cost(&cover, &dm), 0);
    }

    #[test]
    fn adda_cost_scales_uniformly() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let cover = PathCover::single_chain(7);
        let base = CostModel::steady_state();
        let scaled = base.with_adda_cost(3);
        assert_eq!(scaled.adda_cost(), 3);
        assert_eq!(
            scaled.cover_cost(&cover, &dm),
            3 * base.cover_cost(&cover, &dm)
        );
        for p in cover.paths() {
            assert_eq!(scaled.path_cost(p, &dm), 3 * base.path_cost(p, &dm));
        }
        // MR savings are applied before scaling.
        let dm = DistanceModel::from_offsets(&[0, 7, 14, 21], 22, 1);
        let chain = PathCover::single_chain(4);
        let mr = base.with_modify_registers(1).with_adda_cost(5);
        assert_eq!(mr.cover_cost(&chain, &dm), 0);
        // Zero is clamped to one: explicit instructions are never free.
        assert_eq!(base.with_adda_cost(0), base);
    }

    #[test]
    fn covers_cost_pools_the_modify_budget_globally() {
        // Array A repeats +7 three times, array B repeats +9 twice; one
        // machine-wide modify register holds +7 (more frequent), so B's
        // over-range steps stay explicit.
        let dm_a = DistanceModel::from_offsets(&[0, 7, 14, 21], 22, 1);
        let dm_b = DistanceModel::from_offsets(&[0, 9, 18], 19, 1);
        let a = PathCover::single_chain(4);
        let b = PathCover::single_chain(3);
        let model = CostModel::steady_state().with_modify_registers(1);
        let global = model.covers_cost(&[(&a, &dm_a), (&b, &dm_b)]);
        assert_eq!(global, 2, "B keeps its two +9 updates");
        // Summing per-cover costs would give each array its own MR:
        let summed = model.cover_cost(&a, &dm_a) + model.cover_cost(&b, &dm_b);
        assert!(summed < global, "per-array sums under-predict: {summed}");
        // With zero MRs the pooled cost is exactly the raw sum.
        let base = CostModel::steady_state();
        assert_eq!(
            base.covers_cost(&[(&a, &dm_a), (&b, &dm_b)]),
            base.cover_cost(&a, &dm_a) + base.cover_cost(&b, &dm_b)
        );
    }
}
