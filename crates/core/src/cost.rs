//! The cost model configuration.

use raco_graph::{DistanceModel, Path, PathCover};

/// Selects how path costs are measured.
///
/// The paper defines `C(P)` as the number of over-range consecutive pairs
/// *inside* a path (Section 3.2). For the cost to agree with what the loop
/// actually executes in steady state, the back-edge (wrap) step of each
/// register must be counted too — Phase 1 requires it to be free for every
/// virtual register, so a merge that breaks a wrap genuinely costs an
/// instruction. [`CostModel::steady_state`] therefore includes wrap costs
/// and is the default; [`CostModel::paper_literal`] reproduces the
/// intra-only definition for ablation experiments.
///
/// # Examples
///
/// ```
/// use raco_core::CostModel;
/// use raco_graph::{DistanceModel, Path};
///
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let p = Path::new(vec![0, 2, 4, 5]).unwrap(); // (a_1, a_3, a_5, a_6)
/// assert_eq!(CostModel::paper_literal().path_cost(&p, &dm), 0);
/// assert_eq!(CostModel::steady_state().path_cost(&p, &dm), 1); // wrap = 2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    include_wrap: bool,
}

impl CostModel {
    /// Steady-state cost: intra-path unit costs plus the wrap step.
    pub fn steady_state() -> Self {
        CostModel { include_wrap: true }
    }

    /// Paper-literal `C(P)`: intra-path unit costs only.
    pub fn paper_literal() -> Self {
        CostModel {
            include_wrap: false,
        }
    }

    /// Whether wrap (back-edge) steps are charged.
    pub fn includes_wrap(&self) -> bool {
        self.include_wrap
    }

    /// Cost of a single path under this model.
    pub fn path_cost(&self, path: &Path, dm: &DistanceModel) -> u32 {
        path.cost(dm, self.include_wrap)
    }

    /// Total cost of a cover under this model.
    pub fn cover_cost(&self, cover: &PathCover, dm: &DistanceModel) -> u32 {
        cover.total_cost(dm, self.include_wrap)
    }
}

impl Default for CostModel {
    /// Defaults to [`CostModel::steady_state`].
    fn default() -> Self {
        CostModel::steady_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_steady_state() {
        assert_eq!(CostModel::default(), CostModel::steady_state());
        assert!(CostModel::steady_state().includes_wrap());
        assert!(!CostModel::paper_literal().includes_wrap());
    }

    #[test]
    fn cover_cost_matches_sum_of_paths() {
        let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
        let cover = PathCover::single_chain(7);
        let model = CostModel::steady_state();
        let by_paths: u32 = cover.paths().iter().map(|p| model.path_cost(p, &dm)).sum();
        assert_eq!(model.cover_cost(&cover, &dm), by_paths);
        assert_eq!(model.cover_cost(&cover, &dm), 5);
        assert_eq!(CostModel::paper_literal().cover_cost(&cover, &dm), 4);
    }
}
