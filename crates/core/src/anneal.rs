//! Simulated-annealing allocator (extension, experiment E6 companion).
//!
//! The paper's Phase 2 is a constructive greedy heuristic. To judge how
//! much headroom it leaves, this module implements a classic
//! neighbourhood-search alternative: accesses move between registers one
//! at a time under a Metropolis acceptance rule with geometric cooling.
//! Seeded from the two-phase solution it can only improve on it (the
//! incumbent is tracked), which makes it a convenient upper-bound probe
//! for the greedy gap on instances too large for the exhaustive oracle.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use raco_graph::{DistanceModel, Path, PathCover};

use crate::cost::CostModel;

/// Tuning knobs for [`anneal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealOptions {
    /// RNG seed (same seed ⇒ same result).
    pub seed: u64,
    /// Number of proposed moves.
    pub iterations: u32,
    /// Initial temperature (in cost units).
    pub initial_temperature: f64,
    /// Geometric cooling factor per move (0 < cooling < 1).
    pub cooling: f64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            seed: 0xA11EA1,
            iterations: 20_000,
            initial_temperature: 2.5,
            cooling: 0.9995,
        }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnealResult {
    cover: PathCover,
    cost: u32,
    accepted_moves: u32,
    improving_moves: u32,
}

impl AnnealResult {
    /// The best cover found.
    pub fn cover(&self) -> &PathCover {
        &self.cover
    }

    /// Cost of the best cover under the configured cost model.
    pub fn cost(&self) -> u32 {
        self.cost
    }

    /// Moves accepted by the Metropolis rule.
    pub fn accepted_moves(&self) -> u32 {
        self.accepted_moves
    }

    /// Accepted moves that strictly improved the incumbent.
    pub fn improving_moves(&self) -> u32 {
        self.improving_moves
    }
}

fn assignment_cost(
    assignment: &[usize],
    k: usize,
    dm: &DistanceModel,
    cost_model: CostModel,
) -> u32 {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &r) in assignment.iter().enumerate() {
        groups[r].push(i);
    }
    groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| cost_model.path_cost(&Path::new(g).expect("grouped indices are increasing"), dm))
        .sum()
}

fn assignment_to_cover(assignment: &[usize], k: usize, n: usize) -> PathCover {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &r) in assignment.iter().enumerate() {
        groups[r].push(i);
    }
    let paths: Vec<Path> = groups
        .into_iter()
        .filter(|g| !g.is_empty())
        .map(|g| Path::new(g).expect("grouped indices are increasing"))
        .collect();
    PathCover::new(paths, n).expect("assignment partitions accesses")
}

/// Anneals an allocation of the accesses of `dm` onto at most `k`
/// registers, starting from `seed_cover` (typically the two-phase
/// result). The returned cover is never worse than the seed.
///
/// # Panics
///
/// Panics if `k == 0` or `seed_cover` does not cover `dm`'s accesses or
/// uses more than `k` paths.
///
/// # Examples
///
/// ```
/// use raco_core::{anneal, CostModel, Optimizer};
/// use raco_ir::{AccessPattern, AguSpec};
///
/// let pattern = AccessPattern::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1);
/// let two_phase = Optimizer::new(AguSpec::new(2, 1).unwrap()).allocate(&pattern);
/// let result = anneal::anneal(
///     two_phase.distance_model(),
///     2,
///     two_phase.cover().clone(),
///     CostModel::steady_state(),
///     anneal::AnnealOptions::default(),
/// );
/// assert!(result.cost() <= two_phase.cost());
/// ```
pub fn anneal(
    dm: &DistanceModel,
    k: usize,
    seed_cover: PathCover,
    cost_model: CostModel,
    options: AnnealOptions,
) -> AnnealResult {
    assert!(k > 0, "need at least one register");
    assert_eq!(
        seed_cover.accesses(),
        dm.len(),
        "seed cover must match the pattern"
    );
    assert!(
        seed_cover.register_count() <= k,
        "seed cover must satisfy the register constraint"
    );
    let n = dm.len();
    let mut assignment = vec![0usize; n];
    for (r, path) in seed_cover.paths().iter().enumerate() {
        for &i in path.indices() {
            assignment[i] = r;
        }
    }

    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut current_cost = assignment_cost(&assignment, k, dm, cost_model);
    let mut best_assignment = assignment.clone();
    let mut best_cost = current_cost;
    let mut temperature = options.initial_temperature;
    let mut accepted = 0u32;
    let mut improving = 0u32;

    if n > 0 && k > 1 {
        for _ in 0..options.iterations {
            if best_cost == 0 {
                break;
            }
            let access = rng.gen_range(0..n);
            let old_register = assignment[access];
            let mut new_register = rng.gen_range(0..k - 1);
            if new_register >= old_register {
                new_register += 1;
            }
            assignment[access] = new_register;
            let candidate = assignment_cost(&assignment, k, dm, cost_model);
            let delta = f64::from(candidate) - f64::from(current_cost);
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature.max(1e-9)).exp();
            if accept {
                accepted += 1;
                current_cost = candidate;
                if candidate < best_cost {
                    improving += 1;
                    best_cost = candidate;
                    best_assignment.copy_from_slice(&assignment);
                }
            } else {
                assignment[access] = old_register;
            }
            temperature *= options.cooling;
        }
    }

    AnnealResult {
        cover: assignment_to_cover(&best_assignment, k, n),
        cost: best_cost,
        accepted_moves: accepted,
        improving_moves: improving,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact, Optimizer};
    use raco_ir::{AccessPattern, AguSpec};

    fn run(offsets: &[i64], k: usize, seed: u64) -> (u32, u32) {
        let pattern = AccessPattern::from_offsets(offsets, 1);
        let two_phase = Optimizer::new(AguSpec::new(k, 1).unwrap()).allocate(&pattern);
        let result = anneal(
            two_phase.distance_model(),
            k,
            two_phase.cover().clone(),
            CostModel::steady_state(),
            AnnealOptions {
                seed,
                ..AnnealOptions::default()
            },
        );
        (two_phase.cost(), result.cost())
    }

    #[test]
    fn never_worse_than_the_two_phase_seed() {
        for (offsets, k) in [
            (vec![1i64, 0, 2, -1, 1, 0, -2], 2usize),
            (vec![0, 3, 1, 4, 2, 5], 2),
            (vec![5, -5, 5, -5, 0, 0], 3),
            (vec![0, 7, 1, 6, 2, 5, 3, 4], 2),
        ] {
            let (greedy, annealed) = run(&offsets, k, 17);
            assert!(
                annealed <= greedy,
                "annealing regressed on {offsets:?}: {annealed} > {greedy}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (_, a) = run(&[0, 3, 1, 4, 2, 5, 0, 3], 2, 7);
        let (_, b) = run(&[0, 3, 1, 4, 2, 5, 0, 3], 2, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn reaches_the_oracle_on_small_instances() {
        for offsets in [vec![0i64, 3, 1, 4, 2, 5], vec![2, -2, 0, 2, -2, 0]] {
            let pattern = AccessPattern::from_offsets(&offsets, 1);
            let two_phase = Optimizer::new(AguSpec::new(2, 1).unwrap()).allocate(&pattern);
            let result = anneal(
                two_phase.distance_model(),
                2,
                two_phase.cover().clone(),
                CostModel::steady_state(),
                AnnealOptions::default(),
            );
            let (optimal, _) =
                exact::optimal_allocation(two_phase.distance_model(), 2, CostModel::steady_state());
            assert_eq!(
                result.cost(),
                optimal,
                "annealing should close the gap on {offsets:?}"
            );
        }
    }

    #[test]
    fn result_is_a_valid_cover_within_the_constraint() {
        let pattern = AccessPattern::from_offsets(&[0, 9, 1, 8, 2, 7, 3, 6, 4, 5], 1);
        let two_phase = Optimizer::new(AguSpec::new(3, 1).unwrap()).allocate(&pattern);
        let result = anneal(
            two_phase.distance_model(),
            3,
            two_phase.cover().clone(),
            CostModel::steady_state(),
            AnnealOptions::default(),
        );
        assert!(result.cover().register_count() <= 3);
        assert_eq!(result.cover().accesses(), 10);
        assert_eq!(
            result
                .cover()
                .paths()
                .iter()
                .map(|p| p.len())
                .sum::<usize>(),
            10
        );
        assert_eq!(
            result.cost(),
            CostModel::steady_state().cover_cost(result.cover(), two_phase.distance_model())
        );
    }

    #[test]
    fn zero_cost_seeds_short_circuit() {
        let pattern = AccessPattern::from_offsets(&[0, 1, 2, 3], 4);
        let two_phase = Optimizer::new(AguSpec::new(2, 1).unwrap()).allocate(&pattern);
        assert_eq!(two_phase.cost(), 0);
        let result = anneal(
            two_phase.distance_model(),
            2,
            two_phase.cover().clone(),
            CostModel::steady_state(),
            AnnealOptions::default(),
        );
        assert_eq!(result.cost(), 0);
        assert_eq!(result.accepted_moves(), 0, "no moves needed");
    }

    #[test]
    #[should_panic(expected = "register constraint")]
    fn oversized_seed_cover_is_rejected() {
        let pattern = AccessPattern::from_offsets(&[0, 5, 10], 1);
        let dm = raco_graph::DistanceModel::new(&pattern, 1);
        let cover = raco_graph::PathCover::singletons(3);
        let _ = anneal(
            &dm,
            2,
            cover,
            CostModel::steady_state(),
            AnnealOptions::default(),
        );
    }
}
