//! Human-readable allocation reports.
//!
//! A compiler pass is only as debuggable as its diagnostics. The
//! [`AllocationReport`] renders everything the two phases decided — the
//! bounds, the search effort, every merge, and the final register paths
//! with their post-modify steps — in a compact text form used by the
//! examples and handy in compiler logs.

use std::fmt;

use crate::optimizer::Allocation;
use crate::phase1::Phase1Outcome;

/// A displayable summary of an [`Allocation`].
///
/// Borrowed from the allocation via [`Allocation::report`].
///
/// # Examples
///
/// ```
/// use raco_core::Optimizer;
/// use raco_ir::{examples, AguSpec};
///
/// let spec = examples::paper_loop();
/// let alloc = Optimizer::new(AguSpec::new(2, 1).unwrap())
///     .allocate(&spec.patterns()[0]);
/// let text = alloc.report().to_string();
/// assert!(text.contains("K̃ = 3"));
/// assert!(text.contains("AR0"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AllocationReport<'a> {
    allocation: &'a Allocation,
}

impl<'a> AllocationReport<'a> {
    pub(crate) fn new(allocation: &'a Allocation) -> Self {
        AllocationReport { allocation }
    }
}

impl fmt::Display for AllocationReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let alloc = self.allocation;
        let dm = alloc.distance_model();
        writeln!(
            f,
            "allocation: {} accesses -> {} register(s), {} unit-cost update(s)/iteration",
            dm.len(),
            alloc.register_count(),
            alloc.cost()
        )?;
        let p1 = alloc.phase1();
        // `Phase1Outcome` is non-exhaustive for downstream crates; the
        // wildcard is unreachable here but keeps this render total if
        // an outcome is ever added.
        #[allow(unreachable_patterns)]
        match p1.outcome() {
            Phase1Outcome::ZeroCost { proved_minimal } => writeln!(
                f,
                "phase 1: K̃ = {} zero-cost virtual registers (lower bound {}, {}, {} B&B nodes)",
                p1.virtual_registers(),
                p1.lower_bound(),
                if proved_minimal {
                    "proved minimal"
                } else {
                    "budget-limited"
                },
                p1.nodes()
            )?,
            Phase1Outcome::Relaxed => writeln!(
                f,
                "phase 1: no zero-cost cover exists; relaxed matching cover with {} path(s)",
                p1.virtual_registers()
            )?,
            _ => writeln!(f, "phase 1: {} path(s)", p1.virtual_registers())?,
        }
        let records = alloc.phase2().records();
        if records.is_empty() {
            writeln!(f, "phase 2: no merging needed")?;
        } else {
            writeln!(f, "phase 2: {} merge(s):", records.len())?;
            for r in records {
                writeln!(
                    f,
                    "    {} -> {} paths: merged {}+{} accesses, merged-path cost {}, total {}",
                    r.paths_before,
                    r.paths_before - 1,
                    r.merged_lengths.0,
                    r.merged_lengths.1,
                    r.merged_path_cost,
                    r.total_cost_after
                )?;
            }
        }
        writeln!(f, "register paths:")?;
        for (i, path) in alloc.cover().paths().iter().enumerate() {
            let steps: Vec<String> = path
                .intra_steps(dm)
                .into_iter()
                .map(|d| format!("{d:+}"))
                .collect();
            writeln!(
                f,
                "    AR{i}: {path}  steps [{}]  wrap {:+}",
                steps.join(", "),
                path.wrap_step(dm)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::Optimizer;
    use raco_ir::{AccessPattern, AguSpec};

    fn paper_report(k: usize) -> String {
        let pattern = AccessPattern::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1);
        Optimizer::new(AguSpec::new(k, 1).unwrap())
            .allocate(&pattern)
            .report()
            .to_string()
    }

    #[test]
    fn zero_cost_report_mentions_no_merging() {
        let text = paper_report(3);
        assert!(text.contains("K̃ = 3"), "{text}");
        assert!(text.contains("proved minimal"), "{text}");
        assert!(text.contains("no merging needed"), "{text}");
        assert!(text.contains("0 unit-cost"), "{text}");
    }

    #[test]
    fn constrained_report_lists_merges_and_paths() {
        let text = paper_report(2);
        assert!(text.contains("phase 2: 1 merge(s):"), "{text}");
        assert!(text.contains("3 -> 2 paths"), "{text}");
        assert!(text.contains("AR0:"), "{text}");
        assert!(text.contains("AR1:"), "{text}");
        assert!(text.contains("wrap"), "{text}");
    }

    #[test]
    fn relaxed_report_says_so() {
        let pattern = AccessPattern::from_offsets(&[0, 1, 2], 5);
        let text = Optimizer::new(AguSpec::new(2, 1).unwrap())
            .allocate(&pattern)
            .report()
            .to_string();
        assert!(text.contains("no zero-cost cover exists"), "{text}");
    }

    #[test]
    fn steps_are_signed() {
        let text = paper_report(3);
        assert!(text.contains("+1") || text.contains("-1"), "{text}");
    }
}
