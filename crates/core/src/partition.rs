//! Distributing `K` address registers across several arrays.
//!
//! A loop that touches several arrays needs at least one register per
//! array (an address register cannot usefully serve two address spaces at
//! once). Given per-array cost curves `cost_a(k)` — produced cheaply from
//! one merge trajectory each, see
//! [`Optimizer::cost_curve`](crate::Optimizer::cost_curve) — a small
//! dynamic program finds the register distribution minimizing total cost.

use std::fmt;

/// Errors produced by [`distribute_registers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// More arrays than registers: no feasible distribution.
    InsufficientRegisters {
        /// Number of arrays (cost curves).
        arrays: usize,
        /// Registers available.
        registers: usize,
    },
    /// A cost curve was empty or shorter than the register budget needs.
    MalformedCurve {
        /// Index of the offending curve.
        array: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::InsufficientRegisters { arrays, registers } => write!(
                f,
                "{arrays} arrays cannot share {registers} address registers"
            ),
            PartitionError::MalformedCurve { array } => {
                write!(f, "cost curve of array {array} is empty")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Finds the register distribution minimizing total cost.
///
/// `curves[a][i]` is the cost of allocating array `a` with `i + 1`
/// registers; curves shorter than `k` are padded with their last value
/// (more registers never help beyond the curve's end). Returns the number
/// of registers granted to each array (each at least 1, summing to at most
/// `k`).
///
/// # Errors
///
/// Returns [`PartitionError`] if there are more arrays than registers or
/// an empty curve.
///
/// # Examples
///
/// ```
/// use raco_core::partition::distribute_registers;
/// // Array 0 is satisfied with one register; array 1 wants three.
/// let curves = vec![vec![0, 0, 0, 0], vec![5, 3, 0, 0]];
/// let grant = distribute_registers(&curves, 4).unwrap();
/// assert_eq!(grant, vec![1, 3]);
/// ```
pub fn distribute_registers(curves: &[Vec<u32>], k: usize) -> Result<Vec<usize>, PartitionError> {
    let arrays = curves.len();
    if arrays > k {
        return Err(PartitionError::InsufficientRegisters {
            arrays,
            registers: k,
        });
    }
    for (array, c) in curves.iter().enumerate() {
        if c.is_empty() {
            return Err(PartitionError::MalformedCurve { array });
        }
    }
    let cost_of = |a: usize, regs: usize| -> u64 {
        let c = &curves[a];
        u64::from(*c.get(regs - 1).unwrap_or(c.last().expect("non-empty")))
    };
    // dp[a][r] = min total cost of the first `a` arrays using exactly r regs.
    const INF: u64 = u64::MAX / 2;
    let mut dp = vec![vec![INF; k + 1]; arrays + 1];
    let mut choice = vec![vec![0usize; k + 1]; arrays + 1];
    dp[0][0] = 0;
    for a in 1..=arrays {
        for r in a..=k {
            for grant in 1..=(r - (a - 1)) {
                if dp[a - 1][r - grant] == INF {
                    continue;
                }
                let cand = dp[a - 1][r - grant] + cost_of(a - 1, grant);
                if cand < dp[a][r] {
                    dp[a][r] = cand;
                    choice[a][r] = grant;
                }
            }
        }
    }
    // Best register total (granting unused registers is pointless but
    // harmless; pick the cheapest, smallest total).
    let mut best_r = arrays;
    for r in arrays..=k {
        if dp[arrays][r] < dp[arrays][best_r] {
            best_r = r;
        }
    }
    let mut grants = vec![0usize; arrays];
    let mut r = best_r;
    for a in (1..=arrays).rev() {
        grants[a - 1] = choice[a][r];
        r -= choice[a][r];
    }
    Ok(grants)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_array_gets_what_it_needs() {
        let curves = vec![vec![4, 2, 1, 0, 0]];
        assert_eq!(distribute_registers(&curves, 5).unwrap(), vec![4]);
        assert_eq!(distribute_registers(&curves, 2).unwrap(), vec![2]);
        assert_eq!(distribute_registers(&curves, 1).unwrap(), vec![1]);
    }

    #[test]
    fn distribution_minimizes_total_cost() {
        // Marginal gains differ: giving the 2nd register to array 1 saves
        // 5, to array 0 saves 1.
        let curves = vec![vec![1, 0, 0], vec![5, 0, 0]];
        assert_eq!(distribute_registers(&curves, 3).unwrap(), vec![1, 2]);
        // With 4 registers both get their optimum.
        assert_eq!(distribute_registers(&curves, 4).unwrap(), vec![2, 2]);
    }

    #[test]
    fn each_array_gets_at_least_one_register() {
        let curves = vec![vec![0], vec![9, 8, 7], vec![0, 0]];
        let g = distribute_registers(&curves, 3).unwrap();
        assert_eq!(g, vec![1, 1, 1]);
    }

    #[test]
    fn short_curves_are_padded_with_their_last_value() {
        // Array 0's curve stops at 2 registers: more registers keep cost 3.
        let curves = vec![vec![7, 3], vec![4, 4, 4, 4]];
        let g = distribute_registers(&curves, 4).unwrap();
        assert_eq!(g, vec![2, 1], "extra registers would be wasted");
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(
            distribute_registers(&[vec![0], vec![0], vec![0]], 2).unwrap_err(),
            PartitionError::InsufficientRegisters {
                arrays: 3,
                registers: 2
            }
        );
        assert_eq!(
            distribute_registers(&[vec![0], vec![]], 2).unwrap_err(),
            PartitionError::MalformedCurve { array: 1 }
        );
    }

    #[test]
    fn no_arrays_is_a_valid_degenerate_case() {
        assert_eq!(distribute_registers(&[], 4).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn exhaustive_cross_check_on_small_instances() {
        // Compare against brute-force enumeration of all grants.
        let curves = vec![vec![9, 4, 1, 0], vec![6, 5, 5, 5], vec![3, 0, 0, 0]];
        for k in 3..=8 {
            let g = distribute_registers(&curves, k).unwrap();
            let dp_cost: u64 = g
                .iter()
                .enumerate()
                .map(|(a, &r)| {
                    u64::from(*curves[a].get(r - 1).unwrap_or(curves[a].last().unwrap()))
                })
                .sum();
            let mut best = u64::MAX;
            for a in 1..=k {
                for b in 1..=k {
                    for c in 1..=k {
                        if a + b + c > k {
                            continue;
                        }
                        let cost =
                            u64::from(*curves[0].get(a - 1).unwrap_or(curves[0].last().unwrap()))
                                + u64::from(
                                    *curves[1].get(b - 1).unwrap_or(curves[1].last().unwrap()),
                                )
                                + u64::from(
                                    *curves[2].get(c - 1).unwrap_or(curves[2].last().unwrap()),
                                );
                        best = best.min(cost);
                    }
                }
            }
            assert_eq!(dp_cost, best, "k = {k}");
        }
    }
}
