//! Phase 2: path merging under the register constraint.
//!
//! If Phase 1 needs more virtual registers than the machine has
//! (`K̃ > K`), paths must be merged. The paper's heuristic (Section 3.2)
//! always merges the pair `(P_i, P_j)` whose merge `P_i ⊕ P_j` has the
//! minimal cost `C(P_i ⊕ P_j)` among all pairs, repeating until `K` paths
//! remain. The evaluation baseline (*naive* allocation, Section 4) merges
//! two *arbitrary* paths instead; both are implemented here as
//! [`MergeStrategy`] variants, together with a deliberately bad
//! worst-case strategy for ablation studies.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use raco_graph::{DistanceModel, PathCover};

use crate::cost::CostModel;

/// How merge candidates are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MergeStrategy {
    /// The paper's heuristic: merge the pair with minimal merged cost
    /// `C(P_i ⊕ P_j)`. Ties are broken by smaller *marginal* cost
    /// (`C(P_i ⊕ P_j) - C(P_i) - C(P_j)` — extending a path that already
    /// pays an update is better than spoiling two clean ones), then by
    /// smaller merged length, then by smaller pair indices (covers are
    /// canonically ordered, so the result is deterministic).
    GreedyMinCost,
    /// The paper's baseline: merge two arbitrary paths. Pairs are drawn
    /// uniformly from a seeded RNG so experiments are reproducible.
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Always merge the first two paths in canonical order — a
    /// deterministic flavour of "arbitrary".
    FirstPair,
    /// Adversarial: merge the pair with *maximal* merged cost. Used by
    /// ablation experiments to bracket the strategy space.
    WorstCost,
}

/// One merge step performed by Phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeRecord {
    /// Number of paths before this merge.
    pub paths_before: usize,
    /// Lengths of the two merged paths.
    pub merged_lengths: (usize, usize),
    /// Cost of the merged path under the configured cost model.
    pub merged_path_cost: u32,
    /// Total cover cost after this merge.
    pub total_cost_after: u32,
}

/// The result of Phase 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase2Report {
    cover: PathCover,
    records: Vec<MergeRecord>,
    cost_trajectory: Vec<(usize, u32)>,
}

impl Phase2Report {
    /// Reassembles a report from its serialized parts — the inverse of
    /// the [`cover`](Self::cover)/[`records`](Self::records)/
    /// [`cost_trajectory`](Self::cost_trajectory) accessors, used by
    /// snapshot decoders (`raco_driver::persist`) to rebuild cached
    /// allocations without re-running the merge trajectory.
    ///
    /// All recorded costs are evaluated under the *accounting* cost
    /// model the merge ran with — on a machine with modify registers
    /// that is the MR-aware predicted cost, the same number the
    /// simulator measures.
    pub fn from_parts(
        cover: PathCover,
        records: Vec<MergeRecord>,
        cost_trajectory: Vec<(usize, u32)>,
    ) -> Self {
        Phase2Report {
            cover,
            records,
            cost_trajectory,
        }
    }

    /// The final cover (at most `K` paths).
    pub fn cover(&self) -> &PathCover {
        &self.cover
    }

    /// One record per merge, in execution order.
    pub fn records(&self) -> &[MergeRecord] {
        &self.records
    }

    /// `(register count, total cost)` after Phase 1 and after every
    /// merge — i.e. the whole cost curve from `K̃` down to the final
    /// register count. Useful for register sweeps: the cost for any
    /// intermediate `k` can be read off without re-running.
    pub fn cost_trajectory(&self) -> &[(usize, u32)] {
        &self.cost_trajectory
    }

    /// The cost the trajectory reports for `k` registers, if the
    /// trajectory passed through `k`.
    pub fn cost_at(&self, k: usize) -> Option<u32> {
        self.cost_trajectory
            .iter()
            .find(|&&(count, _)| count == k)
            .map(|&(_, cost)| cost)
    }

    /// The predicted cost of the final cover — the last trajectory
    /// entry, evaluated under the accounting cost model the merge ran
    /// with (MR-aware on machines with modify registers).
    pub fn final_cost(&self) -> u32 {
        self.cost_trajectory
            .last()
            .map(|&(_, cost)| cost)
            .unwrap_or(0)
    }
}

/// Merges paths of `cover` until at most `k` remain.
///
/// The returned report contains the final cover, per-merge records and the
/// full cost trajectory. If the cover already satisfies the constraint it
/// is returned unchanged (empty record list).
///
/// For [`MergeStrategy::GreedyMinCost`] merging continues **below** the
/// constraint as long as a merge strictly reduces total cost. This can
/// only happen when Phase 1 fell back to a relaxed cover (paths that
/// individually pay their wrap steps can combine into a cheaper chain);
/// for zero-cost Phase-1 covers every merge costs at least one update, so
/// the greedy result uses exactly `min(k, K̃)` registers. The baseline
/// strategies stop at `k` paths, faithful to the paper's naive allocator.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// use raco_core::{phase2, CostModel, MergeStrategy};
/// use raco_graph::{bb, DistanceModel};
///
/// let dm = DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1);
/// let phase1 = bb::min_zero_cost_cover(&dm).unwrap().cover; // K̃ = 3
/// let report = phase2::merge_until(
///     &phase1,
///     2,
///     &dm,
///     CostModel::steady_state(),
///     MergeStrategy::GreedyMinCost,
/// );
/// assert_eq!(report.cover().register_count(), 2);
/// assert!(report.cost_at(2).unwrap() >= 1); // every merge costs ≥ 1
/// ```
pub fn merge_until(
    cover: &PathCover,
    k: usize,
    dm: &DistanceModel,
    cost_model: CostModel,
    strategy: MergeStrategy,
) -> Phase2Report {
    merge_until_with_selection(cover, k, dm, cost_model, cost_model, strategy)
}

/// [`merge_until`] with the cost model split into two roles:
///
/// * `account` prices every recorded cost — merge records, the cost
///   trajectory, and therefore the final predicted cost. On machines
///   with modify registers this is the MR-aware model, so Phase 2
///   reports the same number the simulator measures.
/// * `selection` ranks merge candidates. With zero modify registers the
///   ranking is the paper's (minimal merged-path cost, byte-identical
///   to the pre-MR behaviour); with modify registers it charges a delta
///   zero cycles when one of `selection`'s modify registers would hold
///   it, steering merges toward covers whose over-range deltas repeat.
///
/// Splitting the roles lets `Optimizer` sweep selection aggressiveness
/// (`0..=MR` priced registers) while every candidate is judged under
/// the one true machine model — which is what makes the final predicted
/// cost monotone in the machine's modify-register count.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn merge_until_with_selection(
    cover: &PathCover,
    k: usize,
    dm: &DistanceModel,
    account: CostModel,
    selection: CostModel,
    strategy: MergeStrategy,
) -> Phase2Report {
    assert!(k > 0, "cannot allocate to zero registers");
    let mut cover = cover.clone();
    let mut records = Vec::new();
    let mut trajectory = vec![(cover.register_count(), account.cover_cost(&cover, dm))];
    let mut rng = match strategy {
        MergeStrategy::Random { seed } => Some(SmallRng::seed_from_u64(seed)),
        _ => None,
    };
    while cover.register_count() > k {
        let paths_before = cover.register_count();
        let (i, j) = select_pair(&cover, dm, selection, strategy, rng.as_mut());
        let merged_lengths = (cover.paths()[i].len(), cover.paths()[j].len());
        let merged_path_cost = account.path_cost(
            &cover.paths()[i]
                .merge(&cover.paths()[j])
                .expect("cover paths are disjoint"),
            dm,
        );
        cover.merge_pair(i, j).expect("cover paths are disjoint");
        let total_cost_after = account.cover_cost(&cover, dm);
        records.push(MergeRecord {
            paths_before,
            merged_lengths,
            merged_path_cost,
            total_cost_after,
        });
        trajectory.push((cover.register_count(), total_cost_after));
    }
    // Opportunistic phase: keep merging while it strictly pays off
    // (relaxed Phase-1 covers only; see the function docs).
    if strategy == MergeStrategy::GreedyMinCost {
        while cover.register_count() >= 2 {
            let Some((i, j, marginal)) = best_marginal_pair(&cover, dm, selection) else {
                break;
            };
            if marginal >= 0 {
                break;
            }
            let paths_before = cover.register_count();
            let merged_lengths = (cover.paths()[i].len(), cover.paths()[j].len());
            let merged_path_cost = account.path_cost(
                &cover.paths()[i]
                    .merge(&cover.paths()[j])
                    .expect("cover paths are disjoint"),
                dm,
            );
            cover.merge_pair(i, j).expect("cover paths are disjoint");
            let total_cost_after = account.cover_cost(&cover, dm);
            records.push(MergeRecord {
                paths_before,
                merged_lengths,
                merged_path_cost,
                total_cost_after,
            });
            trajectory.push((cover.register_count(), total_cost_after));
        }
    }
    Phase2Report {
        cover,
        records,
        cost_trajectory: trajectory,
    }
}

/// The pair with the smallest marginal merge cost
/// (`C(P_i ⊕ P_j) - C(P_i) - C(P_j)`), or `None` for single-path covers.
/// Ranking key of a merge candidate in the opportunistic phase.
type MarginalRank = (i64, usize, usize, usize);

fn best_marginal_pair(
    cover: &PathCover,
    dm: &DistanceModel,
    cost_model: CostModel,
) -> Option<(usize, usize, i64)> {
    let p = cover.register_count();
    if p < 2 {
        return None;
    }
    if cost_model.modify_registers() > 0 {
        let before = i64::from(cost_model.cover_cost(cover, dm));
        let (i, j, cost_after) = best_mr_aware_pair(cover, dm, cost_model, false);
        return Some((i, j, i64::from(cost_after) - before));
    }
    let path_costs: Vec<i64> = cover
        .paths()
        .iter()
        .map(|path| i64::from(cost_model.path_cost(path, dm)))
        .collect();
    let mut best: Option<(MarginalRank, (usize, usize))> = None;
    for i in 0..p {
        for j in (i + 1)..p {
            let merged = cover.paths()[i]
                .merge(&cover.paths()[j])
                .expect("cover paths are disjoint");
            let marginal =
                i64::from(cost_model.path_cost(&merged, dm)) - path_costs[i] - path_costs[j];
            let rank = (marginal, merged.len(), i, j);
            if best.as_ref().is_none_or(|(r, _)| rank < *r) {
                best = Some((rank, (i, j)));
            }
        }
    }
    best.map(|((marginal, _, _, _), (i, j))| (i, j, marginal))
}

/// The MR-aware merge candidate scan shared by greedy selection and the
/// opportunistic marginal search: with modify registers, a candidate is
/// judged by the cost of the *whole cover after the merge* — a delta is
/// free when one of the model's registers would hold it, and which
/// deltas those are depends on every path's step frequencies, not just
/// the merged pair's. Returns the selected `(i, j)` plus the cover cost
/// after that merge; `worst` inverts the primary criterion (ablation).
/// Ties break toward shorter merged paths, then smaller indices, so
/// selection stays deterministic.
///
/// # Panics
///
/// Panics if the cover has fewer than two paths (callers check).
fn best_mr_aware_pair(
    cover: &PathCover,
    dm: &DistanceModel,
    cost_model: CostModel,
    worst: bool,
) -> (usize, usize, u32) {
    /// Ranking key of an MR-aware candidate: primary criterion, merged
    /// length, then the pair indices.
    type MrAwareRank = (u32, usize, usize, usize);
    let p = cover.register_count();
    let mut best: Option<(MrAwareRank, (usize, usize, u32))> = None;
    for i in 0..p {
        for j in (i + 1)..p {
            let mut merged_cover = cover.clone();
            merged_cover
                .merge_pair(i, j)
                .expect("cover paths are disjoint");
            let cost = cost_model.cover_cost(&merged_cover, dm);
            let primary = if worst { u32::MAX - cost } else { cost };
            let merged_len = cover.paths()[i].len() + cover.paths()[j].len();
            let rank = (primary, merged_len, i, j);
            if best.as_ref().is_none_or(|(r, _)| rank < *r) {
                best = Some((rank, (i, j, cost)));
            }
        }
    }
    best.expect("at least one pair exists").1
}

/// Ranking key of a merge candidate in the greedy/worst strategies.
type GreedyRank = (u32, i64, usize, usize, usize);

fn select_pair(
    cover: &PathCover,
    dm: &DistanceModel,
    cost_model: CostModel,
    strategy: MergeStrategy,
    rng: Option<&mut SmallRng>,
) -> (usize, usize) {
    let p = cover.register_count();
    debug_assert!(p >= 2);
    match strategy {
        MergeStrategy::FirstPair => (0, 1),
        MergeStrategy::Random { .. } => {
            let rng = rng.expect("random strategy carries an RNG");
            let i = rng.gen_range(0..p);
            let mut j = rng.gen_range(0..p - 1);
            if j >= i {
                j += 1;
            }
            (i.min(j), i.max(j))
        }
        MergeStrategy::GreedyMinCost | MergeStrategy::WorstCost
            if cost_model.modify_registers() > 0 =>
        {
            let (i, j, _) =
                best_mr_aware_pair(cover, dm, cost_model, strategy == MergeStrategy::WorstCost);
            (i, j)
        }
        MergeStrategy::GreedyMinCost | MergeStrategy::WorstCost => {
            let path_costs: Vec<i64> = cover
                .paths()
                .iter()
                .map(|p| i64::from(cost_model.path_cost(p, dm)))
                .collect();
            let mut best: Option<(GreedyRank, (usize, usize))> = None;
            for i in 0..p {
                for j in (i + 1)..p {
                    let merged = cover.paths()[i]
                        .merge(&cover.paths()[j])
                        .expect("cover paths are disjoint");
                    let cost = cost_model.path_cost(&merged, dm);
                    let marginal = i64::from(cost) - path_costs[i] - path_costs[j];
                    let rank = if strategy == MergeStrategy::WorstCost {
                        // Invert the primary criterion; tie-breaks stay
                        // deterministic.
                        (u32::MAX - cost, -marginal, merged.len(), i, j)
                    } else {
                        (cost, marginal, merged.len(), i, j)
                    };
                    if best.as_ref().is_none_or(|(r, _)| rank < *r) {
                        best = Some((rank, (i, j)));
                    }
                }
            }
            best.expect("at least one pair exists").1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_graph::Path;

    fn paper_dm() -> DistanceModel {
        DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1)
    }

    fn paper_phase1_cover() -> PathCover {
        // {(a_1,a_3,a_5), (a_2,a_4,a_6), (a_7)} — the zero-cost K̃ = 3 cover.
        PathCover::new(
            vec![
                Path::new(vec![0, 2, 4]).unwrap(),
                Path::new(vec![1, 3, 5]).unwrap(),
                Path::new(vec![6]).unwrap(),
            ],
            7,
        )
        .unwrap()
    }

    #[test]
    fn already_satisfied_constraint_is_a_no_op() {
        let dm = paper_dm();
        let cover = paper_phase1_cover();
        let r = merge_until(
            &cover,
            3,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::GreedyMinCost,
        );
        assert_eq!(r.cover(), &cover);
        assert!(r.records().is_empty());
        assert_eq!(r.cost_trajectory(), &[(3, 0)]);
    }

    #[test]
    fn greedy_merges_down_to_k_and_each_merge_costs_at_least_one() {
        let dm = paper_dm();
        let r = merge_until(
            &paper_phase1_cover(),
            1,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::GreedyMinCost,
        );
        assert_eq!(r.cover().register_count(), 1);
        assert_eq!(r.records().len(), 2);
        // Minimality of K̃ implies every merge of zero-cost paths costs >= 1.
        let mut last = 0;
        for (k, cost) in r.cost_trajectory().iter().skip(1) {
            assert!(*cost > last, "merge to {k} registers must add cost");
            last = *cost;
        }
    }

    #[test]
    fn cost_trajectory_indexes_by_register_count() {
        let dm = paper_dm();
        let r = merge_until(
            &paper_phase1_cover(),
            1,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::GreedyMinCost,
        );
        assert_eq!(r.cost_at(3), Some(0));
        assert!(r.cost_at(2).unwrap() >= 1);
        assert!(r.cost_at(1).unwrap() >= r.cost_at(2).unwrap());
        assert_eq!(r.cost_at(7), None);
    }

    #[test]
    fn greedy_is_no_worse_than_worst_case_here() {
        let dm = paper_dm();
        let greedy = merge_until(
            &paper_phase1_cover(),
            1,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::GreedyMinCost,
        );
        let worst = merge_until(
            &paper_phase1_cover(),
            1,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::WorstCost,
        );
        assert!(
            greedy.cost_at(1).unwrap() <= worst.cost_at(1).unwrap(),
            "greedy {} vs worst {}",
            greedy.cost_at(1).unwrap(),
            worst.cost_at(1).unwrap()
        );
    }

    #[test]
    fn random_strategy_is_reproducible_per_seed() {
        let dm = paper_dm();
        let a = merge_until(
            &paper_phase1_cover(),
            1,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::Random { seed: 42 },
        );
        let b = merge_until(
            &paper_phase1_cover(),
            1,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::Random { seed: 42 },
        );
        assert_eq!(a.cover(), b.cover());
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn first_pair_strategy_merges_canonical_heads() {
        let dm = paper_dm();
        let r = merge_until(
            &paper_phase1_cover(),
            2,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::FirstPair,
        );
        assert_eq!(r.cover().register_count(), 2);
        // First two canonical paths are (a_1,a_3,a_5) and (a_2,a_4,a_6):
        // merged into the 6-access chain; a_7 stays alone.
        assert_eq!(r.cover().paths()[0].len(), 6);
        assert_eq!(r.cover().paths()[1].len(), 1);
    }

    #[test]
    fn merging_preserves_the_access_partition() {
        let dm = paper_dm();
        for strategy in [
            MergeStrategy::GreedyMinCost,
            MergeStrategy::FirstPair,
            MergeStrategy::Random { seed: 7 },
            MergeStrategy::WorstCost,
        ] {
            let r = merge_until(
                &paper_phase1_cover(),
                1,
                &dm,
                CostModel::steady_state(),
                strategy,
            );
            let total: usize = r.cover().paths().iter().map(|p| p.len()).sum();
            assert_eq!(total, 7, "{strategy:?}");
        }
    }

    #[test]
    fn marginal_tie_break_grows_one_chain_instead_of_many_pairs() {
        // FIR-style pattern: offsets 0, -1, …, -7 with stride 1: K̃ = 8
        // (no multi-access path can close its wrap), and the optimum for
        // every 1 <= k < 8 is exactly one unit cost — one long chain pays
        // a single wrap. A greedy that ties toward fresh singleton pairs
        // would pay once per pair instead.
        let offsets: Vec<i64> = (0..8).map(|i| -i).collect();
        let dm = DistanceModel::from_offsets(&offsets, 1, 1);
        let phase1 = crate::phase1::run(&dm, raco_graph::BbOptions::default());
        assert_eq!(phase1.virtual_registers(), 8);
        let r = merge_until(
            phase1.cover(),
            1,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::GreedyMinCost,
        );
        for (k, cost) in r.cost_trajectory() {
            let expected = if *k == 8 { 0 } else { 1 };
            assert_eq!(*cost, expected, "k = {k}");
        }
    }

    #[test]
    fn greedy_keeps_merging_below_k_when_it_pays() {
        // Stride 5, M = 1: no zero-cost cover exists, Phase 1 falls back
        // to the relaxed cover (two singletons, each paying its wrap).
        // Chaining them costs 1 instead of 2, so greedy must merge even
        // though the register constraint (k = 2) is already met.
        let dm = DistanceModel::from_offsets(&[0, 5], 5, 1);
        let phase1 = crate::phase1::run(&dm, raco_graph::BbOptions::default());
        assert_eq!(
            phase1.outcome(),
            crate::Phase1Outcome::Relaxed,
            "precondition"
        );
        let r = merge_until(
            phase1.cover(),
            2,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::GreedyMinCost,
        );
        assert_eq!(r.cover().register_count(), 1);
        assert_eq!(CostModel::steady_state().cover_cost(r.cover(), &dm), 1);
        // The baselines stay at the constraint, as the paper's naive
        // allocator does.
        let naive = merge_until(
            phase1.cover(),
            2,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::FirstPair,
        );
        assert_eq!(naive.cover().register_count(), 2);
    }

    #[test]
    #[should_panic(expected = "zero registers")]
    fn zero_register_target_is_rejected() {
        let dm = paper_dm();
        let _ = merge_until(
            &paper_phase1_cover(),
            0,
            &dm,
            CostModel::steady_state(),
            MergeStrategy::GreedyMinCost,
        );
    }
}
