//! The end-to-end optimizer: Phase 1 + Phase 2 behind one call.

use std::fmt;
use std::sync::{Arc, OnceLock};

use raco_graph::{BbOptions, DistanceModel, PathCover};
use raco_ir::{AccessPattern, AguSpec, ArrayId, LoopSpec};
use raco_obs::Histogram;

use crate::cost::CostModel;
use crate::partition;
use crate::phase1::{self, Phase1Report};
use crate::phase2::{self, MergeStrategy, Phase2Report};

/// Global latency histogram for Phase-1 branch-and-bound runs,
/// resolved once (metric `core.phase1`, nanoseconds).
fn phase1_histogram() -> &'static Arc<Histogram> {
    static HISTOGRAM: OnceLock<Arc<Histogram>> = OnceLock::new();
    HISTOGRAM.get_or_init(|| raco_obs::global().histogram("core.phase1"))
}

/// Global latency histogram for Phase-2 merge runs (one observation per
/// [`Optimizer::best_phase2`] call, so MR selection sweeps record each
/// register count they evaluate; metric `core.phase2`, nanoseconds).
fn phase2_histogram() -> &'static Arc<Histogram> {
    static HISTOGRAM: OnceLock<Arc<Histogram>> = OnceLock::new();
    HISTOGRAM.get_or_init(|| raco_obs::global().histogram("core.phase2"))
}

/// Phase-1 output bundled with the distance model it ran on.
///
/// Prepared once per pattern and shared by the cost curve and the final
/// allocation, so the branch-and-bound search — the cycle sink of the
/// whole allocator — runs exactly once per pattern in
/// [`Optimizer::allocate_loop`].
struct PreparedPattern {
    dm: DistanceModel,
    phase1: Phase1Report,
}

/// Configuration of the two-phase allocator.
///
/// Options are `Hash` so they can participate in allocation-cache keys
/// (see `raco-driver`): two optimizers with equal options produce equal
/// allocations for equal inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OptimizerOptions {
    /// Cost model used by Phase 2 and reported costs.
    pub cost_model: CostModel,
    /// Branch-and-bound budget for Phase 1.
    pub bb: BbOptions,
    /// Merge-candidate selection for Phase 2.
    pub strategy: MergeStrategy,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            cost_model: CostModel::steady_state(),
            bb: BbOptions::default(),
            strategy: MergeStrategy::GreedyMinCost,
        }
    }
}

/// Errors produced by multi-array allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocError {
    /// The loop accesses more arrays than the machine has address
    /// registers; every array needs at least one dedicated register
    /// (registers cannot cheaply jump between address spaces).
    InsufficientRegisters {
        /// Number of accessed arrays.
        arrays: usize,
        /// Number of available address registers.
        registers: usize,
    },
    /// The loop contains no array accesses.
    EmptyLoop,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::InsufficientRegisters { arrays, registers } => write!(
                f,
                "loop accesses {arrays} arrays but the AGU has only {registers} address registers"
            ),
            AllocError::EmptyLoop => f.write_str("loop contains no array accesses"),
        }
    }
}

impl std::error::Error for AllocError {}

/// The paper's two-phase register-constrained allocator.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use raco_core::Optimizer;
/// use raco_ir::{examples, AguSpec};
///
/// let spec = examples::paper_loop();
/// let alloc = Optimizer::new(AguSpec::new(2, 1)?).allocate(&spec.patterns()[0]);
/// assert_eq!(alloc.register_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Optimizer {
    agu: AguSpec,
    options: OptimizerOptions,
}

impl Optimizer {
    /// Creates an optimizer for the given machine with default options
    /// (steady-state cost model, greedy merging).
    ///
    /// The cost model prices the *whole* machine: when `agu` has modify
    /// registers, the model charges zero cycles for deltas a modify
    /// register would absorb, so predicted costs match what generated
    /// code measures on that machine.
    pub fn new(agu: AguSpec) -> Self {
        let mut options = OptimizerOptions::default();
        options.cost_model = options
            .cost_model
            .with_modify_registers(agu.modify_registers());
        Optimizer { agu, options }
    }

    /// Creates an optimizer with explicit options.
    ///
    /// The options are taken verbatim — in particular the cost model's
    /// modify-register count is *not* synchronized with `agu`, so
    /// ablations can deliberately allocate MR-blind for an MR-equipped
    /// machine. Use [`Optimizer::new`] for a model that matches the
    /// machine.
    pub fn with_options(agu: AguSpec, options: OptimizerOptions) -> Self {
        Optimizer { agu, options }
    }

    /// Replaces the merge strategy (builder style).
    #[must_use]
    pub fn strategy(mut self, strategy: MergeStrategy) -> Self {
        self.options.strategy = strategy;
        self
    }

    /// Replaces the cost model (builder style).
    #[must_use]
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.options.cost_model = cost_model;
        self
    }

    /// Replaces the Phase-1 branch-and-bound options (builder style).
    #[must_use]
    pub fn bb_options(mut self, bb: BbOptions) -> Self {
        self.options.bb = bb;
        self
    }

    /// The machine this optimizer targets.
    pub fn agu(&self) -> &AguSpec {
        &self.agu
    }

    /// The active options.
    pub fn options(&self) -> &OptimizerOptions {
        &self.options
    }

    /// Allocates the accesses of a single-array pattern to the machine's
    /// `K` address registers (the paper's core problem).
    pub fn allocate(&self, pattern: &AccessPattern) -> Allocation {
        self.allocate_model(DistanceModel::with_range(pattern, self.agu.update_range()))
    }

    /// Allocates directly from a [`DistanceModel`] — the algorithm-only
    /// entry point used by experiments on synthetic offset lists.
    pub fn allocate_model(&self, dm: DistanceModel) -> Allocation {
        self.allocate_model_with_registers(dm, self.agu.address_registers())
    }

    /// Allocates `pattern` onto exactly `k` registers, overriding the
    /// machine's register count but keeping its modify range.
    ///
    /// This is the entry point a batch driver needs once a register
    /// partition has decided how many of the machine's `K` registers
    /// each array receives: the per-array sub-problems are allocated
    /// (and cached) independently of the loop they came from.
    pub fn allocate_with_registers(&self, pattern: &AccessPattern, k: usize) -> Allocation {
        self.allocate_model_with_registers(
            DistanceModel::with_range(pattern, self.agu.update_range()),
            k,
        )
    }

    fn allocate_model_with_registers(&self, dm: DistanceModel, k: usize) -> Allocation {
        let prepared = self.prepare_model(dm);
        let phase2 = self.best_phase2(&prepared.phase1, &prepared.dm, k);
        self.finish_allocation(prepared, phase2)
    }

    /// Runs Phase 1 on a distance model, recording its latency.
    fn prepare_model(&self, dm: DistanceModel) -> PreparedPattern {
        let phase1 = phase1_histogram().time(|| phase1::run(&dm, self.options.bb));
        PreparedPattern { dm, phase1 }
    }

    /// Assembles an [`Allocation`] from prepared Phase-1 state and a
    /// Phase-2 result, pricing the final cover. Moves both parts — no
    /// clones on this path.
    fn finish_allocation(&self, prepared: PreparedPattern, phase2: Phase2Report) -> Allocation {
        let cost = self
            .options
            .cost_model
            .cover_cost(phase2.cover(), &prepared.dm);
        Allocation {
            dm: prepared.dm,
            cost,
            phase1: prepared.phase1,
            phase2,
        }
    }

    /// Runs Phase 2 down to `k` registers under the configured cost
    /// model.
    ///
    /// On machines with modify registers the greedy merge *selection*
    /// is swept across pricing aggressiveness — each `m' ∈ 0..=MR`
    /// ranks candidates as if `m'` modify registers were available —
    /// and every resulting cover is judged under the one true MR-aware
    /// model; the cheapest wins (ties to the smallest `m'`, i.e. the
    /// paper's plain greedy). The sweep makes the predicted cost
    /// monotone in the machine's MR count by construction: the
    /// candidate set only grows with MR, and a fixed cover never gets
    /// more expensive when another modify register appears. With zero
    /// modify registers (or a non-greedy strategy, where selection
    /// ignores the model) this is a single plain [`phase2::merge_until`]
    /// run, byte-identical to the pre-MR behaviour.
    fn best_phase2(&self, phase1: &Phase1Report, dm: &DistanceModel, k: usize) -> Phase2Report {
        phase2_histogram().time(|| self.best_phase2_inner(phase1, dm, k))
    }

    fn best_phase2_inner(
        &self,
        phase1: &Phase1Report,
        dm: &DistanceModel,
        k: usize,
    ) -> Phase2Report {
        let model = self.options.cost_model;
        let mr = model.modify_registers();
        if mr == 0 || self.options.strategy != MergeStrategy::GreedyMinCost {
            return phase2::merge_until(phase1.cover(), k, dm, model, self.options.strategy);
        }
        // A cover has exactly one step per access, so selection pricing
        // beyond `len` distinct deltas cannot change any ranking.
        let cap = mr.min(dm.len());
        let mut best: Option<(u32, Phase2Report)> = None;
        for priced in 0..=cap {
            let selection = model.with_modify_registers(priced);
            let report = phase2::merge_until_with_selection(
                phase1.cover(),
                k,
                dm,
                model,
                selection,
                self.options.strategy,
            );
            let cost = model.cover_cost(report.cover(), dm);
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, report));
            }
        }
        best.expect("sweep runs at least once").1
    }

    /// Allocates every array of a loop, distributing the `K` registers
    /// across arrays so that the total cost is minimal (each array needs
    /// at least one register of its own).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::EmptyLoop`] for loops without accesses and
    /// [`AllocError::InsufficientRegisters`] when the loop touches more
    /// arrays than there are registers.
    pub fn allocate_loop(&self, spec: &LoopSpec) -> Result<LoopAllocation, AllocError> {
        let patterns = spec.patterns();
        if patterns.is_empty() {
            return Err(AllocError::EmptyLoop);
        }
        let k = self.agu.address_registers();
        if patterns.len() > k {
            return Err(AllocError::InsufficientRegisters {
                arrays: patterns.len(),
                registers: k,
            });
        }
        // Cost curve per pattern: cost with 1..=k registers. Phase 1
        // runs once per pattern and is shared with the final allocation
        // below; on MR machines the curve's selection sweep already
        // produced the Phase-2 report for every register count, so the
        // granted-k allocation is a lookup, not a re-run (previously
        // both the branch-and-bound search and the sweep ran twice).
        let mut prepared = Vec::with_capacity(patterns.len());
        let mut curves: Vec<Vec<u32>> = Vec::with_capacity(patterns.len());
        let mut swept: Vec<Vec<Phase2Report>> = Vec::with_capacity(patterns.len());
        for p in &patterns {
            let prep = self.prepare_model(DistanceModel::with_range(p, self.agu.update_range()));
            let (curve, reports) = self.curve_from(&prep, k, true);
            prepared.push(prep);
            curves.push(curve);
            swept.push(reports);
        }
        let assignment = partition::distribute_registers(&curves, k).expect("arity checked above");
        let per_array = patterns
            .iter()
            .zip(prepared)
            .zip(swept)
            .zip(&assignment)
            .map(|(((p, prep), mut reports), &ka)| {
                let phase2 = if ka <= reports.len() {
                    reports.swap_remove(ka - 1)
                } else {
                    self.best_phase2(&prep.phase1, &prep.dm, ka)
                };
                (p.array(), Arc::new(self.finish_allocation(prep, phase2)))
            })
            .collect::<Vec<_>>();
        // Modify registers are machine-wide: the loop's total is priced
        // over the pooled covers (see CostModel::covers_cost), not as a
        // sum of per-array costs that would each claim the full budget.
        let covers: Vec<_> = per_array
            .iter()
            .map(|(_, a)| (a.cover(), a.distance_model()))
            .collect();
        let total_cost = self.options.cost_model.covers_cost(&covers);
        drop(covers);
        Ok(LoopAllocation {
            per_array,
            registers: assignment,
            total_cost,
        })
    }

    /// The cost of allocating `pattern` with `1..=k_max` registers, as a
    /// vector indexed by `k - 1`.
    ///
    /// Computed from a single merge trajectory (merging from `K̃` all the
    /// way down to one register), so a whole register sweep costs one
    /// allocation. A budget of `k` registers admits any allocation with
    /// **at most** `k` paths, so the value at `k` is the minimum
    /// trajectory cost over register counts `<= k` — this matters when
    /// Phase 1 fell back to a relaxed cover, where merging can *reduce*
    /// cost (paths that individually pay their wraps combine into a
    /// cheaper chain). The curve is therefore non-increasing in `k` by
    /// construction.
    pub fn cost_curve(&self, pattern: &AccessPattern, k_max: usize) -> Vec<u32> {
        let prepared =
            self.prepare_model(DistanceModel::with_range(pattern, self.agu.update_range()));
        self.curve_from(&prepared, k_max, false).0
    }

    /// Computes the cost curve from prepared Phase-1 state. With
    /// `keep_reports`, the MR selection sweep's per-`k` Phase-2 reports
    /// are returned alongside the curve (indexed by `k - 1`) so a caller
    /// that goes on to allocate at one of the swept counts can reuse the
    /// report instead of re-running the sweep; on the single-trajectory
    /// path the report vector is empty.
    fn curve_from(
        &self,
        prepared: &PreparedPattern,
        k_max: usize,
        keep_reports: bool,
    ) -> (Vec<u32>, Vec<Phase2Report>) {
        let PreparedPattern { dm, phase1 } = prepared;
        if self.options.cost_model.modify_registers() > 0
            && self.options.strategy == MergeStrategy::GreedyMinCost
        {
            // MR-aware greedy allocations come out of a selection sweep
            // (see best_phase2), whose result a single merge trajectory
            // cannot reproduce — run the sweep per register count so
            // curve entries equal what allocation at that count costs.
            let mut reports = Vec::with_capacity(if keep_reports { k_max } else { 0 });
            let mut running_min = u32::MAX;
            let curve = (1..=k_max)
                .map(|k| {
                    let phase2 = self.best_phase2(phase1, dm, k);
                    let at_k = self.options.cost_model.cover_cost(phase2.cover(), dm);
                    if keep_reports {
                        reports.push(phase2);
                    }
                    running_min = running_min.min(at_k);
                    running_min
                })
                .collect();
            return (curve, reports);
        }
        let base_cost = self.options.cost_model.cover_cost(phase1.cover(), dm);
        let phase2 = phase2::merge_until(
            phase1.cover(),
            1,
            dm,
            self.options.cost_model,
            self.options.strategy,
        );
        let mut running_min = u32::MAX;
        let curve = (1..=k_max)
            .map(|k| {
                let at_k = phase2.cost_at(k).unwrap_or(base_cost);
                running_min = running_min.min(at_k);
                running_min
            })
            .collect();
        (curve, Vec::new())
    }
}

/// The result of allocating one access pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    dm: DistanceModel,
    cost: u32,
    phase1: Phase1Report,
    phase2: Phase2Report,
}

impl Allocation {
    /// Reassembles an allocation from its serialized parts.
    ///
    /// This is the constructor a snapshot decoder (see
    /// `raco_driver::persist`) uses to rebuild a cached allocation that
    /// was computed in an earlier process. The parts are taken at face
    /// value — `cost` is *not* recomputed — so callers are expected to
    /// have validated structural invariants (covers partition their
    /// accesses; the decoder's checksum guards the rest). An allocation
    /// rebuilt from the parts of [`Allocation`] accessors compares
    /// equal to the original:
    ///
    /// ```
    /// use raco_core::{Allocation, Optimizer};
    /// use raco_ir::{AccessPattern, AguSpec};
    ///
    /// let pattern = AccessPattern::from_offsets(&[1, 0, 2, -1], 1);
    /// let original = Optimizer::new(AguSpec::new(2, 1).unwrap()).allocate(&pattern);
    /// let rebuilt = Allocation::from_parts(
    ///     original.distance_model().clone(),
    ///     original.cost(),
    ///     original.phase1().clone(),
    ///     original.phase2().clone(),
    /// );
    /// assert_eq!(rebuilt, original);
    /// ```
    pub fn from_parts(
        dm: DistanceModel,
        cost: u32,
        phase1: Phase1Report,
        phase2: Phase2Report,
    ) -> Self {
        Allocation {
            dm,
            cost,
            phase1,
            phase2,
        }
    }

    /// The final path cover: one path per used address register.
    pub fn cover(&self) -> &PathCover {
        self.phase2.cover()
    }

    /// Unit-cost address computations per steady-state iteration under the
    /// configured cost model.
    pub fn cost(&self) -> u32 {
        self.cost
    }

    /// Number of address registers actually used.
    pub fn register_count(&self) -> usize {
        self.cover().register_count()
    }

    /// The paper's `K̃`: virtual registers needed for a zero-cost scheme.
    pub fn virtual_registers(&self) -> usize {
        self.phase1.virtual_registers()
    }

    /// `true` if the allocation incurs no unit-cost computations.
    pub fn is_zero_cost(&self) -> bool {
        self.cost == 0
    }

    /// The Phase-1 report (cover, bounds, search statistics).
    pub fn phase1(&self) -> &Phase1Report {
        &self.phase1
    }

    /// The Phase-2 report (merge records, cost trajectory).
    pub fn phase2(&self) -> &Phase2Report {
        &self.phase2
    }

    /// The distance model the allocation was computed against.
    pub fn distance_model(&self) -> &DistanceModel {
        &self.dm
    }

    /// A human-readable summary of both phases, merges and register
    /// paths (see [`crate::AllocationReport`]).
    pub fn report(&self) -> crate::AllocationReport<'_> {
        crate::AllocationReport::new(self)
    }
}

/// The result of allocating a whole loop (possibly several arrays).
///
/// Per-array allocations are held behind [`Arc`], so assembling a loop
/// allocation out of cached [`Allocation`]s is a pointer bump per
/// array — a warm cache hit in `raco-driver` never deep-clones covers,
/// distance models or phase reports. Freshly computed allocations pay
/// one `Arc::new` each, which is noise next to the search they ran.
///
/// ```
/// use std::sync::Arc;
/// use raco_core::{CostModel, LoopAllocation, Optimizer};
/// use raco_ir::{dsl, AguSpec};
///
/// let spec = dsl::parse_loop(
///     "for (i = 1; i < 64; i++) { y[i] = x[i - 1] + x[i] + x[i + 1]; }",
/// ).unwrap();
/// let whole = Optimizer::new(AguSpec::new(4, 1).unwrap())
///     .allocate_loop(&spec)
///     .unwrap();
/// // Rebuilding from shared parts clones no allocation data …
/// let rebuilt = LoopAllocation::from_parts(
///     whole.per_array().to_vec(), // clones Arcs, not Allocations
///     whole.registers().to_vec(),
///     CostModel::steady_state(),
/// );
/// assert_eq!(rebuilt, whole);
/// // … the per-array allocations are literally the same memory:
/// assert!(Arc::ptr_eq(&rebuilt.per_array()[0].1, &whole.per_array()[0].1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopAllocation {
    per_array: Vec<(ArrayId, Arc<Allocation>)>,
    registers: Vec<usize>,
    total_cost: u32,
}

impl LoopAllocation {
    /// Assembles a loop allocation from per-array parts.
    ///
    /// `registers` is the per-array register grant, parallel to
    /// `per_array`. This is the constructor a compilation driver uses
    /// when the per-array allocations were obtained from a cache
    /// instead of [`Optimizer::allocate_loop`]: the cache hands out
    /// `Arc<Allocation>`s, and this constructor stores them as-is —
    /// no allocation data is cloned. The total cost is recomputed from
    /// the parts under `cost_model` — over the *pooled* covers, so on a
    /// machine with modify registers the machine-wide budget is priced
    /// once for the whole loop, never once per array.
    ///
    /// # Panics
    ///
    /// Panics if `registers` and `per_array` have different lengths.
    pub fn from_parts(
        per_array: Vec<(ArrayId, Arc<Allocation>)>,
        registers: Vec<usize>,
        cost_model: CostModel,
    ) -> Self {
        assert_eq!(
            per_array.len(),
            registers.len(),
            "one register grant per allocated array"
        );
        let covers: Vec<_> = per_array
            .iter()
            .map(|(_, a)| (a.cover(), a.distance_model()))
            .collect();
        let total_cost = cost_model.covers_cost(&covers);
        drop(covers);
        LoopAllocation {
            per_array,
            registers,
            total_cost,
        }
    }

    /// Per-array allocations, in [`ArrayId`] order of appearance.
    ///
    /// The `Arc`s are shared with whatever produced them (typically the
    /// driver's allocation cache); cloning an entry clones a pointer.
    pub fn per_array(&self) -> &[(ArrayId, Arc<Allocation>)] {
        &self.per_array
    }

    /// The allocation of a specific array, if it is accessed by the loop.
    pub fn for_array(&self, id: ArrayId) -> Option<&Allocation> {
        self.per_array
            .iter()
            .find(|(a, _)| *a == id)
            .map(|(_, alloc)| alloc.as_ref())
    }

    /// Registers granted to each array (parallel to
    /// [`per_array`](Self::per_array)).
    pub fn registers(&self) -> &[usize] {
        &self.registers
    }

    /// Total registers used across arrays.
    pub fn total_registers(&self) -> usize {
        self.per_array.iter().map(|(_, a)| a.register_count()).sum()
    }

    /// Total unit-cost computations per iteration across all arrays.
    pub fn total_cost(&self) -> u32 {
        self.total_cost
    }
}

// The batch driver shares optimizers and allocations across worker
// threads; keep that property from regressing.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Optimizer>();
    assert_send_sync::<OptimizerOptions>();
    assert_send_sync::<Allocation>();
    assert_send_sync::<LoopAllocation>();
    assert_send_sync::<AllocError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use raco_ir::dsl::parse_loop;

    fn paper_pattern() -> AccessPattern {
        AccessPattern::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1)
    }

    #[test]
    fn zero_cost_when_k_at_least_k_tilde() {
        let alloc = Optimizer::new(AguSpec::new(3, 1).unwrap()).allocate(&paper_pattern());
        assert_eq!(alloc.virtual_registers(), 3);
        assert_eq!(alloc.register_count(), 3);
        assert!(alloc.is_zero_cost());
        assert!(alloc.phase2().records().is_empty());
    }

    #[test]
    fn one_merge_when_one_register_short() {
        let alloc = Optimizer::new(AguSpec::new(2, 1).unwrap()).allocate(&paper_pattern());
        assert_eq!(alloc.register_count(), 2);
        assert_eq!(alloc.phase2().records().len(), 1);
        assert!(alloc.cost() >= 1);
    }

    #[test]
    fn excess_registers_are_not_wasted_on_extra_paths() {
        let alloc = Optimizer::new(AguSpec::new(8, 1).unwrap()).allocate(&paper_pattern());
        assert_eq!(alloc.register_count(), 3, "K̃ = 3 paths suffice");
        assert!(alloc.is_zero_cost());
    }

    #[test]
    fn cost_curve_is_monotone_and_reaches_zero_at_k_tilde() {
        let opt = Optimizer::new(AguSpec::new(8, 1).unwrap());
        let curve = opt.cost_curve(&paper_pattern(), 8);
        assert_eq!(curve.len(), 8);
        for w in curve.windows(2) {
            assert!(
                w[0] >= w[1],
                "more registers can never cost more: {curve:?}"
            );
        }
        assert_eq!(curve[2], 0, "zero cost at K̃ = 3");
        assert!(curve[0] > 0);
        assert_eq!(curve[7], 0);
    }

    #[test]
    fn allocate_model_matches_allocate() {
        let opt = Optimizer::new(AguSpec::new(2, 1).unwrap());
        let via_pattern = opt.allocate(&paper_pattern());
        let via_model =
            opt.allocate_model(DistanceModel::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1, 1));
        assert_eq!(via_pattern, via_model);
    }

    #[test]
    fn builder_options_round_trip() {
        let opt = Optimizer::new(AguSpec::new(2, 1).unwrap())
            .strategy(MergeStrategy::FirstPair)
            .cost_model(CostModel::paper_literal())
            .bb_options(BbOptions {
                node_limit: 1000,
                memoize: false,
            });
        assert_eq!(opt.options().strategy, MergeStrategy::FirstPair);
        assert_eq!(opt.options().cost_model, CostModel::paper_literal());
        assert_eq!(opt.options().bb.node_limit, 1000);
        assert_eq!(opt.agu().address_registers(), 2);
    }

    #[test]
    fn allocate_with_registers_matches_a_machine_of_that_size() {
        let pattern = paper_pattern();
        let big = Optimizer::new(AguSpec::new(8, 1).unwrap());
        let small = Optimizer::new(AguSpec::new(2, 1).unwrap());
        assert_eq!(
            big.allocate_with_registers(&pattern, 2),
            small.allocate(&pattern)
        );
    }

    #[test]
    fn from_parts_recomputes_the_total_cost() {
        let spec = parse_loop(
            "for (i = 1; i < 255; i++) {
                y[i] = x[i - 1] + x[i] + x[i + 1];
            }",
        )
        .unwrap();
        let opt = Optimizer::new(AguSpec::new(4, 1).unwrap());
        let whole = opt.allocate_loop(&spec).unwrap();
        let rebuilt = LoopAllocation::from_parts(
            whole.per_array().to_vec(),
            whole.registers().to_vec(),
            opt.options().cost_model,
        );
        assert_eq!(rebuilt.total_cost(), whole.total_cost());
        assert_eq!(rebuilt.per_array().len(), whole.per_array().len());
    }

    #[test]
    #[should_panic(expected = "one register grant")]
    fn from_parts_rejects_mismatched_grants() {
        let _ = LoopAllocation::from_parts(Vec::new(), vec![1], CostModel::steady_state());
    }

    #[test]
    fn loop_allocation_splits_registers_across_arrays() {
        let spec = parse_loop(
            "for (i = 1; i < 255; i++) {
                y[i] = x[i - 1] + x[i] + x[i + 1];
            }",
        )
        .unwrap();
        let alloc = Optimizer::new(AguSpec::new(4, 1).unwrap())
            .allocate_loop(&spec)
            .unwrap();
        assert_eq!(alloc.per_array().len(), 2);
        assert!(alloc.total_registers() <= 4);
        assert_eq!(alloc.total_cost(), 0, "x chain and y singleton are free");
        let x = spec.array_id("x").unwrap();
        assert!(alloc.for_array(x).is_some());
        assert!(alloc.for_array(raco_ir::ArrayId::from_index(9)).is_none());
    }

    #[test]
    fn machine_modify_registers_enter_the_default_cost_model() {
        let plain = Optimizer::new(AguSpec::new(2, 1).unwrap());
        assert_eq!(plain.options().cost_model.modify_registers(), 0);
        let mr = Optimizer::new(AguSpec::new(2, 1).unwrap().with_modify_registers(3));
        assert_eq!(mr.options().cost_model.modify_registers(), 3);
        // with_options takes the model verbatim (MR-blind ablation).
        let blind = Optimizer::with_options(
            AguSpec::new(2, 1).unwrap().with_modify_registers(3),
            OptimizerOptions::default(),
        );
        assert_eq!(blind.options().cost_model.modify_registers(), 0);
    }

    #[test]
    fn modify_registers_lower_predicted_cost_on_scattered_chains() {
        // One register chains 0, 10, 20, 30: three +10 steps plus an
        // over-range wrap. One modify register absorbs all the +10s.
        let pattern = AccessPattern::from_offsets(&[0, 10, 20, 30], 1);
        let plain = Optimizer::new(AguSpec::new(1, 1).unwrap()).allocate(&pattern);
        let with_mr =
            Optimizer::new(AguSpec::new(1, 1).unwrap().with_modify_registers(1)).allocate(&pattern);
        assert_eq!(plain.cost(), 4);
        assert_eq!(with_mr.cost(), 1, "three +10 steps become free");
        assert_eq!(
            with_mr.cost(),
            with_mr.phase2().final_cost(),
            "phase-2 trajectory records the MR-aware cost"
        );
    }

    #[test]
    fn mr_aware_cost_is_monotone_in_modify_register_count() {
        let pattern = AccessPattern::from_offsets(&[0, 9, 3, 30, 12, -5], 4);
        for k in 1..=3 {
            let mut last = u32::MAX;
            for mr in 0..=4 {
                let agu = AguSpec::new(k, 1).unwrap().with_modify_registers(mr);
                let cost = Optimizer::new(agu).allocate(&pattern).cost();
                assert!(cost <= last, "K={k} MR={mr}: {cost} > {last}");
                last = cost;
            }
        }
    }

    #[test]
    fn mr_aware_selection_can_beat_mr_blind_covers() {
        // The sweep evaluates the plain greedy cover too, so the
        // MR-aware allocation is never worse than pricing the blind
        // cover under the MR model.
        let pattern = AccessPattern::from_offsets(&[0, 10, 1, 11, 2, 12], 1);
        let agu = AguSpec::new(2, 1).unwrap().with_modify_registers(1);
        let aware = Optimizer::new(agu).allocate(&pattern);
        let blind = Optimizer::with_options(agu, OptimizerOptions::default()).allocate(&pattern);
        let blind_under_mr = Optimizer::new(agu)
            .options()
            .cost_model
            .cover_cost(blind.cover(), blind.distance_model());
        assert!(
            aware.cost() <= blind_under_mr,
            "aware {} vs blind-repriced {blind_under_mr}",
            aware.cost()
        );
    }

    #[test]
    fn zero_mr_machines_allocate_byte_identically_to_explicit_options() {
        // Regression pin for the paper reproduction: a machine without
        // modify registers must produce exactly the pre-MR allocations.
        let pattern = paper_pattern();
        for k in 1..=4 {
            let agu = AguSpec::new(k, 1).unwrap();
            let via_new = Optimizer::new(agu).allocate(&pattern);
            let via_options =
                Optimizer::with_options(agu, OptimizerOptions::default()).allocate(&pattern);
            assert_eq!(via_new, via_options, "K = {k}");
        }
    }

    #[test]
    fn cost_curve_matches_allocation_costs_on_mr_machines() {
        let pattern = AccessPattern::from_offsets(&[0, 10, 3, 30, 12, -5, 7], 2);
        let agu = AguSpec::new(4, 1).unwrap().with_modify_registers(2);
        let opt = Optimizer::new(agu);
        let curve = opt.cost_curve(&pattern, 4);
        for (i, &cost) in curve.iter().enumerate() {
            let alloc = opt.allocate_with_registers(&pattern, i + 1);
            assert_eq!(cost, alloc.cost(), "K = {}", i + 1);
        }
        for w in curve.windows(2) {
            assert!(w[0] >= w[1], "curve must stay monotone: {curve:?}");
        }
    }

    #[test]
    fn multi_array_totals_pool_the_modify_budget() {
        // With one register per array, `a` chains with three +10 steps
        // (and a -29 wrap), `b` with two +9 steps (and a -17 wrap). The
        // single machine-wide MR holds +10 — the most frequent delta
        // across the whole loop — so `b`'s updates stay explicit.
        let spec = parse_loop(
            "for (i = 0; i < 64; i++) {
                s = a[i] + a[i + 10] + a[i + 20] + a[i + 30]
                  + b[i] + b[i + 9] + b[i + 18];
            }",
        )
        .unwrap();
        let agu = AguSpec::new(2, 1).unwrap().with_modify_registers(1);
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        // Raw cost 4 + 3, minus the three absorbed +10 steps.
        assert_eq!(alloc.total_cost(), 4);
        // Each per-array cost optimistically claims the MR for itself;
        // the loop total must not sum those claims.
        let per_array_sum: u32 = alloc.per_array().iter().map(|(_, a)| a.cost()).sum();
        assert_eq!(per_array_sum, 2);
    }

    #[test]
    fn deduped_loop_allocation_matches_standalone_allocations() {
        // allocate_loop reuses Phase 1 (and the MR sweep's Phase-2
        // reports) across the curve and the final allocation; the
        // result must stay byte-identical to allocating each array
        // separately at its granted register count.
        let spec = parse_loop(
            "for (i = 0; i < 64; i++) {
                s = a[i] + a[i + 10] + a[i + 20] + a[i + 30]
                  + b[i] + b[i + 9] + b[i + 18];
            }",
        )
        .unwrap();
        for mr in [0, 1, 2] {
            let agu = AguSpec::new(3, 1).unwrap().with_modify_registers(mr);
            let opt = Optimizer::new(agu);
            let whole = opt.allocate_loop(&spec).unwrap();
            for ((array, alloc), &ka) in whole.per_array().iter().zip(whole.registers()) {
                let pattern = spec
                    .patterns()
                    .into_iter()
                    .find(|p| p.array() == *array)
                    .unwrap();
                let standalone = opt.allocate_with_registers(&pattern, ka);
                assert_eq!(**alloc, standalone, "MR={mr} array={array:?} K={ka}");
            }
        }
    }

    #[test]
    fn core_phase_histograms_accumulate() {
        let opt = Optimizer::new(AguSpec::new(2, 1).unwrap());
        let before = raco_obs::global().histogram("core.phase1").snapshot().count;
        let _ = opt.allocate(&paper_pattern());
        let after = raco_obs::global().histogram("core.phase1").snapshot().count;
        assert_eq!(after, before + 1, "one Phase-1 run per allocation");
        assert!(raco_obs::global().histogram("core.phase2").snapshot().count >= 1);
    }

    #[test]
    fn loop_allocation_rejects_too_many_arrays() {
        let spec = parse_loop("for (i = 0; i < 9; i++) { a[i] = b[i] + c[i] + d[i]; }").unwrap();
        let err = Optimizer::new(AguSpec::new(2, 1).unwrap())
            .allocate_loop(&spec)
            .unwrap_err();
        assert_eq!(
            err,
            AllocError::InsufficientRegisters {
                arrays: 4,
                registers: 2
            }
        );
    }

    #[test]
    fn loop_allocation_rejects_empty_loops() {
        let spec = parse_loop("for (i = 0; i < 9; i++) { s = t; }").unwrap();
        let err = Optimizer::new(AguSpec::new(2, 1).unwrap())
            .allocate_loop(&spec)
            .unwrap_err();
        assert_eq!(err, AllocError::EmptyLoop);
    }

    #[test]
    fn loop_allocation_prefers_needy_arrays() {
        // `a` is a free chain (1 register is enough); `b` is scattered and
        // profits from every extra register.
        let spec = parse_loop(
            "for (i = 0; i < 64; i++) {
                s = a[i] + b[i] + b[i + 10] + b[i + 20];
            }",
        )
        .unwrap();
        let alloc = Optimizer::new(AguSpec::new(4, 1).unwrap())
            .allocate_loop(&spec)
            .unwrap();
        let a = spec.array_id("a").unwrap();
        let b = spec.array_id("b").unwrap();
        assert_eq!(alloc.for_array(a).unwrap().register_count(), 1);
        assert_eq!(alloc.for_array(b).unwrap().register_count(), 3);
        assert_eq!(alloc.total_cost(), 0);
    }
}
