//! Seeded random access-pattern generation.
//!
//! Section 4 of the paper evaluates the heuristic on "random access
//! patterns and a variety of parameters N, M, and K" without specifying
//! the offset distribution. We draw offsets uniformly from a symmetric
//! range whose width scales with `M` through [`Spread`] presets, and we
//! document the choice in DESIGN.md; experiment E3 sweeps all presets to
//! show the conclusion is insensitive to it.
//!
//! All generation is seeded and reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use raco_ir::AccessPattern;

/// Offset-range presets relative to the auto-modify range `M`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Spread {
    /// Offsets in `[-2M, 2M]` — dense patterns, many zero-cost edges.
    Tight,
    /// Offsets in `[-4M, 4M]` — the default used by experiment E3.
    Medium,
    /// Offsets in `[-8M, 8M]` — sparse patterns, few zero-cost edges.
    Wide,
}

impl Spread {
    /// Half-width of the offset range for auto-modify range `m`.
    pub fn span(self, m: u32) -> i64 {
        let m = i64::from(m.max(1));
        match self {
            Spread::Tight => 2 * m,
            Spread::Medium => 4 * m,
            Spread::Wide => 8 * m,
        }
    }

    /// All presets, for sweeps.
    pub fn all() -> [Spread; 3] {
        [Spread::Tight, Spread::Medium, Spread::Wide]
    }

    /// Short lowercase name (table labels).
    pub fn name(self) -> &'static str {
        match self {
            Spread::Tight => "tight",
            Spread::Medium => "medium",
            Spread::Wide => "wide",
        }
    }
}

/// A reproducible generator of random access patterns.
///
/// # Examples
///
/// ```
/// use raco_core::random::PatternGenerator;
///
/// let gen = PatternGenerator::new(10).offset_span(4).stride(1);
/// let a = gen.generate(7);
/// let b = gen.generate(7);
/// assert_eq!(a, b, "same seed, same pattern");
/// assert_eq!(a.len(), 10);
/// assert!(a.offsets().iter().all(|&o| (-4..=4).contains(&o)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternGenerator {
    n: usize,
    min_offset: i64,
    max_offset: i64,
    stride: i64,
}

impl PatternGenerator {
    /// A generator of `n`-access patterns with offsets in `[-8, 8]` and
    /// stride 1.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "patterns must contain at least one access");
        PatternGenerator {
            n,
            min_offset: -8,
            max_offset: 8,
            stride: 1,
        }
    }

    /// Sets the offset range to `[-span, span]` (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `span < 0`.
    #[must_use]
    pub fn offset_span(mut self, span: i64) -> Self {
        assert!(span >= 0, "span must be non-negative");
        self.min_offset = -span;
        self.max_offset = span;
        self
    }

    /// Sets an explicit offset range (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    #[must_use]
    pub fn offset_range(mut self, min: i64, max: i64) -> Self {
        assert!(min <= max, "empty offset range");
        self.min_offset = min;
        self.max_offset = max;
        self
    }

    /// Sets the effective stride (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`.
    #[must_use]
    pub fn stride(mut self, stride: i64) -> Self {
        assert!(stride != 0, "stride must be non-zero");
        self.stride = stride;
        self
    }

    /// Applies a [`Spread`] preset for auto-modify range `m`.
    #[must_use]
    pub fn spread(self, spread: Spread, m: u32) -> Self {
        self.offset_span(spread.span(m))
    }

    /// Number of accesses generated per pattern.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Generators always produce at least one access.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Generates the offsets for `seed`.
    pub fn generate_offsets(&self, seed: u64) -> Vec<i64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..self.n)
            .map(|_| rng.gen_range(self.min_offset..=self.max_offset))
            .collect()
    }

    /// Generates a full [`AccessPattern`] for `seed`.
    pub fn generate(&self, seed: u64) -> AccessPattern {
        AccessPattern::from_offsets(&self.generate_offsets(seed), self.stride)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = PatternGenerator::new(16).offset_span(5);
        assert_eq!(gen.generate_offsets(1), gen.generate_offsets(1));
        assert_ne!(gen.generate_offsets(1), gen.generate_offsets(2));
    }

    #[test]
    fn offsets_respect_the_range() {
        let gen = PatternGenerator::new(200).offset_range(-3, 7);
        let offsets = gen.generate_offsets(99);
        assert!(offsets.iter().all(|&o| (-3..=7).contains(&o)));
        // Both extremes are reachable over enough draws.
        assert!(offsets.iter().any(|&o| o < 0));
        assert!(offsets.iter().any(|&o| o > 5));
    }

    #[test]
    fn spread_presets_scale_with_m() {
        assert_eq!(Spread::Tight.span(1), 2);
        assert_eq!(Spread::Medium.span(1), 4);
        assert_eq!(Spread::Wide.span(2), 16);
        assert_eq!(Spread::Tight.span(0), 2, "m = 0 is clamped to 1");
        assert_eq!(Spread::all().len(), 3);
        assert_eq!(Spread::Medium.name(), "medium");
    }

    #[test]
    fn pattern_carries_stride() {
        let p = PatternGenerator::new(4).stride(-2).generate(0);
        assert_eq!(p.stride(), -2);
        assert_eq!(p.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn zero_length_generators_are_rejected() {
        let _ = PatternGenerator::new(0);
    }

    #[test]
    #[should_panic(expected = "empty offset range")]
    fn inverted_ranges_are_rejected() {
        let _ = PatternGenerator::new(1).offset_range(3, -3);
    }
}
