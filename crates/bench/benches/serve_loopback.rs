//! Serve-loopback throughput: requests through the NDJSON protocol
//! handler, bypassing sockets, to isolate what serve mode actually
//! buys — cross-request reuse of one warm allocation cache.
//!
//! Three configurations over the same request mix (the kernel suite as
//! individual compile requests, shapes repeating across "clients"):
//!
//! * `fresh_server_per_request` — the batch posture serve mode
//!   replaces: every request pays a cold cache.
//! * `shared_server` — one long-lived server; steady-state requests
//!   are all cache hits.
//! * `shared_server_bounded` — the same, under a bounded cache with
//!   FIFO eviction, to show the policy's overhead is negligible.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use raco_driver::json::Json;
use raco_driver::{CachePolicy, Parallelism, PipelineConfig};
use raco_ir::AguSpec;
use raco_serve::Server;

/// One compile request line per kernel: the shape of client traffic,
/// where every request is small and shapes recur endlessly.
fn request_mix() -> Vec<String> {
    raco_kernels::suite()
        .iter()
        .map(|kernel| {
            Json::Obj(vec![
                ("op".to_owned(), Json::str("compile")),
                ("name".to_owned(), Json::str(kernel.name())),
                ("source".to_owned(), Json::str(kernel.source())),
            ])
            .render()
        })
        .collect()
}

fn config(policy: CachePolicy) -> PipelineConfig {
    let mut config = PipelineConfig::new(AguSpec::new(4, 1).unwrap());
    // Requests are single loops: sequential per request matches how a
    // service would schedule many small independent requests.
    config.parallelism = Parallelism::Sequential;
    config.validation_iterations = 4;
    config.cache_policy = policy;
    config
}

fn run_mix(server: &Server, requests: &[String]) -> usize {
    let mut ok = 0;
    for request in requests {
        let reply = server.handle_line(request);
        assert!(
            reply.line.contains("\"ok\":true"),
            "request failed: {reply:?}"
        );
        ok += 1;
    }
    ok
}

fn bench_serve_loopback(c: &mut Criterion) {
    let requests = request_mix();
    let mut group = c.benchmark_group("serve_loopback");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(requests.len() as u64));

    group.bench_function("fresh_server_per_request", |b| {
        b.iter(|| {
            // No serve mode: every request lands on a cold cache.
            let server = Server::new(config(CachePolicy::Unbounded));
            run_mix(&server, &requests)
        });
    });

    let shared = Server::new(config(CachePolicy::Unbounded));
    run_mix(&shared, &requests); // prime: steady state is all-hits
    group.bench_function("shared_server", |b| {
        b.iter(|| run_mix(&shared, &requests));
    });

    let bounded = Server::new(config(CachePolicy::Bounded(256)));
    run_mix(&bounded, &requests);
    group.bench_function("shared_server_bounded", |b| {
        b.iter(|| run_mix(&bounded, &requests));
    });

    group.finish();

    let stats = shared.pipeline().cache_stats();
    assert!(
        stats.allocation_hits > stats.allocation_misses,
        "steady state must be hit-dominated: {stats:?}"
    );
}

criterion_group!(benches, bench_serve_loopback);
criterion_main!(benches);
