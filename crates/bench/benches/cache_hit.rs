//! The warm-hit path in isolation: what does one allocation-cache hit
//! cost?
//!
//! Before allocations were shared behind `Arc`, every warm hit
//! deep-cloned the `Allocation` out of the cache — covers, distance
//! model, both phase reports, the whole merge trajectory — because
//! `LoopAllocation::from_parts` took owned values. Now a hit is an
//! `Arc` pointer bump. This bench pins that claim:
//!
//! * `warm_hit/arc` — the shipped hit path: look up, clone the `Arc`.
//! * `warm_hit/deep_clone` — the pre-Arc hit path, kept as the
//!   baseline: look up, then `.as_ref().clone()` the allocation the
//!   way `from_parts` used to force. The ratio between these two rows
//!   is the PR's ≥2× acceptance criterion.
//! * `warm_hit/loop_assembly` — a whole warm `LoopAllocation` built
//!   from cache hits (curves + allocations + partition), the unit the
//!   pipeline actually assembles per loop.
//!
//! A second group measures the snapshot codec (`raco_driver::persist`)
//! so cache persistence stays honest about its own boot cost:
//! `snapshot/encode` and `snapshot/decode` over the same warm cache.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use raco_core::{LoopAllocation, Optimizer, OptimizerOptions};
use raco_driver::{persist, AllocationCache};
use raco_ir::{dsl, AguSpec, CanonicalPattern, LoopSpec};

/// A loop whose tap chains produce substantial allocations: long
/// scattered access patterns make the deep clone (covers + phase
/// reports + trajectories) expensive enough to see, which is exactly
/// the regime where serve-mode traffic lives.
fn workload_spec() -> LoopSpec {
    dsl::parse_loop(
        "for (i = 8; i < 500; i++) {
            acc = a[i] + a[i - 3] + a[i + 3] + a[i - 7] + a[i + 7]
                + a[i - 2] + a[i + 5] + a[i - 8] + a[i + 1] + a[i - 5]
                + b[i] + b[i - 1] + b[i + 6] + b[i - 6] + b[i + 2];
        }",
    )
    .expect("workload parses")
}

/// Warms one cache with every (curve, allocation) entry the workload
/// needs, returning what a warm `allocate` call looks up per pattern:
/// `(canonical, granted registers)`.
fn warm(cache: &AllocationCache, spec: &LoopSpec, agu: AguSpec) -> Vec<(CanonicalPattern, usize)> {
    let options = OptimizerOptions::default();
    let optimizer = Optimizer::with_options(agu, options);
    let k = agu.address_registers();
    let patterns = spec.patterns();
    let curves: Vec<Vec<u32>> = patterns
        .iter()
        .map(|p| {
            cache
                .cost_curve(
                    &CanonicalPattern::of(p),
                    agu.update_range(),
                    k,
                    &options,
                    || optimizer.cost_curve(p, k),
                )
                .as_ref()
                .clone()
        })
        .collect();
    let grants = raco_core::partition::distribute_registers(&curves, k).expect("arity fits");
    patterns
        .iter()
        .zip(&grants)
        .map(|(pattern, &granted)| {
            let canonical = CanonicalPattern::of(pattern);
            let _ = cache.allocation(&canonical, agu.update_range(), granted, &options, || {
                optimizer.allocate_with_registers(pattern, granted)
            });
            (canonical, granted)
        })
        .collect()
}

fn bench_warm_hit(c: &mut Criterion) {
    let agu = AguSpec::new(6, 1).unwrap();
    let options = OptimizerOptions::default();
    let spec = workload_spec();
    let cache = AllocationCache::new();
    let lookups = warm(&cache, &spec, agu);

    let mut group = c.benchmark_group("warm_hit");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200))
        .throughput(Throughput::Elements(lookups.len() as u64));

    // The shipped hit path: an Arc clone per hit, no allocation data
    // copied. This is what Pipeline::allocate does per warm pattern.
    group.bench_function("arc", |b| {
        b.iter(|| {
            let mut registers = 0;
            for (canonical, granted) in &lookups {
                let hit =
                    cache.allocation(canonical, agu.update_range(), *granted, &options, || {
                        panic!("warm bench must never miss")
                    });
                registers += hit.register_count();
            }
            registers
        });
    });

    // The pre-Arc hit path (what `from_parts` used to force on every
    // hit): identical lookup, then a deep clone of the value. The
    // acceptance bar is arc ≥ 2× faster than this row.
    group.bench_function("deep_clone", |b| {
        b.iter(|| {
            let mut registers = 0;
            for (canonical, granted) in &lookups {
                let hit =
                    cache.allocation(canonical, agu.update_range(), *granted, &options, || {
                        panic!("warm bench must never miss")
                    });
                let owned = hit.as_ref().clone();
                registers += owned.register_count();
            }
            registers
        });
    });

    // One whole warm loop allocation, the pipeline's per-loop unit:
    // curve hits feed the register partition, allocation hits fill
    // `LoopAllocation::from_parts` without cloning.
    group.bench_function("loop_assembly", |b| {
        let patterns = spec.patterns();
        let k = agu.address_registers();
        b.iter(|| {
            let curves: Vec<Vec<u32>> = patterns
                .iter()
                .map(|p| {
                    cache
                        .cost_curve(
                            &CanonicalPattern::of(p),
                            agu.update_range(),
                            k,
                            &options,
                            || panic!("warm bench must never miss"),
                        )
                        .as_ref()
                        .clone()
                })
                .collect();
            let grants = raco_core::partition::distribute_registers(&curves, k).unwrap();
            let per_array: Vec<_> = patterns
                .iter()
                .zip(&grants)
                .map(|(pattern, &granted)| {
                    let hit = cache.allocation(
                        &CanonicalPattern::of(pattern),
                        agu.update_range(),
                        granted,
                        &options,
                        || panic!("warm bench must never miss"),
                    );
                    (pattern.array(), hit)
                })
                .collect();
            LoopAllocation::from_parts(per_array, grants, options.cost_model).total_registers()
        });
    });
    group.finish();

    // Semantic proof of "zero-clone", independent of timing noise: two
    // warm hits hand back the *same* allocation memory.
    let (canonical, granted) = &lookups[0];
    let a = cache.allocation(canonical, agu.update_range(), *granted, &options, || {
        panic!("must hit")
    });
    let b = cache.allocation(canonical, agu.update_range(), *granted, &options, || {
        panic!("must hit")
    });
    assert!(Arc::ptr_eq(&a, &b), "warm hits must share one allocation");
}

fn bench_snapshot_codec(c: &mut Criterion) {
    let agu = AguSpec::new(6, 1).unwrap();
    let spec = workload_spec();
    let cache = AllocationCache::new();
    let entries = warm(&cache, &spec, agu).len() * 2; // allocations + curves
    let bytes = persist::encode(&cache);

    let mut group = c.benchmark_group("snapshot");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(200))
        .throughput(Throughput::Elements(entries as u64));

    group.bench_function("encode", |b| {
        b.iter(|| persist::encode(&cache).len());
    });

    group.bench_function("decode", |b| {
        b.iter(|| {
            let fresh = AllocationCache::new();
            let report = persist::decode_into(&fresh, &bytes);
            assert_eq!(report.skipped, 0);
            report.loaded()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_warm_hit, bench_snapshot_codec);
criterion_main!(benches);
