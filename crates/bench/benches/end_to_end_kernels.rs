//! End-to-end pipeline timing on real kernels: allocation, code
//! generation and a short verified simulation.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raco_agu::codegen::CodeGenerator;
use raco_agu::sim;
use raco_core::Optimizer;
use raco_ir::{AguSpec, MemoryLayout, Trace};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let agu = AguSpec::new(4, 1).unwrap();
    for kernel in [
        raco_kernels::fir(8),
        raco_kernels::biquad(),
        raco_kernels::n_complex_updates(),
        raco_kernels::fft_butterfly(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.name()),
            &kernel,
            |b, kernel| {
                let layout = MemoryLayout::contiguous(kernel.spec(), 0x800, 0x400);
                let trace = Trace::capture(kernel.spec(), &layout, 16);
                b.iter(|| {
                    let alloc = Optimizer::new(agu)
                        .allocate_loop(black_box(kernel.spec()))
                        .expect("kernels fit the machine");
                    let program = CodeGenerator::new(agu)
                        .generate(kernel.spec(), &alloc, &layout)
                        .expect("codegen succeeds");
                    let report = sim::run(&program, &trace, &agu).expect("verified");
                    black_box(report.explicit_updates_per_iteration());
                });
            },
        );
    }
    group.finish();
}

fn bench_allocation_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocate_loop");
    group
        .sample_size(40)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let agu = AguSpec::new(4, 1).unwrap();
    let suite = raco_kernels::suite();
    group.bench_function("whole_suite", |b| {
        b.iter(|| {
            for kernel in &suite {
                if kernel.spec().patterns().len() <= 4 {
                    black_box(
                        Optimizer::new(agu)
                            .allocate_loop(black_box(kernel.spec()))
                            .expect("fits")
                            .total_cost(),
                    );
                }
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_allocation_only);
criterion_main!(benches);
