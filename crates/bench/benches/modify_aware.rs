//! The modify-aware cost model vs the MR-blind baseline, on the
//! 19-kernel suite.
//!
//! Two questions, one per group:
//!
//! * `modify_aware/allocate/*` — what the MR-aware allocator costs in
//!   wall time. Pricing modify registers sweeps Phase-2 selection
//!   aggressiveness (`raco_core::Optimizer` runs the merge once per
//!   priced register count), so the aware rows pay more merges than the
//!   blind row; this group keeps that overhead honest.
//! * the printed quality table — predicted cycles per iteration across
//!   the suite, allocated blind (the pre-change model: modify registers
//!   only absorb deltas after the fact, so the allocator *over*-predicts)
//!   vs aware (predicted == measured). The `gap` column is exactly the
//!   measured-vs-predicted gap this model closes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use raco_core::{Optimizer, OptimizerOptions};
use raco_ir::AguSpec;

fn machine(modify_registers: usize) -> AguSpec {
    AguSpec::new(4, 1)
        .unwrap()
        .with_modify_registers(modify_registers)
}

/// Total predicted cost of the whole suite under `optimizer`.
fn suite_cost(optimizer: &Optimizer) -> u64 {
    raco_kernels::suite()
        .iter()
        .filter(|k| k.spec().patterns().len() <= optimizer.agu().address_registers())
        .map(|k| {
            u64::from(
                optimizer
                    .allocate_loop(k.spec())
                    .expect("kernels allocate")
                    .total_cost(),
            )
        })
        .sum()
}

fn bench_modify_aware(c: &mut Criterion) {
    let suite = raco_kernels::suite();

    // Quality table: per-kernel predicted cycles, blind vs aware, on a
    // 2-MR machine. "blind" allocates with the pre-change model and
    // then re-prices the chosen covers on the real machine (what the
    // generated code actually measures); "aware" is the new model.
    println!("modify_aware: predicted cycles per iteration (K = 4, M = 1, MR = 2)");
    println!(
        "{:<16} {:>6} {:>6} {:>4}",
        "kernel", "blind", "aware", "gap"
    );
    let agu = machine(2);
    let mut blind_total = 0u64;
    let mut aware_total = 0u64;
    for kernel in &suite {
        if kernel.spec().patterns().len() > agu.address_registers() {
            continue;
        }
        // The MR-blind allocator predicts as if no modify register
        // existed — the paper machine's number, which overshoots what
        // the emitted code measures on the MR-equipped machine.
        let blind = Optimizer::with_options(agu, OptimizerOptions::default())
            .allocate_loop(kernel.spec())
            .expect("kernels allocate")
            .total_cost();
        let aware = Optimizer::new(agu)
            .allocate_loop(kernel.spec())
            .expect("kernels allocate")
            .total_cost();
        blind_total += u64::from(blind);
        aware_total += u64::from(aware);
        println!(
            "{:<16} {:>6} {:>6} {:>4}",
            kernel.name(),
            blind,
            aware,
            blind.saturating_sub(aware)
        );
    }
    println!(
        "{:<16} {:>6} {:>6} {:>4}  (gap = measured-vs-predicted error the aware model closes)",
        "total",
        blind_total,
        aware_total,
        blind_total.saturating_sub(aware_total)
    );

    let mut group = c.benchmark_group("modify_aware/allocate");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5))
        .throughput(Throughput::Elements(suite.len() as u64));
    group.bench_function(BenchmarkId::new("blind", 0), |b| {
        let optimizer = Optimizer::with_options(machine(2), OptimizerOptions::default());
        b.iter(|| suite_cost(&optimizer));
    });
    for mr in [0usize, 2, 4] {
        group.bench_function(BenchmarkId::new("aware", mr), |b| {
            let optimizer = Optimizer::new(machine(mr));
            b.iter(|| suite_cost(&optimizer));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modify_aware);
criterion_main!(benches);
