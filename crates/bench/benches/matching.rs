//! Timing of the Hopcroft–Karp matching / relaxed minimum path cover
//! (the Phase-1 lower bound) on large patterns.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raco_core::random::{PatternGenerator, Spread};
use raco_graph::{matching, DistanceModel};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_min_path_cover");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for n in [32usize, 128, 512] {
        let generator = PatternGenerator::new(n).spread(Spread::Medium, 1);
        let models: Vec<DistanceModel> = (0..4)
            .map(|s| DistanceModel::new(&generator.generate(s), 1))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for dm in &models {
                    black_box(matching::min_path_cover(black_box(dm)).register_count());
                }
            });
        });
    }
    group.finish();
}

fn bench_cover_size_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching_size_only");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let generator = PatternGenerator::new(256).spread(Spread::Tight, 1);
    let models: Vec<DistanceModel> = (0..4)
        .map(|s| DistanceModel::new(&generator.generate(s), 1))
        .collect();
    group.bench_function("n256_tight", |b| {
        b.iter(|| {
            for dm in &models {
                black_box(matching::min_path_cover_size(black_box(dm)));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_matching, bench_cover_size_only);
criterion_main!(benches);
