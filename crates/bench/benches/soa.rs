//! Timing of the complementary offset-assignment algorithms (SOA/GOA).

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raco_oa::{goa, soa, AccessSequence, VarId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_sequence(vars: usize, len: usize, seed: u64) -> AccessSequence {
    let mut rng = SmallRng::seed_from_u64(seed);
    let accesses = (0..len)
        .map(|_| VarId(rng.gen_range(0..vars) as u32))
        .collect();
    AccessSequence::new(accesses, vars)
}

fn bench_liao(c: &mut Criterion) {
    let mut group = c.benchmark_group("soa_liao");
    group
        .sample_size(40)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for (vars, len) in [(8usize, 64usize), (16, 128), (32, 256)] {
        let seqs: Vec<AccessSequence> = (0..8).map(|s| random_sequence(vars, len, s)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("v{vars}_l{len}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    for seq in &seqs {
                        let layout = soa::liao(black_box(seq));
                        black_box(layout.cost(seq, 1));
                    }
                });
            },
        );
    }
    group.finish();
}

fn bench_goa(c: &mut Criterion) {
    let mut group = c.benchmark_group("goa");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let seqs: Vec<AccessSequence> = (0..4).map(|s| random_sequence(10, 60, s)).collect();
    for k in [2usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                for seq in &seqs {
                    black_box(goa::run(black_box(seq), k).cost());
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_liao, bench_goa);
criterion_main!(benches);
