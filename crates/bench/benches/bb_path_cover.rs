//! Timing of Phase 1: exact branch-and-bound minimum zero-cost cover
//! (with bounds pre-pass) as the pattern size `N` grows.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raco_core::random::{PatternGenerator, Spread};
use raco_graph::{bb, BbOptions, DistanceModel};

fn bench_bb(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_bb");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for n in [8usize, 16, 24, 32] {
        // A fixed bag of patterns so every sample sees the same workload.
        let generator = PatternGenerator::new(n).spread(Spread::Medium, 1);
        let models: Vec<DistanceModel> = (0..16)
            .map(|s| DistanceModel::new(&generator.generate(s), 1))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for dm in &models {
                    let result = bb::min_zero_cost_cover_with(
                        black_box(dm),
                        BbOptions {
                            node_limit: 500_000,
                            memoize: true,
                        },
                    );
                    black_box(result.map(|r| r.virtual_registers()).ok());
                }
            });
        });
    }
    group.finish();
}

fn bench_bb_memoization(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_bb_memoization");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let generator = PatternGenerator::new(20).spread(Spread::Wide, 1);
    let models: Vec<DistanceModel> = (0..8)
        .map(|s| DistanceModel::new(&generator.generate(s), 1))
        .collect();
    for memoize in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if memoize { "memo" } else { "no_memo" }),
            &memoize,
            |b, &memoize| {
                b.iter(|| {
                    for dm in &models {
                        let result = bb::min_zero_cost_cover_with(
                            black_box(dm),
                            BbOptions {
                                node_limit: 500_000,
                                memoize,
                            },
                        );
                        black_box(result.ok());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bb, bench_bb_memoization);
criterion_main!(benches);
