//! Batch-pipeline throughput: cold cache vs warm cache.
//!
//! The workload is several compilation units: the full kernel suite
//! plus, per unit, a distinct smoothing loop whose base offsets are
//! shifted per copy — the shape of real batch traffic, where the same
//! kernels come back again and again under different surroundings.
//! Repeated units hit the cache by key equality; the shifted loops hit
//! it through offset canonicalization. Cold runs disable the
//! allocation cache; warm runs share one pipeline (and thus one cache)
//! across iterations. Throughput is reported in loops per second.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use raco_driver::{Parallelism, Pipeline, PipelineConfig};
use raco_ir::AguSpec;

/// `copies` units: each carries the whole kernel suite (repeated
/// shapes → cache hits by key equality) plus one per-copy smoothing
/// loop over distinct arrays at per-copy base offsets (distinct
/// sources whose patterns still canonicalize identically → cache hits
/// through shift normalization).
fn workload(copies: usize) -> Vec<(String, String)> {
    let base = raco_kernels::suite_program();
    (0..copies)
        .map(|c| {
            let source = format!(
                "// copy {c}\n{base}\n\
                 for (i = {lo}; i < 256; i++) {{\n    \
                     s{c}[i] = d{c}[i - {shift}] + d{c}[i - {prev}] + d{c}[i - {next}];\n\
                 }}\n",
                lo = 8 + c,
                shift = c + 1,
                prev = c + 2,
                next = c,
            );
            (format!("unit{c}"), source)
        })
        .collect()
}

fn config(agu: AguSpec, caching: bool) -> PipelineConfig {
    let mut config = PipelineConfig::new(agu);
    config.caching = caching;
    config.validation_iterations = 4;
    config.parallelism = Parallelism::Auto;
    config
}

fn bench_pipeline_cache(c: &mut Criterion) {
    let agu = AguSpec::new(4, 1).unwrap();
    let units = workload(4);
    // Suite loops plus the per-copy smoothing loop, per unit.
    let loops = units.len() * (raco_kernels::suite().len() + 1);

    let mut group = c.benchmark_group("pipeline_batch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
        .throughput(Throughput::Elements(loops as u64));

    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            // A fresh pipeline with caching off: every loop re-runs
            // branch-and-bound and the merge trajectory.
            let pipeline = Pipeline::with_config(config(agu, false));
            let report = pipeline.compile_units(&units).expect("workload parses");
            assert_eq!(report.failed(), 0);
            report.loop_count()
        });
    });

    let warm = Pipeline::with_config(config(agu, true));
    // Prime the cache once so every measured iteration is all-hits —
    // the steady state of a long-running batch service.
    let primed = warm.compile_units(&units).expect("workload parses");
    assert_eq!(primed.failed(), 0);
    group.bench_function("warm_cache", |b| {
        b.iter(|| {
            let report = warm.compile_units(&units).expect("workload parses");
            assert_eq!(report.failed(), 0);
            report.loop_count()
        });
    });
    group.finish();
}

fn bench_single_unit_scaling(c: &mut Criterion) {
    let agu = AguSpec::new(4, 1).unwrap();
    let mut group = c.benchmark_group("pipeline_threads");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for threads in [1usize, 4] {
        let units = workload(2);
        group.bench_function(format!("threads_{threads}"), |b| {
            let mut cfg = config(agu, true);
            cfg.parallelism = Parallelism::Fixed(threads);
            let pipeline = Pipeline::with_config(cfg);
            b.iter(|| {
                pipeline
                    .compile_units(&units)
                    .expect("workload parses")
                    .loop_count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_cache, bench_single_unit_scaling);
criterion_main!(benches);
