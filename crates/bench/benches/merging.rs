//! Timing of Phase 2: greedy min-cost path merging from `K̃` all the way
//! down to one register, by pattern size and strategy.

use std::hint::black_box;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use raco_core::random::{PatternGenerator, Spread};
use raco_core::{phase1, phase2, CostModel, MergeStrategy};
use raco_graph::{BbOptions, DistanceModel, PathCover};

fn prepared_covers(n: usize, count: u64) -> Vec<(DistanceModel, PathCover)> {
    let generator = PatternGenerator::new(n).spread(Spread::Medium, 1);
    (0..count)
        .map(|s| {
            let dm = DistanceModel::new(&generator.generate(s), 1);
            let p1 = phase1::run(
                &dm,
                BbOptions {
                    node_limit: 200_000,
                    memoize: true,
                },
            );
            let cover = p1.cover().clone();
            (dm, cover)
        })
        .collect()
}

fn bench_merging(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase2_merge_to_one");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for n in [16usize, 32, 64] {
        let inputs = prepared_covers(n, 8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for (dm, cover) in &inputs {
                    let report = phase2::merge_until(
                        black_box(cover),
                        1,
                        dm,
                        CostModel::steady_state(),
                        MergeStrategy::GreedyMinCost,
                    );
                    black_box(report.cover().register_count());
                }
            });
        });
    }
    group.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase2_strategy");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    let inputs = prepared_covers(32, 8);
    for (label, strategy) in [
        ("greedy", MergeStrategy::GreedyMinCost),
        ("random", MergeStrategy::Random { seed: 1 }),
        ("first_pair", MergeStrategy::FirstPair),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &strategy,
            |b, strategy| {
                b.iter(|| {
                    for (dm, cover) in &inputs {
                        let report = phase2::merge_until(
                            black_box(cover),
                            2,
                            dm,
                            CostModel::steady_state(),
                            *strategy,
                        );
                        black_box(report.cover().register_count());
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merging, bench_strategies);
criterion_main!(benches);
