//! Markdown and CSV table output.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A simple table with string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown with a title line
    /// and column-aligned cells.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&dashes, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (headers first, comma-separated; cells
    /// containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the filesystem.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.to_csv())
    }

    /// Prints the Markdown form to stdout and writes the CSV next to the
    /// experiments directory under `<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.to_markdown());
        let path = crate::experiments_dir().join(format!("{name}.csv"));
        match self.write_csv(&path) {
            Ok(()) => println!("(csv written to {})\n", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
}

/// Formats a float with one decimal digit (table cells).
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimal digits (table cells).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22".into()]);
        t
    }

    #[test]
    fn markdown_is_aligned() {
        let md = sample().to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| name  | value |"));
        assert!(md.contains("| alpha | 1     |"));
        assert!(md.contains("| ----- | ----- |"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\",\"say \"\"hi\"\"\""));
    }

    #[test]
    fn row_width_is_validated() {
        let mut t = Table::new("x", &["a", "b"]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.push_row(vec!["only-one".into()]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f1(39.96), "40.0");
        assert_eq!(f2(1.005), "1.00"); // bankers-ish rounding is fine
    }

    #[test]
    fn len_and_is_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(Table::new("t", &["x"]).is_empty());
    }
}
