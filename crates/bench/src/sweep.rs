//! The statistical random-pattern sweep (experiment E3, Results ¶1).
//!
//! Section 4 of the paper: *"We have determined the number of unit-cost
//! address computations for random access patterns and a variety of
//! parameters N, M, and K. […] the address register allocation determined
//! by path merging reduces the addressing cost by about 40 % on the
//! average, as compared to the 'naive' solution."*
//!
//! The sweep reproduces exactly that comparison: for every parameter cell
//! `(N, M, K, spread)` it draws seeded random patterns, runs Phase 1 once
//! per pattern and then merges the same Phase-1 cover twice — once with
//! the paper's greedy min-cost strategy and once with the naive
//! arbitrary-pair baseline — and reports the mean costs and the relative
//! reduction.

use raco_core::random::{PatternGenerator, Spread};
use raco_core::{phase1, phase2, CostModel, MergeStrategy};
use raco_graph::{BbOptions, DistanceModel};

use crate::stats::{reduction_percent, Summary};

/// One parameter cell of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Accesses per pattern (the paper's `N`).
    pub n: usize,
    /// Auto-modify range (the paper's `M`).
    pub m: u32,
    /// Physical address registers (the paper's `K`).
    pub k: usize,
    /// Offset-distribution preset.
    pub spread: Spread,
}

/// Aggregated results of one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell parameters.
    pub key: CellKey,
    /// Greedy (paper) merge costs.
    pub greedy: Summary,
    /// Naive (arbitrary-pair) merge costs.
    pub naive: Summary,
    /// Mean number of virtual registers `K̃`.
    pub mean_virtual_registers: f64,
    /// Fraction of samples where the register constraint actually bound
    /// (`K < K̃`), i.e. where merging happened at all.
    pub constrained_fraction: f64,
    /// Mean cost reduction of greedy vs naive, in percent.
    pub reduction_pct: f64,
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepConfig {
    /// Values of `N` to sweep.
    pub ns: Vec<usize>,
    /// Values of `M` to sweep.
    pub ms: Vec<u32>,
    /// Values of `K` to sweep.
    pub ks: Vec<usize>,
    /// Offset spreads to sweep.
    pub spreads: Vec<Spread>,
    /// Random patterns per cell.
    pub samples: usize,
    /// Base RNG seed (same seed ⇒ identical tables).
    pub base_seed: u64,
    /// Phase-1 branch-and-bound node budget per pattern.
    pub node_limit: u64,
}

impl Default for SweepConfig {
    /// The grid used by experiment E3: `N ∈ {8, 12, 16, 20, 24, 32}`,
    /// `M ∈ {1, 2, 4}`, `K ∈ {1, 2, 3, 4}`, all three spreads,
    /// 200 samples per cell.
    fn default() -> Self {
        SweepConfig {
            ns: vec![8, 12, 16, 20, 24, 32],
            ms: vec![1, 2, 4],
            ks: vec![1, 2, 3, 4],
            spreads: Spread::all().to_vec(),
            samples: 200,
            base_seed: 0x5EED_DA7E,
            node_limit: 200_000,
        }
    }
}

/// Derives a per-sample seed from the cell parameters (splitmix64-style
/// mixing so neighbouring cells do not share patterns).
pub fn sample_seed(base: u64, key: &CellKey, sample: usize) -> u64 {
    let mut z = base
        ^ (key.n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(key.m).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ (key.k as u64).wrapping_mul(0x94D0_49BB_1331_11EB)
        ^ (key.spread.span(key.m) as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
        ^ (sample as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The cost of one pattern under both merge strategies:
/// `(greedy, naive, virtual_registers)`.
pub fn measure_pattern(
    dm: &DistanceModel,
    k: usize,
    node_limit: u64,
    naive_seed: u64,
) -> (u32, u32, usize) {
    let cost_model = CostModel::steady_state();
    let p1 = phase1::run(
        dm,
        BbOptions {
            node_limit,
            memoize: true,
        },
    );
    let greedy = phase2::merge_until(p1.cover(), k, dm, cost_model, MergeStrategy::GreedyMinCost);
    let naive = phase2::merge_until(
        p1.cover(),
        k,
        dm,
        cost_model,
        MergeStrategy::Random { seed: naive_seed },
    );
    (
        cost_model.cover_cost(greedy.cover(), dm),
        cost_model.cover_cost(naive.cover(), dm),
        p1.virtual_registers(),
    )
}

/// Runs one cell of the sweep.
pub fn run_cell(key: CellKey, samples: usize, base_seed: u64, node_limit: u64) -> CellResult {
    let generator = PatternGenerator::new(key.n).spread(key.spread, key.m);
    let mut greedy_costs = Vec::with_capacity(samples);
    let mut naive_costs = Vec::with_capacity(samples);
    let mut virt_total = 0usize;
    let mut constrained = 0usize;
    for s in 0..samples {
        let seed = sample_seed(base_seed, &key, s);
        let pattern = generator.generate(seed);
        let dm = DistanceModel::new(&pattern, key.m);
        let (g, nv, virt) = measure_pattern(&dm, key.k, node_limit, seed ^ 0x00C0_FFEE);
        greedy_costs.push(f64::from(g));
        naive_costs.push(f64::from(nv));
        virt_total += virt;
        if virt > key.k {
            constrained += 1;
        }
    }
    let greedy = Summary::of(&greedy_costs);
    let naive = Summary::of(&naive_costs);
    let reduction_pct = reduction_percent(naive.mean, greedy.mean);
    CellResult {
        key,
        greedy,
        naive,
        mean_virtual_registers: virt_total as f64 / samples as f64,
        constrained_fraction: constrained as f64 / samples as f64,
        reduction_pct,
    }
}

/// Runs the whole sweep grid.
pub fn run_sweep(config: &SweepConfig) -> Vec<CellResult> {
    let mut results = Vec::new();
    for &spread in &config.spreads {
        for &n in &config.ns {
            for &m in &config.ms {
                for &k in &config.ks {
                    let key = CellKey { n, m, k, spread };
                    results.push(run_cell(
                        key,
                        config.samples,
                        config.base_seed,
                        config.node_limit,
                    ));
                }
            }
        }
    }
    results
}

/// Average reduction over all cells where the naive baseline actually
/// paid something (cells where both strategies are free carry no signal).
pub fn overall_reduction(results: &[CellResult]) -> f64 {
    let informative: Vec<f64> = results
        .iter()
        .filter(|c| c.naive.mean > 0.0)
        .map(|c| c.reduction_pct)
        .collect();
    if informative.is_empty() {
        return 0.0;
    }
    informative.iter().sum::<f64>() / informative.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cell() -> CellKey {
        CellKey {
            n: 10,
            m: 1,
            k: 2,
            spread: Spread::Medium,
        }
    }

    #[test]
    fn cells_are_reproducible() {
        let a = run_cell(small_cell(), 25, 1, 100_000);
        let b = run_cell(small_cell(), 25, 1, 100_000);
        assert_eq!(a.greedy.mean, b.greedy.mean);
        assert_eq!(a.naive.mean, b.naive.mean);
    }

    #[test]
    fn greedy_beats_naive_on_average() {
        let cell = run_cell(small_cell(), 50, 42, 100_000);
        assert!(
            cell.greedy.mean <= cell.naive.mean,
            "greedy {} vs naive {}",
            cell.greedy.mean,
            cell.naive.mean
        );
        assert!(cell.reduction_pct >= 0.0);
        assert!(cell.mean_virtual_registers >= 1.0);
    }

    #[test]
    fn generous_registers_make_both_free() {
        let cell = run_cell(
            CellKey {
                n: 6,
                m: 2,
                k: 6,
                spread: Spread::Tight,
            },
            30,
            7,
            100_000,
        );
        assert_eq!(cell.greedy.mean, 0.0);
        assert_eq!(cell.naive.mean, 0.0);
        assert_eq!(cell.constrained_fraction, 0.0);
    }

    #[test]
    fn sample_seeds_differ_across_cells_and_samples() {
        let k1 = small_cell();
        let mut k2 = small_cell();
        k2.n = 11;
        assert_ne!(sample_seed(1, &k1, 0), sample_seed(1, &k2, 0));
        assert_ne!(sample_seed(1, &k1, 0), sample_seed(1, &k1, 1));
        assert_ne!(sample_seed(1, &k1, 0), sample_seed(2, &k1, 0));
    }

    #[test]
    fn overall_reduction_ignores_free_cells() {
        let free = run_cell(
            CellKey {
                n: 4,
                m: 4,
                k: 4,
                spread: Spread::Tight,
            },
            10,
            3,
            100_000,
        );
        let paid = run_cell(small_cell(), 10, 3, 100_000);
        let overall = overall_reduction(&[free.clone(), paid.clone()]);
        assert_eq!(overall, paid.reduction_pct);
        assert_eq!(overall_reduction(&[free]), 0.0);
    }
}
