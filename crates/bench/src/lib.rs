//! # raco-bench — the paper-reproduction experiment harness
//!
//! One binary per experiment (see `DESIGN.md` §5 and `EXPERIMENTS.md`):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `e1_figure1` | Figure 1 — the graph model of the example loop |
//! | `e2_example` | the Section 2/3 worked example (K̃, merging, codegen) |
//! | `e3_random_sweep` | Results ¶1 — ~40 % average cost reduction vs naive |
//! | `e4_kernels` | Results ¶2 — code-size / speed improvement on kernels |
//! | `e5_bounds` | ablation: phase-1 bounds tightness and search effort |
//! | `e6_ablation` | ablation: merge strategies, cost models, optimality gap |
//! | `e7_modify_regs` | extension: modify registers (ref \[2\] machine) |
//! | `e8_offset_assignment` | complementary SOA/GOA (refs \[4, 5\]) |
//!
//! Each binary prints a Markdown table and writes a CSV next to the build
//! tree (`target/experiments/`). All randomness is seeded; re-running
//! reproduces identical tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels_exp;
pub mod stats;
pub mod sweep;
pub mod table;
pub mod trajectory;

use std::path::PathBuf;

/// Directory where experiment CSVs are written
/// (`<workspace>/target/experiments`).
pub fn experiments_dir() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop(); // crates/
    dir.pop(); // workspace root
    dir.push("target");
    dir.push("experiments");
    std::fs::create_dir_all(&dir).expect("can create target/experiments");
    dir
}

/// Parses `--key value` style options from `std::env::args`, returning
/// the value for `key` if present.
pub fn arg_value(key: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == key {
            return args.next();
        }
    }
    None
}

/// Parses `--samples N` (default `default`).
pub fn samples_arg(default: usize) -> usize {
    arg_value("--samples")
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    #[test]
    fn experiments_dir_exists_after_call() {
        let dir = super::experiments_dir();
        assert!(dir.ends_with("target/experiments"));
        assert!(dir.is_dir());
    }
}
