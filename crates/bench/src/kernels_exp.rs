//! Kernel compilation-model comparison (experiments E4 and E7).
//!
//! Three compilation models per kernel:
//!
//! 1. **explicit** — a regular C compiler without AGU optimization:
//!    every access recomputes its address in the data path (two
//!    instructions per access);
//! 2. **chain** — naive AGU use: the minimum number of registers (one
//!    per array), each serving its array's accesses in original order
//!    with no allocation intelligence;
//! 3. **optimized** — the paper's two-phase allocation on `K` registers
//!    (optionally with modify registers), emitted by `raco-agu` and
//!    *verified by simulation* before being reported.

use raco_agu::codegen::CodeGenerator;
use raco_agu::metrics::{improvement_percent, ProgramMetrics};
use raco_agu::sim;
use raco_core::Optimizer;
use raco_graph::{DistanceModel, PathCover};
use raco_ir::{AguSpec, MemoryLayout, Trace};
use raco_kernels::Kernel;

/// The comparison row of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Accesses per iteration.
    pub accesses: usize,
    /// Compute (data-path) instructions per iteration.
    pub compute: u64,
    /// Explicit-addressing baseline: code words.
    pub explicit_words: u64,
    /// Explicit-addressing baseline: total cycles.
    pub explicit_cycles: u64,
    /// Naive chaining: code words.
    pub chain_words: u64,
    /// Naive chaining: total cycles.
    pub chain_cycles: u64,
    /// Optimized: code words.
    pub opt_words: u64,
    /// Optimized: total cycles.
    pub opt_cycles: u64,
    /// Code-size improvement vs explicit addressing, percent.
    pub size_improvement_pct: f64,
    /// Speed improvement vs explicit addressing, percent.
    pub speed_improvement_pct: f64,
}

/// Compares the three compilation models on one kernel.
///
/// The optimized program is generated and simulated against the reference
/// trace; a mismatch panics (it would be a codegen bug, and silently
/// reporting numbers from broken code would be worse).
///
/// # Panics
///
/// Panics if the kernel needs more arrays than `k` registers, or if the
/// generated code fails simulation.
pub fn compare_kernel(kernel: &Kernel, agu: AguSpec, iterations: u64) -> KernelRow {
    let spec = kernel.spec();
    let compute = kernel.compute_ops();
    let n = spec.len();

    // Model 1: explicit addressing.
    let explicit = ProgramMetrics::explicit_addressing(n);

    // Model 2: naive chaining — one register per array, accesses served
    // in original order (single chain per array).
    let arrays = spec.patterns();
    let chain_cost: u64 = arrays
        .iter()
        .map(|p| {
            let dm = DistanceModel::with_range(p, agu.update_range());
            u64::from(PathCover::single_chain(p.len()).total_cost(&dm, true))
        })
        .sum();
    let chain = ProgramMetrics::synthetic(arrays.len() as u64, chain_cost, n as u64);

    // Model 3: the paper's optimizer, emitted and verified.
    let alloc = Optimizer::new(agu)
        .allocate_loop(spec)
        .unwrap_or_else(|e| panic!("kernel {} does not allocate: {e}", kernel.name()));
    let layout = MemoryLayout::contiguous(spec, 0x1000, 0x400);
    let program = CodeGenerator::new(agu)
        .generate(spec, &alloc, &layout)
        .unwrap_or_else(|e| panic!("kernel {} does not emit: {e}", kernel.name()));
    let trace = Trace::capture(spec, &layout, iterations);
    let report = sim::run(&program, &trace, &agu)
        .unwrap_or_else(|e| panic!("kernel {} fails simulation: {e}", kernel.name()));
    assert_eq!(
        report.explicit_updates_per_iteration(),
        program.cycles_per_iteration(),
        "simulation and static accounting must agree"
    );
    let opt = ProgramMetrics::of(&program);

    let explicit_words = explicit.code_words(compute);
    let explicit_cycles = explicit.cycles(compute, iterations);
    let opt_words = opt.code_words(compute);
    let opt_cycles = opt.cycles(compute, iterations);
    KernelRow {
        name: kernel.name().to_owned(),
        accesses: n,
        compute,
        explicit_words,
        explicit_cycles,
        chain_words: chain.code_words(compute),
        chain_cycles: chain.cycles(compute, iterations),
        opt_words,
        opt_cycles,
        size_improvement_pct: improvement_percent(explicit_words, opt_words),
        speed_improvement_pct: improvement_percent(explicit_cycles, opt_cycles),
    }
}

/// Runs the comparison over a whole suite.
pub fn compare_suite(kernels: &[Kernel], agu: AguSpec, iterations: u64) -> Vec<KernelRow> {
    kernels
        .iter()
        .map(|k| compare_kernel(k, agu, iterations))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fir_improves_both_axes() {
        let agu = AguSpec::new(4, 1).unwrap();
        let row = compare_kernel(&raco_kernels::fir(4), agu, 128);
        assert!(row.size_improvement_pct > 0.0, "{row:?}");
        assert!(row.speed_improvement_pct > 0.0, "{row:?}");
        assert!(row.opt_cycles < row.chain_cycles || row.chain_cycles == row.opt_cycles);
    }

    #[test]
    fn optimized_never_loses_to_naive_chaining_on_cycles() {
        let agu = AguSpec::new(6, 1).unwrap();
        for kernel in raco_kernels::suite() {
            if kernel.spec().patterns().len() > agu.address_registers() {
                continue;
            }
            let row = compare_kernel(&kernel, agu, 64);
            assert!(
                row.opt_cycles <= row.chain_cycles,
                "{}: optimized {} vs chain {}",
                row.name,
                row.opt_cycles,
                row.chain_cycles
            );
        }
    }

    #[test]
    fn suite_comparison_is_reproducible() {
        let agu = AguSpec::new(4, 1).unwrap();
        let kernels = vec![raco_kernels::dot_product(), raco_kernels::biquad()];
        let a = compare_suite(&kernels, agu, 32);
        let b = compare_suite(&kernels, agu, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn modify_registers_help_the_matmul_column() {
        let plain = AguSpec::new(4, 1).unwrap();
        let with_mr = AguSpec::new(4, 1).unwrap().with_modify_registers(2);
        let kernel = raco_kernels::matmul_inner(8);
        let a = compare_kernel(&kernel, plain, 64);
        let b = compare_kernel(&kernel, with_mr, 64);
        assert!(
            b.opt_cycles < a.opt_cycles,
            "modify registers must absorb the stride-8 wraps: {} vs {}",
            b.opt_cycles,
            a.opt_cycles
        );
    }
}
