//! E4 — realistic DSP kernels (Results ¶2): code-size and speed
//! improvements of optimized AGU addressing versus a regular C compiler's
//! explicit addressing. The paper (citing its ref \[1\]) reports
//! improvements of up to 30 % in code size and up to 60 % in speed.

use raco_bench::kernels_exp::compare_suite;
use raco_bench::table::{f1, Table};
use raco_ir::AguSpec;

fn main() {
    let iterations = 256;
    println!("E4 — kernel suite, optimized AGU vs explicit addressing ({iterations} iterations)\n");

    for k in [2usize, 4, 6] {
        let agu = AguSpec::new(k, 1).unwrap();
        let kernels: Vec<_> = raco_kernels::suite()
            .into_iter()
            .filter(|kernel| kernel.spec().patterns().len() <= k)
            .collect();
        let rows = compare_suite(&kernels, agu, iterations);

        let mut table = Table::new(
            &format!("Kernel comparison, K = {k}, M = 1"),
            &[
                "kernel",
                "acc",
                "ops",
                "explicit w",
                "chain w",
                "opt w",
                "explicit cyc",
                "chain cyc",
                "opt cyc",
                "size %",
                "speed %",
            ],
        );
        for r in &rows {
            table.push_row(vec![
                r.name.clone(),
                r.accesses.to_string(),
                r.compute.to_string(),
                r.explicit_words.to_string(),
                r.chain_words.to_string(),
                r.opt_words.to_string(),
                r.explicit_cycles.to_string(),
                r.chain_cycles.to_string(),
                r.opt_cycles.to_string(),
                f1(r.size_improvement_pct),
                f1(r.speed_improvement_pct),
            ]);
        }
        table.emit(&format!("e4_kernels_k{k}"));

        let max_size = rows
            .iter()
            .map(|r| r.size_improvement_pct)
            .fold(f64::NEG_INFINITY, f64::max);
        let max_speed = rows
            .iter()
            .map(|r| r.speed_improvement_pct)
            .fold(f64::NEG_INFINITY, f64::max);
        let mean_size: f64 =
            rows.iter().map(|r| r.size_improvement_pct).sum::<f64>() / rows.len() as f64;
        let mean_speed: f64 =
            rows.iter().map(|r| r.speed_improvement_pct).sum::<f64>() / rows.len() as f64;
        println!(
            "K = {k}: size improvement mean {mean_size:.1} % / max {max_size:.1} %, \
             speed improvement mean {mean_speed:.1} % / max {max_speed:.1} %"
        );
        println!("        (paper, citing ref [1]: up to 30 % code size, up to 60 % speed)\n");
    }
}
