//! E2 — the worked example of Sections 2–3: Phase 1 (`K̃`), Phase 2
//! (merging) and generated, simulation-verified address code for the
//! paper's running loop.

use raco_agu::codegen::CodeGenerator;
use raco_agu::sim;
use raco_bench::table::Table;
use raco_core::{Optimizer, Phase1Outcome};
use raco_ir::{examples, AguSpec, MemoryLayout, Trace};

fn main() {
    let spec = examples::paper_loop();
    let pattern = &spec.patterns()[0];
    println!("E2 — worked example (paper Sections 2 and 3)\n");

    // Phase 1 exact K̃ with inter-iteration dependencies.
    let probe = Optimizer::new(AguSpec::new(8, 1).unwrap()).allocate(pattern);
    let phase1 = probe.phase1();
    println!(
        "phase 1: K̃ = {} (lower bound {}, {} B&B nodes, outcome {:?})",
        phase1.virtual_registers(),
        phase1.lower_bound(),
        phase1.nodes(),
        phase1.outcome()
    );
    assert_eq!(phase1.virtual_registers(), 3);
    assert!(matches!(
        phase1.outcome(),
        Phase1Outcome::ZeroCost {
            proved_minimal: true
        }
    ));
    for path in phase1.cover().paths() {
        println!("    register path {path}");
    }
    println!(
        "\nNote: the relaxed (intra-only) model of the paper's Figure 1 admits a\n2-path cover, but a_7 (offset -2) can only close its loop-carried wrap\nonto itself, so the steady-state K̃ is 3.\n"
    );

    // Register sweep K = 1..4.
    let mut table = Table::new(
        "Example loop: unit-cost address computations per iteration",
        &["K", "greedy cost", "optimal cost", "merges"],
    );
    for k in 1..=4usize {
        let agu = AguSpec::new(k, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate(pattern);
        let (optimal, _) = raco_core::exact::optimal_allocation(
            alloc.distance_model(),
            k,
            raco_core::CostModel::steady_state(),
        );
        table.push_row(vec![
            k.to_string(),
            alloc.cost().to_string(),
            optimal.to_string(),
            alloc.phase2().records().len().to_string(),
        ]);
    }
    table.emit("e2_example_sweep");

    // Code generation for K = 2 (one merge forced), verified by simulation.
    let agu = AguSpec::new(2, 1).unwrap();
    let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
    let layout = MemoryLayout::contiguous(&spec, 0x100, 256);
    let program = CodeGenerator::new(agu)
        .generate(&spec, &alloc, &layout)
        .unwrap();
    println!("address code for K = 2 (cost {}):\n", alloc.total_cost());
    println!("{program}");

    let trace = Trace::capture(&spec, &layout, 64);
    let report = sim::run(&program, &trace, &agu).expect("verified run");
    println!(
        "simulated {} iterations, {} accesses checked, {} explicit update(s)/iteration ✓",
        report.iterations(),
        report.accesses_checked(),
        report.explicit_updates_per_iteration()
    );
    assert_eq!(
        report.explicit_updates_per_iteration(),
        u64::from(alloc.total_cost())
    );
}
