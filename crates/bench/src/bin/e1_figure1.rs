//! E1 — reproduces **Figure 1** of the paper: the graph model of the
//! example loop (Section 2).
//!
//! Prints the annotated access listing, the exact intra-iteration edge
//! set (verified against the hand-derived edge list from the paper's
//! figure), the inter-iteration edges our model adds, and a Graphviz DOT
//! rendering written to `target/experiments/figure1.dot`.

use raco_bench::table::Table;
use raco_graph::AccessGraph;
use raco_ir::{examples, pretty};

fn main() {
    let spec = examples::paper_loop();
    println!("E1 — Figure 1: graph model for the example loop\n");
    println!("{}", pretty::print_access_listing(&spec));

    let pattern = &spec.patterns()[0];
    let graph = AccessGraph::build(pattern, 1);

    // The intra-iteration edge set of Figure 1, derived by hand from the
    // offsets (1, 0, 2, -1, 1, 0, -2) and M = 1.
    let expected: &[(usize, usize)] = &[
        (0, 1),
        (0, 2),
        (0, 4),
        (0, 5),
        (1, 3),
        (1, 4),
        (1, 5),
        (2, 4),
        (3, 5),
        (3, 6),
        (4, 5),
    ];
    assert_eq!(
        graph.intra_edges(),
        expected,
        "the generated graph must match Figure 1 exactly"
    );
    println!(
        "graph: {} nodes, {} intra-iteration edges (matches Figure 1), {} inter-iteration edges\n",
        graph.node_count(),
        graph.intra_edges().len(),
        graph.inter_edges().len()
    );

    let mut table = Table::new(
        "Figure 1 — zero-cost edges (M = 1)",
        &["edge", "kind", "offsets", "distance"],
    );
    let dm = graph.distance_model();
    for &(i, j) in graph.intra_edges() {
        table.push_row(vec![
            format!("a_{} -> a_{}", i + 1, j + 1),
            "intra".into(),
            format!("{} -> {}", dm.offset(i), dm.offset(j)),
            dm.intra_distance(i, j).to_string(),
        ]);
    }
    for &(i, j) in graph.inter_edges() {
        table.push_row(vec![
            format!("a_{} -> a_{}'", i + 1, j + 1),
            "inter".into(),
            format!("{} -> {}", dm.offset(i), dm.offset(j)),
            dm.wrap_distance(i, j).to_string(),
        ]);
    }
    table.emit("e1_figure1_edges");

    // The paper's example path (a_1, a_3, a_5, a_6) is zero-cost.
    let path = raco_graph::Path::new(vec![0, 2, 4, 5]).unwrap();
    println!(
        "paper path {} : intra steps {:?} — all within M = 1 ✓",
        path,
        path.intra_steps(dm)
    );

    let dot = graph.to_dot();
    let dot_path = raco_bench::experiments_dir().join("figure1.dot");
    std::fs::write(&dot_path, &dot).expect("write DOT");
    println!("\nDOT rendering written to {}", dot_path.display());
    println!("\n{dot}");
}
