//! E3 — the paper's statistical analysis (Results ¶1): random access
//! patterns over a sweep of `N`, `M`, `K`, greedy path-merging vs the
//! naive arbitrary-merge baseline. The paper reports ≈ 40 % average
//! reduction in unit-cost address computations.
//!
//! Usage: `e3_random_sweep [--samples N]` (default 200 per cell).

use raco_bench::sweep::{overall_reduction, run_sweep, SweepConfig};
use raco_bench::table::{f1, f2, Table};

fn main() {
    let samples = raco_bench::samples_arg(200);
    let config = SweepConfig {
        samples,
        ..SweepConfig::default()
    };
    println!(
        "E3 — random-pattern sweep ({} samples/cell, seed {:#x})\n",
        config.samples, config.base_seed
    );
    let results = run_sweep(&config);

    let mut table = Table::new(
        "Unit-cost address computations: greedy merging vs naive (random patterns)",
        &[
            "spread",
            "N",
            "M",
            "K",
            "mean K~",
            "constrained",
            "naive",
            "greedy",
            "reduction %",
        ],
    );
    for cell in &results {
        table.push_row(vec![
            cell.key.spread.name().into(),
            cell.key.n.to_string(),
            cell.key.m.to_string(),
            cell.key.k.to_string(),
            f1(cell.mean_virtual_registers),
            format!("{:.0} %", cell.constrained_fraction * 100.0),
            f2(cell.naive.mean),
            f2(cell.greedy.mean),
            f1(cell.reduction_pct),
        ]);
    }
    table.emit("e3_random_sweep");

    // Aggregations the paper's single summary number corresponds to.
    let mut by_spread = Table::new(
        "Average reduction by spread (cells with naive cost > 0)",
        &["spread", "cells", "avg reduction %"],
    );
    for spread in raco_core::random::Spread::all() {
        let cells: Vec<_> = results
            .iter()
            .filter(|c| c.key.spread == spread && c.naive.mean > 0.0)
            .cloned()
            .collect();
        if cells.is_empty() {
            continue;
        }
        by_spread.push_row(vec![
            spread.name().into(),
            cells.len().to_string(),
            f1(overall_reduction(&cells)),
        ]);
    }
    by_spread.emit("e3_by_spread");

    let mut by_k = Table::new(
        "Average reduction by register count K (cells with naive cost > 0)",
        &["K", "cells", "avg reduction %"],
    );
    for k in [1usize, 2, 3, 4] {
        let cells: Vec<_> = results
            .iter()
            .filter(|c| c.key.k == k && c.naive.mean > 0.0)
            .cloned()
            .collect();
        if cells.is_empty() {
            continue;
        }
        by_k.push_row(vec![
            k.to_string(),
            cells.len().to_string(),
            f1(overall_reduction(&cells)),
        ]);
    }
    by_k.emit("e3_by_k");

    let overall = overall_reduction(&results);
    // K = 1 cells are structurally zero-reduction: with a single register
    // every strategy ends at the same full chain, so there is no
    // allocation freedom for the heuristic to exploit. The informative
    // average excludes them.
    let constrained: Vec<_> = results
        .iter()
        .filter(|c| c.key.k >= 2 && c.naive.mean > 0.0)
        .cloned()
        .collect();
    println!(
        "overall average reduction vs naive: {overall:.1} % (all cells), {:.1} % (cells with \
         K >= 2, where merge choice exists)",
        overall_reduction(&constrained)
    );
    println!("paper: \"about 40 % on the average\"");
}
