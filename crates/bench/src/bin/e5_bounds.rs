//! E5 — ablation of the Phase-1 machinery (paper Section 3.1): how tight
//! are the matching lower bound and the split-repair upper bound, and how
//! much branch-and-bound search effort remains between them.
//!
//! Usage: `e5_bounds [--samples N]` (default 100 per cell).

use raco_bench::stats::Summary;
use raco_bench::sweep::{sample_seed, CellKey};
use raco_bench::table::{f1, f2, Table};
use raco_core::random::{PatternGenerator, Spread};
use raco_graph::{bb, bounds, BbOptions, DistanceModel};

fn main() {
    let samples = raco_bench::samples_arg(100);
    println!("E5 — Phase-1 bounds and search effort ({samples} samples/cell)\n");

    let mut table = Table::new(
        "Matching LB vs heuristic UB vs exact K~ (random patterns, M = 1)",
        &[
            "N",
            "spread",
            "mean LB",
            "mean UB",
            "mean K~",
            "LB tight %",
            "UB tight %",
            "mean B&B nodes",
            "max nodes",
        ],
    );
    for spread in Spread::all() {
        for n in [8usize, 12, 16, 20, 24] {
            let generator = PatternGenerator::new(n).spread(spread, 1);
            let key = CellKey {
                n,
                m: 1,
                k: 1,
                spread,
            };
            let mut lbs = Vec::new();
            let mut ubs = Vec::new();
            let mut exacts = Vec::new();
            let mut nodes = Vec::new();
            let mut lb_tight = 0usize;
            let mut ub_tight = 0usize;
            for s in 0..samples {
                let pattern = generator.generate(sample_seed(0xB0_07ED, &key, s));
                let dm = DistanceModel::new(&pattern, 1);
                let b = bounds::bounds(&dm);
                let result = bb::min_zero_cost_cover_with(
                    &dm,
                    BbOptions {
                        node_limit: 2_000_000,
                        memoize: true,
                    },
                )
                .expect("stride-1 patterns always admit singleton covers");
                let exact = result.virtual_registers();
                lbs.push(b.lower as f64);
                exacts.push(exact as f64);
                nodes.push(result.nodes as f64);
                if b.lower == exact {
                    lb_tight += 1;
                }
                if let Some(ub) = b.upper_value() {
                    ubs.push(ub as f64);
                    if ub == exact {
                        ub_tight += 1;
                    }
                }
            }
            let node_summary = Summary::of(&nodes);
            table.push_row(vec![
                n.to_string(),
                spread.name().into(),
                f2(Summary::of(&lbs).mean),
                f2(Summary::of(&ubs).mean),
                f2(Summary::of(&exacts).mean),
                f1(lb_tight as f64 / samples as f64 * 100.0),
                f1(ub_tight as f64 / samples as f64 * 100.0),
                f1(node_summary.mean),
                format!("{:.0}", node_summary.max),
            ]);
        }
    }
    table.emit("e5_bounds");
    println!(
        "Reading: when LB = UB the branch-and-bound is skipped entirely (0 nodes),\n\
         which is the paper's \"based on these bounds, one can quickly decide\" claim."
    );
}
