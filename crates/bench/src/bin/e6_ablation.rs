//! E6 — ablation of Phase 2: merge strategies (greedy / random / first /
//! worst) under both cost models, plus the optimality gap of the
//! two-phase heuristic against the exhaustive oracle on small instances.
//!
//! Usage: `e6_ablation [--samples N]` (default 150; the oracle part
//! always uses N ≤ 10 patterns).

use raco_bench::stats::Summary;
use raco_bench::sweep::{sample_seed, CellKey};
use raco_bench::table::{f1, f2, Table};
use raco_core::random::{PatternGenerator, Spread};
use raco_core::{exact, phase1, phase2, CostModel, MergeStrategy};
use raco_graph::{BbOptions, DistanceModel};

fn strategy_cost(
    dm: &DistanceModel,
    k: usize,
    cost_model: CostModel,
    strategy: MergeStrategy,
) -> u32 {
    let p1 = phase1::run(
        dm,
        BbOptions {
            node_limit: 500_000,
            memoize: true,
        },
    );
    let p2 = phase2::merge_until(p1.cover(), k, dm, cost_model, strategy);
    cost_model.cover_cost(p2.cover(), dm)
}

fn main() {
    let samples = raco_bench::samples_arg(150);
    println!("E6 — merge-strategy and cost-model ablation ({samples} samples/cell)\n");

    // Part 1: strategies under the steady-state cost model, plus a
    // simulated-annealing probe seeded from the greedy solution (how much
    // headroom does the constructive heuristic leave?).
    let mut table = Table::new(
        "Mean cost by merge strategy (N = 16, M = 1, medium spread)",
        &[
            "K",
            "greedy",
            "greedy+anneal",
            "random",
            "first-pair",
            "worst-case",
        ],
    );
    let generator = PatternGenerator::new(16).spread(Spread::Medium, 1);
    for k in [1usize, 2, 3, 4] {
        let key = CellKey {
            n: 16,
            m: 1,
            k,
            spread: Spread::Medium,
        };
        let mut per_strategy: Vec<Vec<f64>> = vec![Vec::new(); 4];
        let mut annealed: Vec<f64> = Vec::new();
        for s in 0..samples {
            let seed = sample_seed(0xAB1A7E, &key, s);
            let pattern = generator.generate(seed);
            let dm = DistanceModel::new(&pattern, 1);
            let strategies = [
                MergeStrategy::GreedyMinCost,
                MergeStrategy::Random { seed },
                MergeStrategy::FirstPair,
                MergeStrategy::WorstCost,
            ];
            for (i, strat) in strategies.into_iter().enumerate() {
                per_strategy[i].push(f64::from(strategy_cost(
                    &dm,
                    k,
                    CostModel::steady_state(),
                    strat,
                )));
            }
            // Annealing probe on top of the greedy result.
            let p1 = phase1::run(
                &dm,
                BbOptions {
                    node_limit: 500_000,
                    memoize: true,
                },
            );
            let greedy = phase2::merge_until(
                p1.cover(),
                k,
                &dm,
                CostModel::steady_state(),
                MergeStrategy::GreedyMinCost,
            );
            let probe = raco_core::anneal::anneal(
                &dm,
                k,
                greedy.cover().clone(),
                CostModel::steady_state(),
                raco_core::anneal::AnnealOptions {
                    seed,
                    iterations: 4_000,
                    ..raco_core::anneal::AnnealOptions::default()
                },
            );
            annealed.push(f64::from(probe.cost()));
        }
        table.push_row(vec![
            k.to_string(),
            f2(Summary::of(&per_strategy[0]).mean),
            f2(Summary::of(&annealed).mean),
            f2(Summary::of(&per_strategy[1]).mean),
            f2(Summary::of(&per_strategy[2]).mean),
            f2(Summary::of(&per_strategy[3]).mean),
        ]);
    }
    table.emit("e6_strategies");

    // Part 2: steady-state vs paper-literal cost model (what the greedy
    // criterion optimizes vs what the loop executes).
    let mut cm_table = Table::new(
        "Steady-state cost achieved when merging optimizes each cost model (K = 2)",
        &[
            "N",
            "merge by steady-state",
            "merge by intra-only",
            "penalty %",
        ],
    );
    for n in [8usize, 12, 16, 24] {
        let generator = PatternGenerator::new(n).spread(Spread::Medium, 1);
        let key = CellKey {
            n,
            m: 1,
            k: 2,
            spread: Spread::Medium,
        };
        let mut ss = Vec::new();
        let mut literal = Vec::new();
        for s in 0..samples {
            let pattern = generator.generate(sample_seed(0xC057, &key, s));
            let dm = DistanceModel::new(&pattern, 1);
            // Merge greedily under each model, always *measuring* steady state.
            let p1 = phase1::run(
                &dm,
                BbOptions {
                    node_limit: 500_000,
                    memoize: true,
                },
            );
            let by_ss = phase2::merge_until(
                p1.cover(),
                2,
                &dm,
                CostModel::steady_state(),
                MergeStrategy::GreedyMinCost,
            );
            let by_lit = phase2::merge_until(
                p1.cover(),
                2,
                &dm,
                CostModel::paper_literal(),
                MergeStrategy::GreedyMinCost,
            );
            ss.push(f64::from(
                CostModel::steady_state().cover_cost(by_ss.cover(), &dm),
            ));
            literal.push(f64::from(
                CostModel::steady_state().cover_cost(by_lit.cover(), &dm),
            ));
        }
        let (ssm, litm) = (Summary::of(&ss).mean, Summary::of(&literal).mean);
        cm_table.push_row(vec![
            n.to_string(),
            f2(ssm),
            f2(litm),
            f1(if ssm > 0.0 {
                (litm - ssm) / ssm * 100.0
            } else {
                0.0
            }),
        ]);
    }
    cm_table.emit("e6_cost_models");

    // Part 3: optimality gap on small instances (exhaustive oracle).
    let mut gap_table = Table::new(
        "Two-phase heuristic vs exhaustive optimum (N = 9, M = 1)",
        &[
            "K",
            "mean heuristic",
            "mean optimal",
            "mean gap",
            "optimal %",
        ],
    );
    let generator = PatternGenerator::new(9).spread(Spread::Medium, 1);
    let oracle_samples = samples.min(100);
    for k in [1usize, 2, 3] {
        let key = CellKey {
            n: 9,
            m: 1,
            k,
            spread: Spread::Medium,
        };
        let mut heuristics = Vec::new();
        let mut optimals = Vec::new();
        let mut hit = 0usize;
        for s in 0..oracle_samples {
            let pattern = generator.generate(sample_seed(0x6A9, &key, s));
            let dm = DistanceModel::new(&pattern, 1);
            let h = strategy_cost(
                &dm,
                k,
                CostModel::steady_state(),
                MergeStrategy::GreedyMinCost,
            );
            let (opt, _) = exact::optimal_allocation(&dm, k, CostModel::steady_state());
            heuristics.push(f64::from(h));
            optimals.push(f64::from(opt));
            if h == opt {
                hit += 1;
            }
        }
        gap_table.push_row(vec![
            k.to_string(),
            f2(Summary::of(&heuristics).mean),
            f2(Summary::of(&optimals).mean),
            f2(Summary::of(&heuristics).mean - Summary::of(&optimals).mean),
            f1(hit as f64 / oracle_samples as f64 * 100.0),
        ]);
    }
    gap_table.emit("e6_optimality_gap");
}
