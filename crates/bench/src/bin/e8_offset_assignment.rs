//! E8 — the complementary scalar side (paper refs [4, 5]): Liao's SOA
//! heuristic vs the naive first-use layout, and GOA over a register
//! sweep. Random access sequences, seeded and reproducible.
//!
//! Usage: `e8_offset_assignment [--samples N]` (default 200).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use raco_bench::stats::{reduction_percent, Summary};
use raco_bench::table::{f1, f2, Table};
use raco_oa::{exhaustive, goa, soa, AccessSequence, StackLayout, VarId};

fn random_sequence(vars: usize, len: usize, seed: u64) -> AccessSequence {
    let mut rng = SmallRng::seed_from_u64(seed);
    // Zipf-ish skew: low ids are hotter, like real scalar temporaries.
    let accesses: Vec<VarId> = (0..len)
        .map(|_| {
            let r: f64 = rng.gen();
            let v = ((vars as f64) * r * r) as usize;
            VarId(v.min(vars - 1) as u32)
        })
        .collect();
    AccessSequence::new(accesses, vars)
}

fn main() {
    let samples = raco_bench::samples_arg(200);
    println!("E8 — offset assignment for scalars (refs [4, 5])\n");

    // SOA: Liao vs first-use vs optimal (small instances).
    let mut table = Table::new(
        "SOA cost: Liao's heuristic vs first-use layout (random sequences)",
        &[
            "vars",
            "len",
            "first-use",
            "liao",
            "reduction %",
            "optimal",
            "liao=opt %",
        ],
    );
    for (vars, len) in [(5usize, 20usize), (6, 30), (8, 40), (8, 60)] {
        let mut naive_costs = Vec::new();
        let mut liao_costs = Vec::new();
        let mut opt_costs = Vec::new();
        let mut hits = 0usize;
        for s in 0..samples {
            let seq = random_sequence(vars, len, 0x0FF5E7 ^ ((s as u64) << 8) ^ vars as u64);
            let naive = StackLayout::first_use(&seq).cost(&seq, 1);
            let liao = soa::cost(&seq, &soa::liao(&seq));
            naive_costs.push(f64::from(naive));
            liao_costs.push(f64::from(liao));
            if vars <= 8 {
                let (_, opt) = exhaustive::optimal_soa(&seq);
                opt_costs.push(f64::from(opt));
                if liao == opt {
                    hits += 1;
                }
            }
        }
        let naive_mean = Summary::of(&naive_costs).mean;
        let liao_mean = Summary::of(&liao_costs).mean;
        table.push_row(vec![
            vars.to_string(),
            len.to_string(),
            f2(naive_mean),
            f2(liao_mean),
            f1(reduction_percent(naive_mean, liao_mean)),
            f2(Summary::of(&opt_costs).mean),
            f1(hits as f64 / samples as f64 * 100.0),
        ]);
    }
    table.emit("e8_soa");

    // GOA: register sweep.
    let mut goa_table = Table::new(
        "GOA cost by address-register count (random sequences, 8 vars, len 48)",
        &["k", "mean cost", "vs k=1 %"],
    );
    let mut base = 0.0;
    for k in 1..=4usize {
        let mut costs = Vec::new();
        for s in 0..samples.min(100) {
            let seq = random_sequence(8, 48, 0x60A ^ (s as u64) << 4);
            costs.push(f64::from(goa::run(&seq, k).cost()));
        }
        let mean = Summary::of(&costs).mean;
        if k == 1 {
            base = mean;
        }
        goa_table.push_row(vec![
            k.to_string(),
            f2(mean),
            f1(reduction_percent(base, mean)),
        ]);
    }
    goa_table.emit("e8_goa");
}
