//! E7 — extension experiment: modify registers (the machine model of the
//! paper's ref \[2\], Araujo et al.). How many explicit updates per
//! iteration remain when the machine has L ∈ {0, 1, 2, 4} modify
//! registers, on kernels and on random patterns — and, since the
//! allocator's cost model prices modify registers itself, the
//! measured-vs-predicted comparison: the MR-blind model over-predicts
//! by exactly the deltas codegen absorbs, the MR-aware model matches
//! the simulator cycle for cycle.
//!
//! Usage: `e7_modify_regs [--samples N]` (default 100).

use raco_agu::codegen::CodeGenerator;
use raco_agu::sim;
use raco_bench::stats::Summary;
use raco_bench::sweep::{sample_seed, CellKey};
use raco_bench::table::{f1, f2, Table};
use raco_core::random::{PatternGenerator, Spread};
use raco_core::{Optimizer, OptimizerOptions};
use raco_graph::PathCover;
use raco_ir::{AguSpec, MemoryLayout, Trace};

fn main() {
    let samples = raco_bench::samples_arg(100);
    println!("E7 — modify-register extension (ref [2] machine model)\n");

    // Kernels: generated code, verified by simulation.
    let mut table = Table::new(
        "Explicit updates per iteration by modify-register count (K = 4, M = 1)",
        &["kernel", "L = 0", "L = 1", "L = 2", "L = 4"],
    );
    for kernel in raco_kernels::suite() {
        if kernel.spec().patterns().len() > 4 {
            continue;
        }
        let mut cells = Vec::new();
        for l in [0usize, 1, 2, 4] {
            let agu = AguSpec::new(4, 1).unwrap().with_modify_registers(l);
            let alloc = Optimizer::new(agu).allocate_loop(kernel.spec()).unwrap();
            let layout = MemoryLayout::contiguous(kernel.spec(), 0x800, 0x400);
            let program = CodeGenerator::new(agu)
                .generate(kernel.spec(), &alloc, &layout)
                .unwrap();
            let trace = Trace::capture(kernel.spec(), &layout, 32);
            let report = sim::run(&program, &trace, &agu).expect("verified");
            cells.push(report.explicit_updates_per_iteration().to_string());
        }
        table.push_row(vec![
            kernel.name().to_owned(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    table.emit("e7_kernels");

    // Measured vs predicted on an MR-equipped machine: the MR-blind
    // model (pre-change allocator) vs the MR-aware model vs simulated
    // ground truth. The aware column must equal the measured column on
    // every kernel — the gap the cost model closes.
    let mut gap = Table::new(
        "Measured vs predicted per iteration (K = 4, M = 1, L = 2)",
        &[
            "kernel",
            "blind pred",
            "aware pred",
            "measured",
            "gap closed",
        ],
    );
    let agu = AguSpec::new(4, 1).unwrap().with_modify_registers(2);
    for kernel in raco_kernels::suite() {
        if kernel.spec().patterns().len() > 4 {
            continue;
        }
        let blind = Optimizer::with_options(agu, OptimizerOptions::default())
            .allocate_loop(kernel.spec())
            .unwrap();
        let aware = Optimizer::new(agu).allocate_loop(kernel.spec()).unwrap();
        let layout = MemoryLayout::contiguous(kernel.spec(), 0x800, 0x400);
        let program = CodeGenerator::new(agu)
            .generate(kernel.spec(), &aware, &layout)
            .unwrap();
        let trace = Trace::capture(kernel.spec(), &layout, 32);
        let measured = sim::run(&program, &trace, &agu)
            .expect("verified")
            .explicit_updates_per_iteration();
        assert_eq!(
            u64::from(aware.total_cost()),
            measured,
            "{}: the MR-aware prediction must match the simulator",
            kernel.name()
        );
        gap.push_row(vec![
            kernel.name().to_owned(),
            blind.total_cost().to_string(),
            aware.total_cost().to_string(),
            measured.to_string(),
            u64::from(blind.total_cost())
                .saturating_sub(measured)
                .to_string(),
        ]);
    }
    gap.emit("e7_predicted_vs_measured");

    // Random patterns: mean residual cost after modify-register absorption.
    let mut rnd = Table::new(
        "Random patterns: mean explicit updates per iteration (K = 2, M = 1)",
        &["N", "spread", "L = 0", "L = 1", "L = 2", "savings L=2 %"],
    );
    for spread in Spread::all() {
        for n in [12usize, 20, 32] {
            let generator = PatternGenerator::new(n).spread(spread, 1);
            let key = CellKey {
                n,
                m: 1,
                k: 2,
                spread,
            };
            let mut by_l: Vec<Vec<f64>> = vec![Vec::new(); 3];
            for s in 0..samples {
                let pattern = generator.generate(sample_seed(0x30D1F7, &key, s));
                let agu = AguSpec::new(2, 1).unwrap();
                let alloc = Optimizer::new(agu).allocate(&pattern);
                for (i, l) in [0usize, 1, 2].into_iter().enumerate() {
                    // Residual = paths' over-range deltas not absorbed by
                    // the L most frequent values.
                    let modif = raco_agu::modify::ModifyAllocation::for_cover(
                        alloc.cover(),
                        alloc.distance_model(),
                        l,
                    );
                    let residual =
                        cover_cost_with_modify(alloc.cover(), alloc.distance_model(), &modif);
                    by_l[i].push(f64::from(residual));
                }
            }
            let l0 = Summary::of(&by_l[0]).mean;
            let l2 = Summary::of(&by_l[2]).mean;
            rnd.push_row(vec![
                n.to_string(),
                spread.name().into(),
                f2(l0),
                f2(Summary::of(&by_l[1]).mean),
                f2(l2),
                f1(if l0 > 0.0 {
                    (l0 - l2) / l0 * 100.0
                } else {
                    0.0
                }),
            ]);
        }
    }
    rnd.emit("e7_random");
}

/// Steady-state explicit updates of a cover when deltas held in modify
/// registers are free.
fn cover_cost_with_modify(
    cover: &PathCover,
    dm: &raco_graph::DistanceModel,
    modify: &raco_agu::modify::ModifyAllocation,
) -> u32 {
    let mut cost = 0;
    for path in cover.paths() {
        for delta in path.intra_steps(dm) {
            if !dm.is_free(delta) && !modify.is_free_delta(delta) {
                cost += 1;
            }
        }
        let wrap = path.wrap_step(dm);
        if !dm.is_free(wrap) && !modify.is_free_delta(wrap) {
            cost += 1;
        }
    }
    cost
}
