//! Minimal descriptive statistics for experiment aggregation.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Half-width of the normal-approximation 95 % confidence interval.
    pub ci95: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarize an empty sample");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let stddev = var.sqrt();
        let ci95 = 1.96 * stddev / (n as f64).sqrt();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Summary {
            n,
            mean,
            stddev,
            ci95,
            min,
            max,
        }
    }
}

/// Percentage reduction of `optimized` relative to `baseline`
/// (`(baseline - optimized) / baseline * 100`); `0` when the baseline is
/// not positive.
pub fn reduction_percent(baseline: f64, optimized: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (baseline - optimized) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[4.0, 4.0, 4.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.ci95, 0.0);
        assert_eq!((s.min, s.max), (4.0, 4.0));
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Sample variance of 1..4 is 5/3.
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!((s.min, s.max), (1.0, 4.0));
    }

    #[test]
    fn single_observation_has_zero_spread() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 7.5);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_is_rejected() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn reduction_percent_behaviour() {
        assert_eq!(reduction_percent(10.0, 6.0), 40.0);
        assert_eq!(reduction_percent(0.0, 5.0), 0.0);
        assert!(reduction_percent(10.0, 12.0) < 0.0);
    }
}
