//! The `raco bench-trajectory` suite: a small, versioned pipeline
//! benchmark whose JSON output (`BENCH_pipeline.json` at the repository
//! root) is committed per change, so the performance trajectory of the
//! pipeline is tracked in-repo alongside the code.
//!
//! The suite is hand-timed (no criterion — that is a dev-dependency of
//! the bench binaries only) and deliberately tiny: a cold compile, a
//! warm cache-hit compile, a warm serve round trip, and the deduplicated
//! vs. undeduplicated whole-loop allocation pair that documents the
//! `best_phase2` reuse win.

use std::path::PathBuf;
use std::time::Instant;

use raco_core::{partition, Optimizer};
use raco_driver::json::Json;
use raco_driver::{Pipeline, PipelineConfig};
use raco_ir::{dsl, AguSpec, LoopSpec};
use raco_serve::Server;

/// Schema identifier stamped into every trajectory file.
pub const SCHEMA: &str = "raco-bench-trajectory";

/// Schema version stamped into every trajectory file.
pub const VERSION: u64 = 1;

/// File name of the committed trajectory report.
pub const FILE_NAME: &str = "BENCH_pipeline.json";

/// A three-tap stencil: the canonical warm-path workload.
const FIR_SOURCE: &str = "for (i = 1; i < 64; i++) { y[i] = x[i-1] + x[i] + x[i+1]; }";

/// A two-array loop on a modify-register machine: the workload where
/// `allocate_loop` used to re-run `best_phase2` at the granted register
/// count after `cost_curve` had already swept it.
const LOOP_SOURCE: &str =
    "for (i = 2; i < 64; i++) { y[i] = x[i-2] + x[i] + x[i+3] + y[i-1] + y[i-2]; }";

/// One measured benchmark: the median per-operation latency over
/// `samples` timed repetitions.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSample {
    /// Benchmark name (stable across versions of the trajectory file).
    pub name: &'static str,
    /// Unit of `value` (always microseconds today).
    pub unit: &'static str,
    /// Median per-operation latency.
    pub value: f64,
    /// Number of timed repetitions behind the median.
    pub samples: usize,
}

/// Times `inner` iterations of `f` per sample, `samples` times, and
/// returns the median per-operation latency in microseconds.
fn median_us(samples: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..inner {
                f();
            }
            start.elapsed().as_nanos() as f64 / inner as f64 / 1000.0
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn machine() -> AguSpec {
    AguSpec::new(4, 1).expect("valid machine")
}

fn loop_spec() -> LoopSpec {
    let mut specs = dsl::parse_program(LOOP_SOURCE).expect("benchmark source parses");
    specs.remove(0)
}

/// Runs the whole suite. `quick` cuts sample counts for CI smoke runs;
/// the measured medians are noisier but the schema and bench set are
/// identical.
pub fn run(quick: bool) -> Vec<BenchSample> {
    let (samples, inner) = if quick { (5, 4) } else { (20, 16) };
    let mut results = Vec::new();

    // Cold compile: a fresh pipeline (empty cache) per operation.
    let cold_samples = if quick { 3 } else { 10 };
    results.push(BenchSample {
        name: "pipeline_cold",
        unit: "us",
        value: median_us(cold_samples, 1, || {
            let pipeline = Pipeline::new(machine());
            pipeline
                .compile_str("bench", FIR_SOURCE)
                .expect("benchmark source compiles");
        }),
        samples: cold_samples,
    });

    // Warm compile: every allocation is a cache hit; this is the bench
    // the instrumentation-overhead budget (≤ 2 %) is judged on.
    let warm = Pipeline::new(machine());
    warm.compile_str("bench", FIR_SOURCE).expect("warms");
    results.push(BenchSample {
        name: "pipeline_warm",
        unit: "us",
        value: median_us(samples, inner, || {
            warm.compile_str("bench", FIR_SOURCE).expect("warm compile");
        }),
        samples,
    });

    // Warm serve round trip: request parse + warm compile + response
    // rendering through the loopback `handle_line`.
    let server = Server::new(PipelineConfig::new(machine()));
    let request = format!(r#"{{"op":"compile","source":"{FIR_SOURCE}"}}"#);
    server.handle_line(&request);
    results.push(BenchSample {
        name: "serve_warm_compile",
        unit: "us",
        value: median_us(samples, inner, || {
            server.handle_line(&request);
        }),
        samples,
    });

    // The dedup pair: whole-loop allocation on a modify-register
    // machine, after (reuse the cost-curve sweep's phase-2 reports) vs.
    // before (re-run best_phase2 at the granted register count).
    let optimizer = Optimizer::new(machine().with_modify_registers(2));
    let spec = loop_spec();
    results.push(BenchSample {
        name: "alloc_loop_dedup",
        unit: "us",
        value: median_us(samples, inner, || {
            optimizer.allocate_loop(&spec).expect("loop allocates");
        }),
        samples,
    });
    results.push(BenchSample {
        name: "alloc_loop_undeduped",
        unit: "us",
        value: median_us(samples, inner, || {
            undeduped_allocate_loop(&optimizer, &spec);
        }),
        samples,
    });

    results
}

/// The pre-dedup `allocate_loop` shape: sweep a full cost curve per
/// pattern, partition registers across arrays, then allocate each array
/// from scratch at its granted count — running phase 1 and the phase-2
/// modify-register sweep a second time per pattern.
fn undeduped_allocate_loop(optimizer: &Optimizer, spec: &LoopSpec) {
    let k = optimizer.agu().address_registers();
    let patterns = spec.patterns();
    let curves: Vec<Vec<u32>> = patterns
        .iter()
        .map(|p| optimizer.cost_curve(p, k))
        .collect();
    let assignment = partition::distribute_registers(&curves, k).expect("arity fits");
    for (pattern, &granted) in patterns.iter().zip(&assignment) {
        optimizer.allocate_with_registers(pattern, granted);
    }
}

/// Renders the trajectory report: schema header, free-form `label`
/// (e.g. a git revision or PR tag), and one entry per benchmark.
pub fn report_json(label: &str, benches: &[BenchSample]) -> Json {
    Json::Obj(vec![
        ("schema".to_owned(), Json::str(SCHEMA)),
        ("version".to_owned(), Json::UInt(VERSION)),
        ("label".to_owned(), Json::str(label)),
        (
            "benches".to_owned(),
            Json::Arr(
                benches
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::str(b.name)),
                            ("unit".to_owned(), Json::str(b.unit)),
                            ("value".to_owned(), Json::Num(b.value)),
                            ("samples".to_owned(), Json::UInt(b.samples as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Where the committed trajectory file lives: `BENCH_pipeline.json` at
/// the workspace root.
pub fn default_output_path() -> PathBuf {
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop(); // crates/
    path.pop(); // workspace root
    path.push(FILE_NAME);
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_matches_the_schema() {
        let benches = [BenchSample {
            name: "pipeline_warm",
            unit: "us",
            value: 123.5,
            samples: 20,
        }];
        let json = report_json("test", &benches);
        assert_eq!(json.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(json.get("version").and_then(Json::as_u64), Some(VERSION));
        assert_eq!(json.get("label").and_then(Json::as_str), Some("test"));
        let Some(Json::Arr(entries)) = json.get("benches") else {
            panic!("benches must be an array");
        };
        assert_eq!(entries.len(), 1);
        let entry = &entries[0];
        assert_eq!(
            entry.get("name").and_then(Json::as_str),
            Some("pipeline_warm")
        );
        assert_eq!(entry.get("unit").and_then(Json::as_str), Some("us"));
        assert_eq!(entry.get("value"), Some(&Json::Num(123.5)));
        assert_eq!(entry.get("samples").and_then(Json::as_u64), Some(20));
        // The rendered line reparses losslessly (it is committed as a
        // file); small integers reparse as `Int`, so compare renders.
        let reparsed = Json::parse(&json.render()).unwrap();
        assert_eq!(reparsed.render(), json.render());
    }

    #[test]
    fn default_output_path_targets_the_workspace_root() {
        let path = default_output_path();
        assert!(path.ends_with(FILE_NAME));
        assert!(path.parent().unwrap().join("Cargo.toml").is_file());
    }

    #[test]
    fn undeduped_baseline_matches_the_deduped_allocation_cost() {
        // The baseline must be a faithful "before": same machine, same
        // granted registers, same final costs — only the redundant
        // recomputation differs.
        let optimizer = Optimizer::new(machine().with_modify_registers(2));
        let spec = loop_spec();
        let deduped = optimizer.allocate_loop(&spec).expect("loop allocates");
        let k = optimizer.agu().address_registers();
        let patterns = spec.patterns();
        let curves: Vec<Vec<u32>> = patterns
            .iter()
            .map(|p| optimizer.cost_curve(p, k))
            .collect();
        let assignment = partition::distribute_registers(&curves, k).expect("arity fits");
        let baseline_cost: u32 = patterns
            .iter()
            .zip(&assignment)
            .map(|(p, &granted)| optimizer.allocate_with_registers(p, granted).cost())
            .sum();
        assert_eq!(deduped.total_cost(), baseline_cost);
    }
}
