//! # raco-kernels — a DSPstone-style kernel suite
//!
//! The paper's Results section refers to "realistic DSP programs"; the
//! proprietary benchmark set of its ref \[1\] is not public, so this crate
//! provides the standard substitution: a suite of classic DSP kernels (in
//! the spirit of DSPstone) written in the `raco-ir` DSL. Each kernel
//! carries the per-iteration *compute* instruction count (derived from
//! its own AST) so that experiments can report whole-loop code-size and
//! cycle improvements, not just addressing overhead.
//!
//! ## Example
//!
//! ```
//! let suite = raco_kernels::suite();
//! assert!(suite.len() >= 12);
//! let fir = raco_kernels::fir(4);
//! assert_eq!(fir.spec().patterns().len(), 2); // x and y
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use raco_ir::dsl::{self, Expr, ForLoop};
use raco_ir::LoopSpec;

/// One benchmark kernel: DSL source, parsed loop and compute metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    name: String,
    description: String,
    source: String,
    spec: LoopSpec,
    compute_ops: u64,
}

impl Kernel {
    /// Builds a kernel from DSL source: optional `array` declarations
    /// followed by exactly one loop (possibly a perfect nest).
    ///
    /// # Panics
    ///
    /// Panics if `source` is not valid DSL or contains more than one
    /// loop — kernels are compiled-in constants, so a parse failure is a
    /// bug in this crate.
    pub fn from_source(name: &str, description: &str, source: &str) -> Self {
        let (decls, loops) = dsl::parse_unit(source)
            .unwrap_or_else(|e| panic!("kernel `{name}` does not parse: {e}"));
        assert!(
            loops.len() == 1,
            "kernel `{name}` must contain exactly one loop, found {}",
            loops.len()
        );
        let ast = &loops[0];
        let spec = dsl::lower_unit_loop(&decls, ast)
            .unwrap_or_else(|e| panic!("kernel `{name}` does not lower: {e}"));
        let compute_ops = count_compute_ops(ast.innermost());
        Kernel {
            name: name.to_owned(),
            description: description.to_owned(),
            source: source.to_owned(),
            spec,
            compute_ops,
        }
    }

    /// Kernel name (table label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// The DSL source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The lowered loop.
    pub fn spec(&self) -> &LoopSpec {
        &self.spec
    }

    /// Data-path (compute) instructions per iteration, estimated as the
    /// number of arithmetic operators in the loop body — every `*`, `/`,
    /// `+`, `-` and unary negation maps to one DSP data-path instruction.
    pub fn compute_ops(&self) -> u64 {
        self.compute_ops
    }

    /// Memory accesses per iteration.
    pub fn accesses(&self) -> usize {
        self.spec.len()
    }
}

/// Counts arithmetic operators in the (innermost) loop body — compute
/// instructions per innermost iteration. Compound assignments contribute
/// their implicit operator.
fn count_compute_ops(ast: &ForLoop) -> u64 {
    fn expr_ops(e: &Expr) -> u64 {
        match e {
            Expr::Num(_) | Expr::Var(_) => 0,
            Expr::Index { .. } => 0, // address arithmetic is the AGU's job
            Expr::Neg(inner) => 1 + expr_ops(inner),
            Expr::Binary { lhs, rhs, .. } => 1 + expr_ops(lhs) + expr_ops(rhs),
        }
    }
    ast.body
        .iter()
        .map(|stmt| {
            let implicit = u64::from(stmt.op.reads_lhs());
            // A statement without arithmetic is still one data-path
            // instruction (a move).
            (implicit + expr_ops(&stmt.rhs)).max(1)
        })
        .sum()
}

/// An `n`-tap FIR filter, unrolled over taps (DSPstone `fir`):
/// `y[i] = h0*x[i] + h1*x[i-1] + …`.
///
/// # Panics
///
/// Panics if `taps == 0`.
pub fn fir(taps: usize) -> Kernel {
    assert!(taps > 0, "a FIR filter needs at least one tap");
    let terms: Vec<String> = (0..taps)
        .map(|j| {
            if j == 0 {
                "h0 * x[i]".to_owned()
            } else {
                format!("h{j} * x[i - {j}]")
            }
        })
        .collect();
    let source = format!(
        "for (i = {taps}; i < 256; i++) {{\n    y[i] = {};\n}}",
        terms.join(" + ")
    );
    Kernel::from_source(
        &format!("fir_{taps}"),
        &format!("{taps}-tap FIR filter, taps in data registers"),
        &source,
    )
}

/// One biquad IIR section in direct form II (DSPstone
/// `biquad_one_section`).
pub fn biquad() -> Kernel {
    Kernel::from_source(
        "biquad",
        "second-order IIR section, direct form II",
        "for (i = 2; i < 256; i++) {
            w[i] = x[i] - a1 * w[i - 1] - a2 * w[i - 2];
            y[i] = b0 * w[i] + b1 * w[i - 1] + b2 * w[i - 2];
        }",
    )
}

/// Convolution against a time-reversed 16-tap kernel: `h[15 - i]`.
pub fn convolution() -> Kernel {
    Kernel::from_source(
        "convolution",
        "16-point convolution with a time-reversed coefficient array",
        "for (i = 0; i < 16; i++) {
            acc += x[i] * h[15 - i];
        }",
    )
}

/// Cross-correlation at lag 3.
pub fn correlation() -> Kernel {
    Kernel::from_source(
        "correlation",
        "cross-correlation of two sequences at lag 3",
        "for (i = 0; i < 253; i++) {
            r += x[i] * y[i + 3];
        }",
    )
}

/// Plain dot product (DSPstone `dot_product`).
pub fn dot_product() -> Kernel {
    Kernel::from_source(
        "dot_product",
        "inner product of two vectors",
        "for (i = 0; i < 256; i++) {
            acc += x[i] * y[i];
        }",
    )
}

/// Element-wise vector addition.
pub fn vector_add() -> Kernel {
    Kernel::from_source(
        "vector_add",
        "element-wise vector addition",
        "for (i = 0; i < 256; i++) {
            z[i] = x[i] + y[i];
        }",
    )
}

/// DSPstone `n_real_updates`: `d[i] = c[i] + a[i] * b[i]`.
pub fn n_real_updates() -> Kernel {
    Kernel::from_source(
        "n_real_updates",
        "N real multiply-accumulate updates over four arrays",
        "for (i = 0; i < 256; i++) {
            d[i] = c[i] + a[i] * b[i];
        }",
    )
}

/// DSPstone `n_complex_updates` with interleaved re/im storage
/// (coefficient-2 index expressions).
pub fn n_complex_updates() -> Kernel {
    Kernel::from_source(
        "n_complex_updates",
        "N complex multiply-accumulate updates, interleaved re/im",
        "for (i = 0; i < 128; i++) {
            d[2*i]     = c[2*i]     + a[2*i] * b[2*i]     - a[2*i+1] * b[2*i+1];
            d[2*i + 1] = c[2*i + 1] + a[2*i] * b[2*i + 1] + a[2*i+1] * b[2*i];
        }",
    )
}

/// Matrix-multiply inner loop: row of `a` (stride 1) against a column of
/// `b` (stride `dim` — the matrix dimension), a classic large-stride
/// stress case for `M = 1` machines.
///
/// # Panics
///
/// Panics if `dim == 0`.
pub fn matmul_inner(dim: usize) -> Kernel {
    assert!(dim > 0, "matrix dimension must be positive");
    let source = format!("for (i = 0; i < {dim}; i++) {{\n    acc += a[i] * b[{dim} * i];\n}}");
    Kernel::from_source(
        &format!("matmul_inner_{dim}"),
        &format!("matrix-multiply inner loop, {dim}x{dim} column access"),
        &source,
    )
}

/// LMS adaptive filter update (one tap per iteration, DSPstone `lms`).
pub fn lms() -> Kernel {
    Kernel::from_source(
        "lms",
        "LMS adaptive filter: coefficient update plus convolution tap",
        "for (i = 0; i < 32; i++) {
            h[i] = h[i] + mu_e * x[i];
            acc  = acc + h[i] * x[i + 1];
        }",
    )
}

/// One stage of a lattice synthesis filter per iteration.
pub fn lattice() -> Kernel {
    Kernel::from_source(
        "lattice",
        "lattice filter stage: forward/backward residual update",
        "for (i = 1; i < 32; i++) {
            f[i] = f[i - 1] - k1 * g[i - 1];
            g[i] = g[i - 1] - k1 * f[i];
        }",
    )
}

/// Radix-2 FFT butterfly pass over interleaved complex data.
pub fn fft_butterfly() -> Kernel {
    Kernel::from_source(
        "fft_butterfly",
        "radix-2 FFT butterflies, interleaved complex, twiddles in registers",
        "for (i = 0; i < 64; i++) {
            tr = xr[2*i] - xr[2*i + 1] * wr;
            ti = xi[2*i] - xi[2*i + 1] * wi;
            xr[2*i]     = xr[2*i] + xr[2*i + 1] * wr;
            xi[2*i]     = xi[2*i] + xi[2*i + 1] * wi;
            xr[2*i + 1] = tr;
            xi[2*i + 1] = ti;
        }",
    )
}

/// First-order IIR in direct form I.
pub fn iir_df1() -> Kernel {
    Kernel::from_source(
        "iir_df1",
        "first-order IIR, direct form I",
        "for (i = 1; i < 256; i++) {
            y[i] = b0 * x[i] + b1 * x[i - 1] - a1 * y[i - 1];
        }",
    )
}

/// Decimation by two (coefficient-2 reads, stride-1 writes).
pub fn decimator() -> Kernel {
    Kernel::from_source(
        "decimator",
        "decimate-by-two: y[i] = (x[2i] + x[2i+1]) / 2",
        "for (i = 0; i < 128; i++) {
            y[i] = (x[2*i] + x[2*i + 1]) / 2;
        }",
    )
}

/// 3×3 2D convolution over a 16-wide image, taps in data registers.
///
/// The nest sweeps full rows, so flattening is exact (zero carries): the
/// image reads form three row-chains at offsets `{0,1,2}`, `{16,17,18}`
/// and `{32,33,34}` — a genuinely two-dimensional access pattern.
pub fn conv2d() -> Kernel {
    Kernel::from_source(
        "conv2d",
        "3x3 convolution over a 16-wide image, row-major, taps in registers",
        "array img[18][16];
        array out[16][16];
        for (i = 0; i < 16; i++) {
            for (j = 0; j < 16; j++) {
                out[i][j] = w00 * img[i][j]     + w01 * img[i][j + 1]     + w02 * img[i][j + 2]
                          + w10 * img[i + 1][j] + w11 * img[i + 1][j + 1] + w12 * img[i + 1][j + 2]
                          + w20 * img[i + 2][j] + w21 * img[i + 2][j + 1] + w22 * img[i + 2][j + 2];
            }
        }",
    )
}

/// 16×16 matrix transpose: the write side walks a column (stride 16)
/// and carries back 255 words at every row boundary — the flattened
/// nest's carry mechanism at work.
pub fn transpose() -> Kernel {
    Kernel::from_source(
        "transpose",
        "16x16 matrix transpose, column-strided writes with row-boundary carry",
        "array src[16][16];
        array dst[16][16];
        for (i = 0; i < 16; i++) {
            for (j = 0; j < 16; j++) {
                dst[j][i] = src[i][j];
            }
        }",
    )
}

/// Five-point stencil over the interior of an 18×16 grid. The inner
/// loop covers 14 of 16 columns, so both arrays carry 2 words per row.
pub fn stencil5() -> Kernel {
    Kernel::from_source(
        "stencil5",
        "5-point stencil on an 18x16 grid interior, carry 2 per row",
        "array u[18][16];
        array v[18][16];
        for (i = 1; i < 17; i++) {
            for (j = 1; j < 15; j++) {
                v[i][j] = u[i][j - 1] + u[i][j + 1] + u[i - 1][j] + u[i + 1][j] - c4 * u[i][j];
            }
        }",
    )
}

/// The paper's running example (Section 2, Figure 1) as a kernel.
pub fn paper_example() -> Kernel {
    Kernel::from_source(
        "paper_example",
        "the DATE 1998 running example: offsets 1, 0, 2, -1, 1, 0, -2",
        raco_ir::examples::PAPER_LOOP_SOURCE,
    )
}

/// The full suite as one multi-loop DSL program — a realistic batch
/// workload for the compilation pipeline (each loop is an independent
/// allocation problem, exactly like kernels pasted back to back in a
/// real DSP source file).
///
/// `array` declarations scope over a whole unit, so kernels use
/// suite-unique names for their multi-dimensional arrays.
///
/// ```
/// let source = raco_kernels::suite_program();
/// let loops = raco_ir::dsl::parse_program(&source).unwrap();
/// assert_eq!(loops.len(), raco_kernels::suite().len());
/// ```
pub fn suite_program() -> String {
    let mut source = String::new();
    for kernel in suite() {
        source.push_str("// ");
        source.push_str(kernel.name());
        source.push_str(": ");
        source.push_str(kernel.description());
        source.push('\n');
        source.push_str(kernel.source());
        source.push('\n');
    }
    source
}

/// The full default suite, FIR variants included.
pub fn suite() -> Vec<Kernel> {
    vec![
        fir(4),
        fir(8),
        biquad(),
        convolution(),
        correlation(),
        dot_product(),
        vector_add(),
        n_real_updates(),
        n_complex_updates(),
        matmul_inner(8),
        lms(),
        lattice(),
        fft_butterfly(),
        iir_df1(),
        decimator(),
        conv2d(),
        transpose(),
        stencil5(),
        paper_example(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_parse_and_have_accesses() {
        for k in suite() {
            assert!(!k.name().is_empty());
            assert!(!k.description().is_empty());
            assert!(k.accesses() > 0, "{} has no accesses", k.name());
            assert!(k.compute_ops() > 0, "{} has no compute", k.name());
            assert!(k.spec().validate().is_ok(), "{} invalid", k.name());
        }
    }

    #[test]
    fn suite_names_are_unique() {
        let mut names: Vec<String> = suite().iter().map(|k| k.name().to_owned()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), suite().len());
    }

    #[test]
    fn fir_access_pattern_matches_tap_count() {
        let k = fir(4);
        let x = k
            .spec()
            .pattern_for(k.spec().array_id("x").unwrap())
            .unwrap();
        assert_eq!(x.offsets(), vec![0, -1, -2, -3]);
        let y = k
            .spec()
            .pattern_for(k.spec().array_id("y").unwrap())
            .unwrap();
        assert_eq!(y.offsets(), vec![0]);
        // 4 multiplies + 3 adds.
        assert_eq!(k.compute_ops(), 7);
    }

    #[test]
    fn biquad_touches_w_five_times() {
        let k = biquad();
        let w = k
            .spec()
            .pattern_for(k.spec().array_id("w").unwrap())
            .unwrap();
        // reads w[i-1], w[i-2], write w[i], reads w[i], w[i-1], w[i-2].
        assert_eq!(w.offsets(), vec![-1, -2, 0, 0, -1, -2]);
    }

    #[test]
    fn convolution_uses_negative_coefficient() {
        let k = convolution();
        let h = k
            .spec()
            .pattern_for(k.spec().array_id("h").unwrap())
            .unwrap();
        assert_eq!(h.stride(), -1);
        assert_eq!(h.offsets(), vec![15]);
    }

    #[test]
    fn matmul_column_has_large_stride() {
        let k = matmul_inner(8);
        let b = k
            .spec()
            .pattern_for(k.spec().array_id("b").unwrap())
            .unwrap();
        assert_eq!(b.stride(), 8);
    }

    #[test]
    fn complex_updates_interleave_with_coefficient_two() {
        let k = n_complex_updates();
        for p in k.spec().patterns() {
            assert_eq!(p.stride(), 2, "array {} stride", p.array_name());
        }
    }

    #[test]
    fn conv2d_reads_three_row_chains_with_zero_carry() {
        let k = conv2d();
        let spec = k.spec();
        let nest = spec.nest().expect("conv2d is a nest");
        assert_eq!(nest.inner_trips(), 16);
        assert_eq!(nest.total_iterations(), 256);
        let img = spec.pattern_for(spec.array_id("img").unwrap()).unwrap();
        assert_eq!(img.offsets(), vec![0, 1, 2, 16, 17, 18, 32, 33, 34]);
        assert_eq!(
            spec.array_info(spec.array_id("img").unwrap())
                .unwrap()
                .carries(),
            &[0],
            "full-row sweep flattens exactly"
        );
        // 9 multiplies + 8 adds.
        assert_eq!(k.compute_ops(), 17);
    }

    #[test]
    fn transpose_writes_carry_backwards() {
        let k = transpose();
        let spec = k.spec();
        let dst = spec.array_info(spec.array_id("dst").unwrap()).unwrap();
        assert_eq!(dst.coefficient(), 16);
        assert_eq!(dst.carries(), &[1 - 256]);
        let src = spec.array_info(spec.array_id("src").unwrap()).unwrap();
        assert_eq!(src.carries(), &[0]);
    }

    #[test]
    fn stencil5_interior_sweep_carries_two_per_row() {
        let k = stencil5();
        let spec = k.spec();
        assert_eq!(spec.nest().unwrap().inner_trips(), 14);
        for p in spec.patterns() {
            let info = spec.array_info(p.array()).unwrap();
            assert_eq!(info.carries(), &[2], "array {}", p.array_name());
        }
    }

    #[test]
    fn paper_example_kernel_matches_the_canned_loop() {
        let k = paper_example();
        assert_eq!(
            k.spec().patterns()[0].offsets(),
            vec![1, 0, 2, -1, 1, 0, -2]
        );
    }

    #[test]
    fn compute_ops_counts_operators() {
        // 1 mul + 1 add + compound add = 3.
        let k = Kernel::from_source(
            "t",
            "test",
            "for (i = 0; i < 4; i++) { acc += a[i] * b[i] + 1; }",
        );
        assert_eq!(k.compute_ops(), 3);
    }

    #[test]
    fn kernels_allocate_on_default_machines() {
        use raco_core::Optimizer;
        use raco_ir::AguSpec;
        let agu = AguSpec::new(8, 1).unwrap();
        for k in suite() {
            let alloc = Optimizer::new(agu)
                .allocate_loop(k.spec())
                .unwrap_or_else(|e| panic!("{} fails to allocate: {e}", k.name()));
            assert!(alloc.total_registers() <= 8, "{}", k.name());
        }
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn fir_rejects_zero_taps() {
        let _ = fir(0);
    }
}
