//! # raco-oa — offset assignment for scalar variables
//!
//! The DATE 1998 paper optimizes **array** address computation and
//! declares itself "complementary to work done on optimized addressing of
//! scalar program variables" — its refs \[4\] (Liao et al., PLDI 1995,
//! *Simple Offset Assignment*) and \[5\] (Leupers/Marwedel, ICCAD 1996,
//! *General Offset Assignment*). This crate implements that complementary
//! side, so the repository covers both halves of DSP address optimization:
//!
//! * **SOA** ([`soa`]): place scalar variables in one stack frame such
//!   that a single address register with free post-increment/decrement
//!   (range `M`, classically 1) serves an access sequence with as few
//!   explicit address loads as possible. Liao's maximum-weight
//!   path-cover heuristic on the *access graph* is implemented with
//!   deterministic tie-breaking, plus a frequency-biased tie-break
//!   variant.
//! * **GOA** ([`goa`]): the general problem with `k` address registers —
//!   variables are partitioned across registers, each partition solved as
//!   an SOA subproblem.
//! * **Oracles** ([`exhaustive`]): optimal layouts/partitions by
//!   enumeration for small instances, used in tests and the E8
//!   experiment.
//!
//! ## Example
//!
//! ```
//! use raco_oa::{soa, AccessSequence};
//!
//! // The classic motivating shape: variables accessed in a zig-zag.
//! let (seq, names) = AccessSequence::from_names(&["a", "b", "c", "a", "b", "d", "a", "c"]);
//! let layout = soa::liao(&seq);
//! let cost = layout.cost(&seq, 1);
//! // The naive first-use layout is never better than Liao here:
//! let naive = raco_oa::StackLayout::first_use(&seq);
//! assert!(cost <= naive.cost(&seq, 1));
//! assert_eq!(names.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exhaustive;
pub mod goa;
mod graph;
mod sequence;
pub mod soa;

pub use graph::AccessGraph;
pub use sequence::{AccessSequence, StackLayout, VarId};
