//! Access sequences over scalar variables, and stack layouts.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a scalar variable within one [`AccessSequence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A linear sequence of scalar-variable accesses — the input of offset
/// assignment.
///
/// # Examples
///
/// ```
/// use raco_oa::AccessSequence;
/// let (seq, names) = AccessSequence::from_names(&["a", "b", "a"]);
/// assert_eq!(seq.len(), 3);
/// assert_eq!(seq.variables(), 2);
/// assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessSequence {
    accesses: Vec<VarId>,
    variables: usize,
}

impl AccessSequence {
    /// Builds a sequence from dense variable ids.
    ///
    /// # Panics
    ///
    /// Panics if `accesses` is empty or `variables` does not cover every
    /// id used.
    pub fn new(accesses: Vec<VarId>, variables: usize) -> Self {
        assert!(!accesses.is_empty(), "sequence must contain accesses");
        assert!(
            accesses.iter().all(|v| v.index() < variables),
            "all accessed variables must be declared"
        );
        AccessSequence {
            accesses,
            variables,
        }
    }

    /// Builds a sequence from variable names, assigning dense ids in
    /// first-use order. Returns the sequence and the id-to-name table.
    pub fn from_names(names: &[&str]) -> (Self, Vec<String>) {
        let mut table: HashMap<&str, u32> = HashMap::new();
        let mut order: Vec<String> = Vec::new();
        let accesses = names
            .iter()
            .map(|&n| {
                let next = table.len() as u32;
                let id = *table.entry(n).or_insert_with(|| {
                    order.push(n.to_owned());
                    next
                });
                VarId(id)
            })
            .collect();
        (
            AccessSequence {
                accesses,
                variables: order.len(),
            },
            order,
        )
    }

    /// The accesses in program order.
    pub fn accesses(&self) -> &[VarId] {
        &self.accesses
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Sequences are never empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Number of distinct variables.
    pub fn variables(&self) -> usize {
        self.variables
    }

    /// Per-variable access counts.
    pub fn frequencies(&self) -> Vec<u32> {
        let mut freq = vec![0u32; self.variables];
        for v in &self.accesses {
            freq[v.index()] += 1;
        }
        freq
    }

    /// The subsequence of accesses to variables for which `keep` is true,
    /// preserving order (used by GOA to evaluate one partition).
    pub fn project(&self, keep: &[bool]) -> Option<AccessSequence> {
        let accesses: Vec<VarId> = self
            .accesses
            .iter()
            .copied()
            .filter(|v| keep[v.index()])
            .collect();
        if accesses.is_empty() {
            return None;
        }
        Some(AccessSequence {
            accesses,
            variables: self.variables,
        })
    }
}

/// A placement of every variable at a distinct stack offset.
///
/// Offsets are `0..variables`; the cost model charges one explicit address
/// instruction whenever consecutive accesses are more than `m` slots
/// apart (the classic SOA cost has `m = 1`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StackLayout {
    offset_of: Vec<usize>,
}

impl StackLayout {
    /// Builds a layout from a permutation `offset_of[var] = slot`.
    ///
    /// # Panics
    ///
    /// Panics if `offset_of` is not a permutation of `0..len`.
    pub fn new(offset_of: Vec<usize>) -> Self {
        let mut seen = vec![false; offset_of.len()];
        for &o in &offset_of {
            assert!(
                o < offset_of.len() && !seen[o],
                "layout must be a permutation"
            );
            seen[o] = true;
        }
        StackLayout { offset_of }
    }

    /// The identity layout: variable `i` at slot `i`.
    pub fn identity(variables: usize) -> Self {
        StackLayout {
            offset_of: (0..variables).collect(),
        }
    }

    /// Variables laid out in order of first use — what a naive compiler
    /// does and the baseline of experiment E8.
    pub fn first_use(seq: &AccessSequence) -> Self {
        let mut offset_of = vec![usize::MAX; seq.variables()];
        let mut next = 0;
        for v in seq.accesses() {
            if offset_of[v.index()] == usize::MAX {
                offset_of[v.index()] = next;
                next += 1;
            }
        }
        // Unaccessed variables (possible in projections) go last.
        for slot in &mut offset_of {
            if *slot == usize::MAX {
                *slot = next;
                next += 1;
            }
        }
        StackLayout { offset_of }
    }

    /// Stack slot of `var`.
    pub fn offset(&self, var: VarId) -> usize {
        self.offset_of[var.index()]
    }

    /// Number of variables placed.
    pub fn variables(&self) -> usize {
        self.offset_of.len()
    }

    /// The SOA cost of serving `seq` with one address register of
    /// auto-modify range `m` under this layout: the number of consecutive
    /// access pairs farther than `m` slots apart.
    pub fn cost(&self, seq: &AccessSequence, m: u32) -> u32 {
        seq.accesses()
            .windows(2)
            .filter(|w| {
                let a = self.offset(w[0]) as i64;
                let b = self.offset(w[1]) as i64;
                (a - b).unsigned_abs() > u64::from(m)
            })
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_names_assigns_first_use_ids() {
        let (seq, names) = AccessSequence::from_names(&["x", "y", "x", "z"]);
        assert_eq!(names, vec!["x", "y", "z"]);
        assert_eq!(seq.accesses(), &[VarId(0), VarId(1), VarId(0), VarId(2)]);
        assert_eq!(seq.variables(), 3);
        assert!(!seq.is_empty());
    }

    #[test]
    fn frequencies_count_accesses() {
        let (seq, _) = AccessSequence::from_names(&["a", "b", "a", "a"]);
        assert_eq!(seq.frequencies(), vec![3, 1]);
    }

    #[test]
    fn project_keeps_order_and_rejects_empty() {
        let (seq, _) = AccessSequence::from_names(&["a", "b", "c", "a"]);
        let sub = seq.project(&[true, false, true]).unwrap();
        assert_eq!(sub.accesses(), &[VarId(0), VarId(2), VarId(0)]);
        assert_eq!(seq.project(&[false, false, false]), None);
    }

    #[test]
    #[should_panic(expected = "must contain accesses")]
    fn empty_sequences_are_rejected() {
        let _ = AccessSequence::new(vec![], 0);
    }

    #[test]
    #[should_panic(expected = "must be declared")]
    fn out_of_range_ids_are_rejected() {
        let _ = AccessSequence::new(vec![VarId(3)], 2);
    }

    #[test]
    fn identity_and_first_use_layouts() {
        let (seq, _) = AccessSequence::from_names(&["b", "a", "b"]);
        let id = StackLayout::identity(2);
        assert_eq!(id.offset(VarId(0)), 0);
        let fu = StackLayout::first_use(&seq);
        assert_eq!(fu.offset(VarId(0)), 0, "b used first");
        assert_eq!(fu.offset(VarId(1)), 1);
        assert_eq!(fu.variables(), 2);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn layouts_must_be_permutations() {
        let _ = StackLayout::new(vec![0, 0, 1]);
    }

    #[test]
    fn cost_counts_over_range_hops() {
        // Layout a=0, b=1, c=2; sequence a c a b: hops 2, 2, 1 → cost 2.
        let (seq, _) = AccessSequence::from_names(&["a", "c", "a", "b"]);
        let layout = StackLayout::new(vec![0, 2, 1]); // a=0, c=1? careful:
                                                      // from_names ids: a=0, c=1, b=2. offsets: a→0, c→2, b→1.
        let layout2 = StackLayout::new(vec![0, 2, 1]);
        assert_eq!(layout, layout2);
        // hops: a(0)→c(2) = 2 over; c(2)→a(0) = 2 over; a(0)→b(1) = 1 ok.
        assert_eq!(layout.cost(&seq, 1), 2);
        assert_eq!(layout.cost(&seq, 2), 0);
    }

    #[test]
    fn single_access_sequences_cost_zero() {
        let (seq, _) = AccessSequence::from_names(&["a"]);
        assert_eq!(StackLayout::first_use(&seq).cost(&seq, 1), 0);
    }
}
