//! The access graph of Liao's SOA formulation.

use crate::sequence::{AccessSequence, VarId};

/// The weighted *access graph*: one node per variable, and an undirected
/// edge `{u, v}` weighted by how often `u` and `v` are accessed
/// consecutively. A maximum-weight Hamiltonian path maximizes the number
/// of free (distance-1) transitions — Liao's reduction of SOA.
///
/// # Examples
///
/// ```
/// use raco_oa::{AccessGraph, AccessSequence};
/// let (seq, _) = AccessSequence::from_names(&["a", "b", "a", "b", "c"]);
/// let g = AccessGraph::build(&seq);
/// assert_eq!(g.weight(raco_oa::VarId(0), raco_oa::VarId(1)), 3); // a-b ×3
/// assert_eq!(g.weight(raco_oa::VarId(1), raco_oa::VarId(2)), 1); // b-c ×1
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessGraph {
    variables: usize,
    /// Upper-triangular weight matrix, indexed via [`Self::key`].
    weights: Vec<u32>,
}

impl AccessGraph {
    /// Builds the access graph of a sequence.
    pub fn build(seq: &AccessSequence) -> Self {
        let n = seq.variables();
        let mut g = AccessGraph {
            variables: n,
            weights: vec![0; n * n],
        };
        for w in seq.accesses().windows(2) {
            if w[0] != w[1] {
                let k = g.key(w[0], w[1]);
                g.weights[k] += 1;
            }
        }
        g
    }

    fn key(&self, u: VarId, v: VarId) -> usize {
        let (a, b) = if u.index() <= v.index() {
            (u.index(), v.index())
        } else {
            (v.index(), u.index())
        };
        a * self.variables + b
    }

    /// Number of variables (nodes).
    pub fn variables(&self) -> usize {
        self.variables
    }

    /// Weight of the edge `{u, v}` (0 if absent).
    pub fn weight(&self, u: VarId, v: VarId) -> u32 {
        if u == v {
            return 0;
        }
        self.weights[self.key(u, v)]
    }

    /// All edges with positive weight, as `(u, v, weight)` with
    /// `u < v`, sorted by descending weight then ascending `(u, v)` —
    /// the deterministic order Liao's greedy heuristic consumes.
    pub fn edges_by_weight(&self) -> Vec<(VarId, VarId, u32)> {
        let mut edges = Vec::new();
        for a in 0..self.variables {
            for b in (a + 1)..self.variables {
                let w = self.weights[a * self.variables + b];
                if w > 0 {
                    edges.push((VarId(a as u32), VarId(b as u32), w));
                }
            }
        }
        edges.sort_by(|x, y| y.2.cmp(&x.2).then(x.0.cmp(&y.0)).then(x.1.cmp(&y.1)));
        edges
    }

    /// Total weight of all edges — equals the number of consecutive
    /// access pairs over distinct variables.
    pub fn total_weight(&self) -> u32 {
        let mut sum = 0;
        for a in 0..self.variables {
            for b in (a + 1)..self.variables {
                sum += self.weights[a * self.variables + b];
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_symmetric_and_exclude_self_pairs() {
        let (seq, _) = AccessSequence::from_names(&["a", "b", "b", "a", "c", "a"]);
        let g = AccessGraph::build(&seq);
        // Adjacent pairs: (a,b), (b,b) ignored, (b,a), (a,c), (c,a).
        assert_eq!(g.weight(VarId(0), VarId(1)), 2);
        assert_eq!(g.weight(VarId(1), VarId(0)), 2);
        assert_eq!(g.weight(VarId(0), VarId(2)), 2);
        assert_eq!(g.weight(VarId(0), VarId(0)), 0);
        assert_eq!(g.total_weight(), 4);
    }

    #[test]
    fn edges_sorted_by_weight_then_index() {
        let (seq, _) = AccessSequence::from_names(&["a", "c", "a", "b", "a", "c"]);
        let g = AccessGraph::build(&seq);
        let edges = g.edges_by_weight();
        // a-c weight 3 (a c, a c, and c a), a-b weight 2 (a b, b a).
        assert_eq!(edges[0], (VarId(0), VarId(1), 3)); // c has id 1
        assert_eq!(edges[1], (VarId(0), VarId(2), 2));
    }

    #[test]
    fn ties_are_ordered_lexicographically() {
        let (seq, _) = AccessSequence::from_names(&["a", "b", "c", "d"]);
        let g = AccessGraph::build(&seq);
        let edges = g.edges_by_weight();
        assert_eq!(
            edges,
            vec![
                (VarId(0), VarId(1), 1),
                (VarId(1), VarId(2), 1),
                (VarId(2), VarId(3), 1),
            ]
        );
    }

    #[test]
    fn single_variable_graph_has_no_edges() {
        let (seq, _) = AccessSequence::from_names(&["a", "a", "a"]);
        let g = AccessGraph::build(&seq);
        assert!(g.edges_by_weight().is_empty());
        assert_eq!(g.variables(), 1);
    }
}
