//! Exhaustive oracles for offset assignment (small instances).

use crate::sequence::{AccessSequence, StackLayout};

/// The optimal SOA layout by enumerating all `variables!` permutations.
///
/// # Panics
///
/// Panics if the sequence has more than 9 variables (9! = 362 880
/// layouts is the practical limit for tests).
///
/// # Examples
///
/// ```
/// use raco_oa::{exhaustive, AccessSequence};
/// let (seq, _) = AccessSequence::from_names(&["a", "c", "a", "c", "b"]);
/// let (layout, cost) = exhaustive::optimal_soa(&seq);
/// assert_eq!(cost, 0); // put a next to c, b next to either
/// assert_eq!(layout.variables(), 3);
/// ```
pub fn optimal_soa(seq: &AccessSequence) -> (StackLayout, u32) {
    let n = seq.variables();
    assert!(n <= 9, "exhaustive SOA limited to 9 variables");
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best: Option<(Vec<usize>, u32)> = None;
    permute(&mut perm, 0, &mut |p| {
        let layout = StackLayout::new(p.to_vec());
        let cost = layout.cost(seq, 1);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((p.to_vec(), cost));
        }
    });
    let (offsets, cost) = best.expect("n >= 1 has at least one permutation");
    (StackLayout::new(offsets), cost)
}

/// The optimal GOA cost by enumerating all variable→register assignments
/// (with [`crate::goa::evaluate_assignment`] scoring, which itself uses
/// the Liao heuristic per register — so this is "optimal partition,
/// heuristic layout").
///
/// # Panics
///
/// Panics if `variables > 10` or `k == 0`.
pub fn optimal_goa_partition(seq: &AccessSequence, k: usize) -> (Vec<usize>, u32) {
    let n = seq.variables();
    assert!(n <= 10, "exhaustive GOA limited to 10 variables");
    assert!(k > 0, "GOA needs at least one register");
    let mut assignment = vec![0usize; n];
    let mut best: Option<(Vec<usize>, u32)> = None;
    enumerate_assignments(&mut assignment, 0, k, &mut |a| {
        let cost = crate::goa::evaluate_assignment(seq, a, k);
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            best = Some((a.to_vec(), cost));
        }
    });
    best.expect("at least one assignment exists")
}

fn permute(perm: &mut Vec<usize>, at: usize, f: &mut impl FnMut(&[usize])) {
    if at == perm.len() {
        f(perm);
        return;
    }
    for i in at..perm.len() {
        perm.swap(at, i);
        permute(perm, at + 1, f);
        perm.swap(at, i);
    }
}

fn enumerate_assignments(
    assignment: &mut Vec<usize>,
    at: usize,
    k: usize,
    f: &mut impl FnMut(&[usize]),
) {
    if at == assignment.len() {
        f(assignment);
        return;
    }
    for r in 0..k {
        assignment[at] = r;
        enumerate_assignments(assignment, at + 1, k, f);
    }
    assignment[at] = 0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{goa, soa};

    #[test]
    fn optimal_soa_is_a_lower_bound_for_liao() {
        for names in [
            vec!["a", "b", "c", "a", "b", "d"],
            vec!["p", "q", "p", "r", "q", "r", "p"],
            vec!["a", "b", "c", "d", "e", "a", "e"],
        ] {
            let (seq, _) = AccessSequence::from_names(&names);
            let (_, optimal) = optimal_soa(&seq);
            let heuristic = soa::cost(&seq, &soa::liao(&seq));
            assert!(optimal <= heuristic, "{names:?}");
        }
    }

    #[test]
    fn goa_heuristic_is_bounded_by_optimal_partition() {
        let (seq, _) = AccessSequence::from_names(&["a", "x", "b", "y", "a", "x", "b", "y"]);
        for k in 1..=3 {
            let (_, optimal) = optimal_goa_partition(&seq, k);
            let heuristic = goa::run(&seq, k).cost();
            assert!(optimal <= heuristic, "k = {k}");
        }
    }

    #[test]
    fn permutation_count_is_factorial() {
        let mut count = 0;
        let mut perm: Vec<usize> = (0..5).collect();
        permute(&mut perm, 0, &mut |_| count += 1);
        assert_eq!(count, 120);
    }

    #[test]
    fn single_variable_optimum_is_zero() {
        let (seq, _) = AccessSequence::from_names(&["v", "v"]);
        assert_eq!(optimal_soa(&seq).1, 0);
        assert_eq!(optimal_goa_partition(&seq, 2).1, 0);
    }
}
