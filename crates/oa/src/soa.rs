//! Simple Offset Assignment — Liao's heuristic (the paper's ref \[4\]).
//!
//! Liao et al. showed that SOA is equivalent to finding a maximum-weight
//! path cover of the access graph: edges inside the cover become
//! distance-1 neighbours in the stack frame, so every covered adjacency
//! executes with a free post-increment/decrement. The greedy heuristic
//! scans edges by descending weight and accepts an edge unless it would
//! give a node degree 3 or close a cycle — exactly Kruskal with a degree
//! constraint.

use crate::graph::AccessGraph;
use crate::sequence::{AccessSequence, StackLayout};

/// Tie-breaking rule for equal-weight edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TieBreak {
    /// Lexicographic on `(u, v)` — Liao's original behaviour is
    /// unspecified; this is the deterministic default.
    Lexicographic,
    /// Prefer edges whose endpoints have higher total access frequency —
    /// a variant in the spirit of Leupers' tie-break studies, useful as an
    /// ablation.
    FrequencyBiased,
}

/// Runs Liao's SOA heuristic with the default (lexicographic) tie-break.
///
/// # Examples
///
/// ```
/// use raco_oa::{soa, AccessSequence};
/// let (seq, _) = AccessSequence::from_names(&["a", "b", "a", "b", "c", "b"]);
/// let layout = soa::liao(&seq);
/// // a and b are adjacent in every good layout: their edge weight is 3.
/// let dist = (layout.offset(raco_oa::VarId(0)) as i64
///     - layout.offset(raco_oa::VarId(1)) as i64).abs();
/// assert_eq!(dist, 1);
/// ```
pub fn liao(seq: &AccessSequence) -> StackLayout {
    liao_with(seq, TieBreak::Lexicographic)
}

/// Runs Liao's SOA heuristic with an explicit tie-break rule.
pub fn liao_with(seq: &AccessSequence, tie_break: TieBreak) -> StackLayout {
    let graph = AccessGraph::build(seq);
    let n = graph.variables();
    let mut edges = graph.edges_by_weight();
    if tie_break == TieBreak::FrequencyBiased {
        let freq = seq.frequencies();
        edges.sort_by(|x, y| {
            y.2.cmp(&x.2)
                .then_with(|| {
                    let fx = freq[x.0.index()] + freq[x.1.index()];
                    let fy = freq[y.0.index()] + freq[y.1.index()];
                    fy.cmp(&fx)
                })
                .then(x.0.cmp(&y.0))
                .then(x.1.cmp(&y.1))
        });
    }

    // Greedy path cover: degree <= 2 per node, no cycles (union-find).
    let mut degree = vec![0u8; n];
    let mut uf = UnionFind::new(n);
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (u, v, _) in edges {
        let (ui, vi) = (u.index(), v.index());
        if degree[ui] >= 2 || degree[vi] >= 2 {
            continue;
        }
        if uf.find(ui) == uf.find(vi) {
            continue; // would close a cycle
        }
        uf.union(ui, vi);
        degree[ui] += 1;
        degree[vi] += 1;
        adjacency[ui].push(vi);
        adjacency[vi].push(ui);
    }

    // Concatenate the resulting paths into one frame layout.
    let mut offset_of = vec![usize::MAX; n];
    let mut next_slot = 0;
    for start in 0..n {
        if degree[start] >= 2 || offset_of[start] != usize::MAX {
            continue; // interior node or already placed
        }
        // Walk the path from this endpoint (isolated nodes are length-1).
        let mut prev = usize::MAX;
        let mut cur = start;
        loop {
            offset_of[cur] = next_slot;
            next_slot += 1;
            let next = adjacency[cur].iter().copied().find(|&x| x != prev);
            match next {
                Some(n2) if offset_of[n2] == usize::MAX => {
                    prev = cur;
                    cur = n2;
                }
                _ => break,
            }
        }
    }
    // Degree-2 cycles cannot occur (union-find), so everything is placed.
    debug_assert!(offset_of.iter().all(|&o| o != usize::MAX));
    StackLayout::new(offset_of)
}

/// The SOA cost of a sequence under a layout with auto-modify range 1 —
/// convenience wrapper matching the classic formulation.
pub fn cost(seq: &AccessSequence, layout: &StackLayout) -> u32 {
    layout.cost(seq, 1)
}

/// Disjoint-set forest with path compression and union by size.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            self.parent[x] = self.find(self.parent[x]);
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use crate::sequence::VarId;

    #[test]
    fn heavy_edges_become_neighbours() {
        let (seq, _) = AccessSequence::from_names(&["a", "b", "a", "b", "a", "c"]);
        let layout = liao(&seq);
        let d = (layout.offset(VarId(0)) as i64 - layout.offset(VarId(1)) as i64).abs();
        assert_eq!(d, 1, "a-b edge (weight 4) must be kept");
    }

    #[test]
    fn liao_matches_optimum_on_small_cases() {
        for names in [
            vec!["a", "b", "c", "a", "b", "d", "a", "c"],
            vec!["a", "b", "c", "d", "a", "c"],
            vec!["x", "y", "x", "z", "y", "z", "x"],
            vec!["a", "b", "b", "a"],
        ] {
            let (seq, _) = AccessSequence::from_names(&names);
            let heuristic = cost(&seq, &liao(&seq));
            let optimal = exhaustive::optimal_soa(&seq).1;
            assert!(
                heuristic <= optimal + 1,
                "Liao within 1 of optimum on {names:?}: {heuristic} vs {optimal}"
            );
            assert!(heuristic >= optimal);
        }
    }

    #[test]
    fn zigzag_beats_first_use() {
        // First-use order a,b,c places c two away from a, but the sequence
        // alternates a-c heavily.
        let (seq, _) = AccessSequence::from_names(&["a", "b", "a", "c", "a", "c", "a", "c"]);
        let naive = StackLayout::first_use(&seq).cost(&seq, 1);
        let opt = cost(&seq, &liao(&seq));
        assert!(opt < naive, "Liao {opt} must beat first-use {naive}");
    }

    #[test]
    fn single_variable_and_two_variable_sequences() {
        let (seq, _) = AccessSequence::from_names(&["a", "a", "a"]);
        assert_eq!(cost(&seq, &liao(&seq)), 0);
        let (seq, _) = AccessSequence::from_names(&["a", "b", "a", "b"]);
        assert_eq!(cost(&seq, &liao(&seq)), 0);
    }

    #[test]
    fn tie_breaks_are_deterministic_and_comparable() {
        let (seq, _) =
            AccessSequence::from_names(&["a", "b", "c", "d", "a", "b", "c", "d", "a", "d"]);
        let lex1 = liao_with(&seq, TieBreak::Lexicographic);
        let lex2 = liao_with(&seq, TieBreak::Lexicographic);
        assert_eq!(lex1, lex2);
        let freq = liao_with(&seq, TieBreak::FrequencyBiased);
        // Both must produce valid layouts over the same variables.
        assert_eq!(freq.variables(), lex1.variables());
    }

    #[test]
    fn layout_is_always_a_permutation() {
        // Dense graph with many ties — exercises path concatenation.
        let (seq, _) = AccessSequence::from_names(&[
            "a", "b", "c", "d", "e", "a", "c", "e", "b", "d", "a", "e",
        ]);
        let layout = liao(&seq);
        let mut seen = vec![false; layout.variables()];
        for v in 0..layout.variables() {
            let o = layout.offset(VarId(v as u32));
            assert!(!seen[o]);
            seen[o] = true;
        }
    }
}
