//! General Offset Assignment — `k` address registers (the paper's
//! ref \[5\], Leupers/Marwedel, ICCAD 1996).
//!
//! GOA partitions the variables among `k` address registers; each
//! register serves the subsequence of accesses to its own variables as an
//! SOA subproblem. The heuristic here assigns variables greedily in
//! descending access frequency to the register where the marginal SOA
//! cost increase is smallest, followed by a single-variable improvement
//! pass. The total cost additionally charges one address-register load
//! per *used* register beyond the first (matching the usual GOA setup
//! cost accounting).

use crate::sequence::{AccessSequence, StackLayout, VarId};
use crate::soa;

/// A GOA solution: a register per variable plus the per-register layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoaSolution {
    register_of: Vec<usize>,
    registers: usize,
    cost: u32,
}

impl GoaSolution {
    /// Register serving `var`.
    pub fn register_of(&self, var: VarId) -> usize {
        self.register_of[var.index()]
    }

    /// The full variable → register map.
    pub fn assignment(&self) -> &[usize] {
        &self.register_of
    }

    /// Number of registers made available (the `k` of the problem).
    pub fn registers(&self) -> usize {
        self.registers
    }

    /// Total cost: SOA cost of every register's subsequence plus the
    /// setup loads for extra used registers.
    pub fn cost(&self) -> u32 {
        self.cost
    }
}

/// Evaluates a fixed variable→register assignment: SOA (via Liao) on
/// every register's projected subsequence, plus one setup load per used
/// register beyond the first.
pub fn evaluate_assignment(seq: &AccessSequence, register_of: &[usize], k: usize) -> u32 {
    let mut total = 0u32;
    let mut used = 0u32;
    for r in 0..k {
        let keep: Vec<bool> = (0..seq.variables()).map(|v| register_of[v] == r).collect();
        if let Some(sub) = seq.project(&keep) {
            used += 1;
            let layout = soa::liao(&sub);
            total += layout.cost(&sub, 1);
        }
    }
    total + used.saturating_sub(1)
}

/// Runs the GOA heuristic for `k` registers.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// use raco_oa::{goa, AccessSequence};
/// let (seq, _) = AccessSequence::from_names(&[
///     "a", "x", "a", "y", "a", "x", "b", "y", "b", "x",
/// ]);
/// let one = goa::run(&seq, 1);
/// let two = goa::run(&seq, 2);
/// assert!(two.cost() <= one.cost(), "a second register cannot hurt");
/// ```
pub fn run(seq: &AccessSequence, k: usize) -> GoaSolution {
    assert!(k > 0, "GOA needs at least one register");
    let n = seq.variables();
    let k = k.min(n.max(1));
    // Seed: everything on register 0.
    let mut register_of = vec![0usize; n];
    if k > 1 {
        // Greedy: visit variables in descending frequency and re-assign
        // each to the register minimizing total cost.
        let freq = seq.frequencies();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(freq[v]));
        for &v in &order {
            let mut best = (evaluate_assignment(seq, &register_of, k), register_of[v]);
            for r in 0..k {
                if r == register_of[v] {
                    continue;
                }
                let old = register_of[v];
                register_of[v] = r;
                let cost = evaluate_assignment(seq, &register_of, k);
                if cost < best.0 {
                    best = (cost, r);
                }
                register_of[v] = old;
            }
            register_of[v] = best.1;
        }
        // Local improvement: single-variable moves, then pair moves
        // (re-assigning two variables together escapes the classic local
        // minimum where two interleaved zig-zags sit on one register).
        let mut rounds = 0;
        loop {
            rounds += 1;
            if rounds > 8 {
                break;
            }
            let mut improved = false;
            // Single moves.
            for v in 0..n {
                let current = evaluate_assignment(seq, &register_of, k);
                for r in 0..k {
                    if r == register_of[v] {
                        continue;
                    }
                    let old = register_of[v];
                    register_of[v] = r;
                    if evaluate_assignment(seq, &register_of, k) < current {
                        improved = true;
                        break;
                    }
                    register_of[v] = old;
                }
            }
            if improved {
                continue;
            }
            // Pair moves: both variables to the same target register.
            'pairs: for u in 0..n {
                for v in (u + 1)..n {
                    let current = evaluate_assignment(seq, &register_of, k);
                    for r in 0..k {
                        if r == register_of[u] && r == register_of[v] {
                            continue;
                        }
                        let (ou, ov) = (register_of[u], register_of[v]);
                        register_of[u] = r;
                        register_of[v] = r;
                        if evaluate_assignment(seq, &register_of, k) < current {
                            improved = true;
                            break 'pairs;
                        }
                        register_of[u] = ou;
                        register_of[v] = ov;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
    let cost = evaluate_assignment(seq, &register_of, k);
    GoaSolution {
        register_of,
        registers: k,
        cost,
    }
}

/// The layouts implied by a GOA solution, one per register (empty
/// registers yield `None`).
pub fn layouts(seq: &AccessSequence, solution: &GoaSolution) -> Vec<Option<StackLayout>> {
    (0..solution.registers())
        .map(|r| {
            let keep: Vec<bool> = (0..seq.variables())
                .map(|v| solution.register_of[v] == r)
                .collect();
            seq.project(&keep).map(|sub| soa::liao(&sub))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interleaved() -> AccessSequence {
        // Two independent zig-zags: {a, b} and {x, y} interleaved — one
        // register pays dearly, two registers are nearly free.
        let (seq, _) =
            AccessSequence::from_names(&["a", "x", "b", "y", "a", "x", "b", "y", "a", "x"]);
        seq
    }

    #[test]
    fn more_registers_never_increase_cost() {
        let seq = interleaved();
        let mut last = u32::MAX;
        for k in 1..=4 {
            let solution = run(&seq, k);
            assert!(solution.cost() <= last, "k = {k}");
            last = solution.cost();
        }
    }

    #[test]
    fn two_registers_split_the_interleaved_zigzags() {
        let seq = interleaved();
        let two = run(&seq, 2);
        // The access sequence is a 4-cycle a→x→b→y→…, so *any* 2+2 split
        // leaves each register alternating between two variables: SOA
        // cost 0 per register, +1 setup for the second register. The
        // heuristic must find one of these optimal splits.
        assert_eq!(two.cost(), 1);
        let on_r0 = (0..4)
            .filter(|&v| two.register_of(VarId(v)) == two.register_of(VarId(0)))
            .count();
        assert_eq!(on_r0, 2, "must be a 2+2 split");
    }

    #[test]
    fn k_larger_than_variable_count_is_clamped() {
        let (seq, _) = AccessSequence::from_names(&["a", "b"]);
        let solution = run(&seq, 10);
        assert!(solution.registers() <= 2);
    }

    #[test]
    fn evaluate_assignment_counts_setup_loads() {
        let (seq, _) = AccessSequence::from_names(&["a", "b", "a", "b"]);
        // Both on one register: zero cost, no setup surcharge.
        assert_eq!(evaluate_assignment(&seq, &[0, 0], 2), 0);
        // Split: each subsequence trivial, but one extra register setup.
        assert_eq!(evaluate_assignment(&seq, &[0, 1], 2), 1);
    }

    #[test]
    fn layouts_cover_used_registers_only() {
        let seq = interleaved();
        let solution = run(&seq, 3);
        let ls = layouts(&seq, &solution);
        assert_eq!(ls.len(), solution.registers());
        let used = ls.iter().filter(|l| l.is_some()).count();
        assert!(used >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_registers_rejected() {
        let (seq, _) = AccessSequence::from_names(&["a"]);
        let _ = run(&seq, 0);
    }
}
