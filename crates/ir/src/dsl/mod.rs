//! A small C-like loop language.
//!
//! The DSL exists so that loops — the paper's inputs — can be written as
//! text instead of hand-assembled IR. It understands `for` loops (and
//! perfect loop *nests*) whose innermost body is a list of assignments
//! over scalars and array elements with affine index expressions, plus
//! `array` declarations giving multi-dimensional arrays their shapes:
//!
//! ```text
//! array x[18][16];                      // 18 rows of 16 words, row-major
//! array y[16][16];
//! for (i = 0; i < 16; i++) {
//!     for (j = 0; j < 16; j++) {
//!         y[i][j] = x[i][j] + x[i + 2][j + 2];
//!     }
//! }
//! ```
//!
//! * Index expressions must be affine in the nest's induction variables
//!   (`c1*i + c2*j + d` with integer constants, written in any
//!   arithmetically equivalent form).
//! * Multi-dimensional subscripts linearize row-major against the
//!   array's declaration; undeclared arrays are one-dimensional.
//! * All accesses to one array must share the same coefficients; the
//!   uniform-distance model of the paper cannot represent mixed
//!   coefficients, and [`parse_loop`] reports them as errors.
//! * Nests must be *perfect* (each body is either statements or exactly
//!   one nested loop) with constant bounds; they are lowered by
//!   flattening — see [`lower_unit_loop`] and
//!   [`LoopNest`](crate::model::LoopNest).
//! * Scalars are assumed to live in data registers and do not contribute
//!   memory accesses.
//!
//! The access order produced for each statement is: all reads of the
//! right-hand side from left to right, then (for compound assignments) the
//! read of the left-hand side, then the write of the left-hand side.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = raco_ir::dsl::parse_loop(
//!     "for (i = 0; i < 64; i++) { y[i] = x[i + 1] - x[i - 1]; }",
//! )?;
//! assert_eq!(spec.len(), 3);
//! assert_eq!(spec.stride(), 1);
//!
//! // A 2D stencil row sweep flattens to a single affine loop:
//! let spec = raco_ir::dsl::parse_loop(
//!     "array u[8][8];
//!      for (i = 0; i < 7; i++) { for (j = 0; j < 8; j++) { s += u[i][j] + u[i + 1][j]; } }",
//! )?;
//! assert_eq!(spec.nest().unwrap().inner_trips(), 8);
//! # Ok(())
//! # }
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{AssignOp, BinOp, CmpOp, Cond, Decl, Expr, ForLoop, LValue, Stmt, Update};
pub use lexer::Span;
pub use lower::{lower_loop, lower_unit_loop};
pub use parser::{LowerError, ParseError, ParseErrorKind};

use crate::model::LoopSpec;

/// Parses a `for` loop from source text and lowers it to a [`LoopSpec`].
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the byte span and a line/column
/// rendering for lexical errors, syntax errors and lowering errors
/// (non-affine indices, mixed coefficients, zero stride …).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = raco_ir::dsl::parse_loop(
///     "for (i = 2; i <= 100; i++) { s += A[i]; }",
/// )?;
/// assert_eq!(spec.var(), "i");
/// # Ok(())
/// # }
/// ```
pub fn parse_loop(source: &str) -> Result<LoopSpec, ParseError> {
    let (decls, mut loops) = parse_unit(source)?;
    if loops.len() != 1 {
        // Multiple loops need parse_program; report the second loop's
        // position as unexpected input.
        let second = &loops[1];
        return Err(ParseError::new(
            ParseErrorKind::UnexpectedToken {
                found: "a second loop".to_owned(),
                expected: "end of input (use parse_program for multi-loop sources)".to_owned(),
            },
            second.span,
            source,
        ));
    }
    let ast = loops.pop().expect("checked above");
    lower::lower_unit_loop(&decls, &ast).map_err(|e| e.attach_source(source))
}

/// Parses a `for` loop (or perfect nest) into its [`ForLoop`] AST
/// without lowering.
///
/// Useful for pretty printing or custom analyses. Array declarations
/// are not accepted here — they belong to a compilation unit; use
/// [`parse_unit`] for sources that declare shapes.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntax errors.
pub fn parse_for(source: &str) -> Result<ForLoop, ParseError> {
    parser::Parser::new(source)?.parse_for_loop()
}

/// Parses a whole compilation unit into its raw parts: `array`
/// declarations and loop (nest) ASTs, without lowering.
///
/// Declarations scope over the entire unit, wherever they appear.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntax errors (including
/// duplicate declarations).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (decls, loops) = raco_ir::dsl::parse_unit(
///     "array m[2][3];
///      for (i = 0; i < 2; i++) { for (j = 0; j < 3; j++) { m[i][j] = 0; } }",
/// )?;
/// assert_eq!(decls[0].dims, vec![2, 3]);
/// assert_eq!(loops[0].depth(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_unit(source: &str) -> Result<(Vec<Decl>, Vec<ForLoop>), ParseError> {
    parser::Parser::new(source)?.parse_unit()
}

/// Parses a whole program — one or more `for` loops — and lowers each to
/// a [`LoopSpec`] named `loop0`, `loop1`, ….
///
/// Real DSP sources contain several kernels back to back; each loop is an
/// independent allocation problem (address registers are re-initialized
/// between loops), so the result is simply a list.
///
/// # Errors
///
/// Returns a [`ParseError`] on the first lexical, syntax or lowering
/// error.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let loops = raco_ir::dsl::parse_program(
///     "for (i = 0; i < 8; i++) { y[i] = x[i]; }
///      for (j = 0; j < 4; j++) { z[j] = y[2 * j]; }",
/// )?;
/// assert_eq!(loops.len(), 2);
/// assert_eq!(loops[1].name(), "loop1");
/// assert_eq!(loops[1].var(), "j");
/// # Ok(())
/// # }
/// ```
pub fn parse_program(source: &str) -> Result<Vec<LoopSpec>, ParseError> {
    let (decls, asts) = parse_unit(source)?;
    asts.iter()
        .enumerate()
        .map(|(i, ast)| {
            let mut spec =
                lower::lower_unit_loop(&decls, ast).map_err(|e| e.attach_source(source))?;
            spec.set_name(&format!("loop{i}"));
            Ok(spec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AccessKind;

    #[test]
    fn end_to_end_single_array() {
        let spec =
            parse_loop("for (i = 2; i <= N; i++) { s = A[i+1] + A[i] + A[i+2]; }").expect("parse");
        assert_eq!(spec.var(), "i");
        assert_eq!(spec.start(), 2);
        assert_eq!(spec.stride(), 1);
        let p = &spec.patterns()[0];
        assert_eq!(p.offsets(), vec![1, 0, 2]);
    }

    #[test]
    fn compound_assignment_reads_then_writes_lhs() {
        let spec = parse_loop("for (i = 0; i < 8; i++) { A[i] += B[i+3]; }").expect("parse");
        let kinds: Vec<_> = spec.accesses().iter().map(|a| (a.offset, a.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (3, AccessKind::Read),  // RHS read of B[i+3]
                (0, AccessKind::Read),  // LHS read of A[i]
                (0, AccessKind::Write), // LHS write of A[i]
            ]
        );
    }

    #[test]
    fn reversed_affine_form_is_accepted() {
        let spec = parse_loop("for (i = 0; i < 8; i++) { y[i] = h[7 - i]; }").expect("parse");
        let h = spec
            .patterns()
            .into_iter()
            .find(|p| p.array_name() == "h")
            .unwrap();
        assert_eq!(h.offsets(), vec![7]);
        assert_eq!(h.stride(), -1); // coefficient -1, loop stride 1
    }

    #[test]
    fn mixed_coefficients_are_reported() {
        let err = parse_loop("for (i = 0; i < 8; i++) { A[i] = A[2*i]; }").unwrap_err();
        assert!(matches!(
            err.kind(),
            ParseErrorKind::MixedCoefficients { .. }
        ));
    }

    #[test]
    fn error_positions_use_line_and_column() {
        let err = parse_loop("for (i = 0; i < 8; i++) {\n  A[j] = 1;\n}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2:"), "expected line 2 in `{msg}`");
    }

    #[test]
    fn programs_parse_multiple_loops_with_independent_variables() {
        let loops = parse_program(
            "// stage 1
             for (i = 0; i < 8; i++) { t[i] = x[i] * w[7 - i]; }
             /* stage 2 */
             for (k = 8; k > 0; k--) { y[k] = t[k] + t[k - 1]; }",
        )
        .unwrap();
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].name(), "loop0");
        assert_eq!(loops[0].var(), "i");
        assert_eq!(loops[1].var(), "k");
        assert_eq!(loops[1].stride(), -1);
        assert_eq!(loops[0].patterns().len(), 3);
    }

    #[test]
    fn program_errors_point_at_the_offending_loop() {
        let err = parse_program(
            "for (i = 0; i < 8; i++) { y[i] = x[i]; }
             for (j = 0; j < 8; j++) { y[j] = x[q]; }",
        )
        .unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::SymbolicIndex(_)));
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn single_loop_still_rejects_trailing_garbage() {
        assert!(parse_loop("for (i = 0; i < 8; i++) { } for").is_err());
        assert!(parse_program("for (i = 0; i < 8; i++) { } for").is_err());
    }

    #[test]
    fn nested_programs_share_declarations_across_loops() {
        let loops = parse_program(
            "array m[4][8];
             for (i = 0; i < 4; i++) { for (j = 0; j < 8; j++) { m[i][j] = 0; } }
             for (t = 0; t < 32; t++) { acc += q[t]; }",
        )
        .unwrap();
        assert_eq!(loops.len(), 2);
        assert!(loops[0].nest().is_some());
        assert!(loops[1].nest().is_none());
        assert_eq!(loops[0].name(), "loop0");
    }

    /// Table-driven error-path coverage: malformed nests and subscripts
    /// must produce positioned errors — never panics — and the position
    /// must point into the offending construct.
    #[test]
    fn error_paths_are_positioned_not_panics() {
        struct Case {
            source: &'static str,
            want: fn(&ParseErrorKind) -> bool,
            line: usize,
        }
        let cases = [
            // Non-affine subscripts.
            Case {
                source: "for (i = 0; i < 4; i++) {\n  s += A[i * i];\n}",
                want: |k| matches!(k, ParseErrorKind::NonAffineIndex),
                line: 2,
            },
            Case {
                source: "array x[4][4];\nfor (i = 0; i < 4; i++) {\n  for (j = 0; j < 4; j++) {\n    s += x[i][i * j];\n  }\n}",
                want: |k| matches!(k, ParseErrorKind::NonAffineIndex),
                line: 4,
            },
            // Dimension/rank mismatches.
            Case {
                source: "array x[4][4];\nfor (i = 0; i < 4; i++) {\n  s += x[i];\n}",
                want: |k| matches!(
                    k,
                    ParseErrorKind::RankMismatch { expected: 2, found: 1, .. }
                ),
                line: 3,
            },
            Case {
                source: "array x[4];\nfor (i = 0; i < 4; i++) {\n  s += x[i][0];\n}",
                want: |k| matches!(
                    k,
                    ParseErrorKind::RankMismatch { expected: 1, found: 2, .. }
                ),
                line: 3,
            },
            Case {
                source: "for (i = 0; i < 4; i++) {\n  s += x[i][0];\n}",
                want: |k| matches!(k, ParseErrorKind::UndeclaredArray(name) if name == "x"),
                line: 2,
            },
            // Unbound induction variables.
            Case {
                source: "for (i = 0; i < 4; i++) {\n  s += A[t + 1];\n}",
                want: |k| matches!(k, ParseErrorKind::SymbolicIndex(name) if name == "t"),
                line: 2,
            },
            Case {
                source: "for (i = 0; i < 4; i++) {\n  for (j = 0; j < 4; j++) {\n    y[j] = A[q];\n  }\n}",
                want: |k| matches!(k, ParseErrorKind::SymbolicIndex(name) if name == "q"),
                line: 3,
            },
            // Nest-shape errors.
            Case {
                source: "for (i = 0; i < 4; i++) {\n  s += A[i];\n  for (j = 0; j < 4; j++) {\n    s += A[j];\n  }\n}",
                want: |k| matches!(k, ParseErrorKind::ImperfectNest),
                line: 3,
            },
            Case {
                source: "for (i = 0; i < N; i++) {\n  for (j = 0; j < 4; j++) {\n    s += A[j];\n  }\n}",
                want: |k| matches!(k, ParseErrorKind::NonConstantNestBound(v) if v == "i"),
                line: 1,
            },
            Case {
                source: "for (i = 0; i != 4; i++) {\n  for (j = 0; j < 4; j++) {\n    s += A[j];\n  }\n}",
                want: |k| matches!(k, ParseErrorKind::DegenerateNestLevel(v) if v == "i"),
                line: 1,
            },
            // Declaration errors.
            Case {
                source: "array x[0];\nfor (i = 0; i < 4; i++) { s += x[i]; }",
                want: |k| matches!(k, ParseErrorKind::InvalidDimension(name) if name == "x"),
                line: 1,
            },
            Case {
                source: "array x[4];\narray x[8];\nfor (i = 0; i < 4; i++) { s += x[i]; }",
                want: |k| matches!(k, ParseErrorKind::DuplicateDeclaration(name) if name == "x"),
                line: 2,
            },
        ];
        for case in &cases {
            let err =
                parse_loop(case.source).expect_err(&format!("`{}` must not lower", case.source));
            assert!(
                (case.want)(err.kind()),
                "`{}` produced {:?}",
                case.source,
                err.kind()
            );
            assert_eq!(
                err.line(),
                case.line,
                "`{}` error at {}:{} — {}",
                case.source,
                err.line(),
                err.column(),
                err
            );
            assert!(err.column() >= 1);
            // The rendered message carries the position.
            assert!(err.to_string().contains(&format!("{}:", case.line)));
        }
    }
}
