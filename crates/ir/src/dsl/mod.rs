//! A small C-like loop language.
//!
//! The DSL exists so that loops — the paper's inputs — can be written as
//! text instead of hand-assembled IR. It understands a single `for` loop
//! whose body is a list of assignments over scalars and array elements with
//! affine index expressions:
//!
//! ```text
//! for (i = 2; i <= N; i++) {
//!     acc  = acc + A[i + 1] * A[i];     // reads A[i+1], A[i]
//!     B[2*i] += A[i - 1];               // reads A[i-1], B[2i]; writes B[2i]
//! }
//! ```
//!
//! * Index expressions must be affine in the loop variable: `c*i + d` with
//!   integer constants `c`, `d` (written in any arithmetically equivalent
//!   form, e.g. `63 - i`).
//! * All accesses to one array must share the same coefficient `c`; the
//!   uniform-distance model of the paper cannot represent mixed
//!   coefficients, and [`parse_loop`] reports them as errors.
//! * Scalars are assumed to live in data registers and do not contribute
//!   memory accesses.
//!
//! The access order produced for each statement is: all reads of the
//! right-hand side from left to right, then (for compound assignments) the
//! read of the left-hand side, then the write of the left-hand side.
//!
//! # Examples
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = raco_ir::dsl::parse_loop(
//!     "for (i = 0; i < 64; i++) { y[i] = x[i + 1] - x[i - 1]; }",
//! )?;
//! assert_eq!(spec.len(), 3);
//! assert_eq!(spec.stride(), 1);
//! # Ok(())
//! # }
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{AssignOp, BinOp, CmpOp, Cond, Expr, ForLoop, LValue, Stmt, Update};
pub use lexer::Span;
pub use lower::lower_loop;
pub use parser::{LowerError, ParseError, ParseErrorKind};

use crate::model::LoopSpec;

/// Parses a `for` loop from source text and lowers it to a [`LoopSpec`].
///
/// # Errors
///
/// Returns a [`ParseError`] carrying the byte span and a line/column
/// rendering for lexical errors, syntax errors and lowering errors
/// (non-affine indices, mixed coefficients, zero stride …).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = raco_ir::dsl::parse_loop(
///     "for (i = 2; i <= 100; i++) { s += A[i]; }",
/// )?;
/// assert_eq!(spec.var(), "i");
/// # Ok(())
/// # }
/// ```
pub fn parse_loop(source: &str) -> Result<LoopSpec, ParseError> {
    let ast = parse_for(source)?;
    lower::lower_loop(&ast).map_err(|e| e.attach_source(source))
}

/// Parses a `for` loop into its [`ForLoop`] AST without lowering.
///
/// Useful for pretty printing or custom analyses.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntax errors.
pub fn parse_for(source: &str) -> Result<ForLoop, ParseError> {
    parser::Parser::new(source)?.parse_for_loop()
}

/// Parses a whole program — one or more `for` loops — and lowers each to
/// a [`LoopSpec`] named `loop0`, `loop1`, ….
///
/// Real DSP sources contain several kernels back to back; each loop is an
/// independent allocation problem (address registers are re-initialized
/// between loops), so the result is simply a list.
///
/// # Errors
///
/// Returns a [`ParseError`] on the first lexical, syntax or lowering
/// error.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let loops = raco_ir::dsl::parse_program(
///     "for (i = 0; i < 8; i++) { y[i] = x[i]; }
///      for (j = 0; j < 4; j++) { z[j] = y[2 * j]; }",
/// )?;
/// assert_eq!(loops.len(), 2);
/// assert_eq!(loops[1].name(), "loop1");
/// assert_eq!(loops[1].var(), "j");
/// # Ok(())
/// # }
/// ```
pub fn parse_program(source: &str) -> Result<Vec<LoopSpec>, ParseError> {
    let asts = parser::Parser::new(source)?.parse_program()?;
    asts.iter()
        .enumerate()
        .map(|(i, ast)| {
            let mut spec = lower::lower_loop(ast).map_err(|e| e.attach_source(source))?;
            spec.set_name(&format!("loop{i}"));
            Ok(spec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AccessKind;

    #[test]
    fn end_to_end_single_array() {
        let spec =
            parse_loop("for (i = 2; i <= N; i++) { s = A[i+1] + A[i] + A[i+2]; }").expect("parse");
        assert_eq!(spec.var(), "i");
        assert_eq!(spec.start(), 2);
        assert_eq!(spec.stride(), 1);
        let p = &spec.patterns()[0];
        assert_eq!(p.offsets(), vec![1, 0, 2]);
    }

    #[test]
    fn compound_assignment_reads_then_writes_lhs() {
        let spec = parse_loop("for (i = 0; i < 8; i++) { A[i] += B[i+3]; }").expect("parse");
        let kinds: Vec<_> = spec.accesses().iter().map(|a| (a.offset, a.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                (3, AccessKind::Read),  // RHS read of B[i+3]
                (0, AccessKind::Read),  // LHS read of A[i]
                (0, AccessKind::Write), // LHS write of A[i]
            ]
        );
    }

    #[test]
    fn reversed_affine_form_is_accepted() {
        let spec = parse_loop("for (i = 0; i < 8; i++) { y[i] = h[7 - i]; }").expect("parse");
        let h = spec
            .patterns()
            .into_iter()
            .find(|p| p.array_name() == "h")
            .unwrap();
        assert_eq!(h.offsets(), vec![7]);
        assert_eq!(h.stride(), -1); // coefficient -1, loop stride 1
    }

    #[test]
    fn mixed_coefficients_are_reported() {
        let err = parse_loop("for (i = 0; i < 8; i++) { A[i] = A[2*i]; }").unwrap_err();
        assert!(matches!(
            err.kind(),
            ParseErrorKind::MixedCoefficients { .. }
        ));
    }

    #[test]
    fn error_positions_use_line_and_column() {
        let err = parse_loop("for (i = 0; i < 8; i++) {\n  A[j] = 1;\n}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2:"), "expected line 2 in `{msg}`");
    }

    #[test]
    fn programs_parse_multiple_loops_with_independent_variables() {
        let loops = parse_program(
            "// stage 1
             for (i = 0; i < 8; i++) { t[i] = x[i] * w[7 - i]; }
             /* stage 2 */
             for (k = 8; k > 0; k--) { y[k] = t[k] + t[k - 1]; }",
        )
        .unwrap();
        assert_eq!(loops.len(), 2);
        assert_eq!(loops[0].name(), "loop0");
        assert_eq!(loops[0].var(), "i");
        assert_eq!(loops[1].var(), "k");
        assert_eq!(loops[1].stride(), -1);
        assert_eq!(loops[0].patterns().len(), 3);
    }

    #[test]
    fn program_errors_point_at_the_offending_loop() {
        let err = parse_program(
            "for (i = 0; i < 8; i++) { y[i] = x[i]; }
             for (j = 0; j < 8; j++) { y[j] = x[q]; }",
        )
        .unwrap_err();
        assert!(matches!(err.kind(), ParseErrorKind::SymbolicIndex(_)));
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn single_loop_still_rejects_trailing_garbage() {
        assert!(parse_loop("for (i = 0; i < 8; i++) { } for").is_err());
        assert!(parse_program("for (i = 0; i < 8; i++) { } for").is_err());
    }
}
