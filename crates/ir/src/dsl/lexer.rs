//! Hand-written lexer for the loop DSL.
//!
//! Produces a flat token vector with byte spans. Comments (`// …` and
//! `/* … */`) and whitespace are skipped.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    pub(crate) fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// Converts the span start to a 1-based `(line, column)` pair.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (idx, ch) in source.char_indices() {
            if idx >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TokenKind {
    Ident(String),
    Int(i64),
    KwFor,
    KwArray,
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Plus,
    Minus,
    Star,
    Slash,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    PlusPlus,
    MinusMinus,
    Lt,
    Le,
    Gt,
    Ge,
    Ne,
    EqEq,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(n) => write!(f, "integer `{n}`"),
            TokenKind::KwFor => f.write_str("`for`"),
            TokenKind::KwArray => f.write_str("`array`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Assign => f.write_str("`=`"),
            TokenKind::PlusAssign => f.write_str("`+=`"),
            TokenKind::MinusAssign => f.write_str("`-=`"),
            TokenKind::StarAssign => f.write_str("`*=`"),
            TokenKind::PlusPlus => f.write_str("`++`"),
            TokenKind::MinusMinus => f.write_str("`--`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::Ne => f.write_str("`!=`"),
            TokenKind::EqEq => f.write_str("`==`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Token {
    pub(crate) kind: TokenKind,
    pub(crate) span: Span,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum LexErrorKind {
    UnexpectedChar(char),
    UnterminatedBlockComment,
    IntegerOverflow,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LexError {
    pub(crate) kind: LexErrorKind,
    pub(crate) span: Span,
}

/// Tokenizes the whole source, appending a trailing `Eof` token.
pub(crate) fn tokenize(source: &str) -> Result<Vec<Token>, LexError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            match bytes[i + 1] as char {
                '/' => {
                    while i < bytes.len() && bytes[i] as char != '\n' {
                        i += 1;
                    }
                    continue;
                }
                '*' => {
                    let start = i;
                    i += 2;
                    loop {
                        if i + 1 >= bytes.len() {
                            return Err(LexError {
                                kind: LexErrorKind::UnterminatedBlockComment,
                                span: Span::new(start, bytes.len()),
                            });
                        }
                        if bytes[i] as char == '*' && bytes[i + 1] as char == '/' {
                            i += 2;
                            break;
                        }
                        i += 1;
                    }
                    continue;
                }
                _ => {}
            }
        }
        let start = i;
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
            {
                i += 1;
            }
            let text = &source[start..i];
            let kind = match text {
                "for" => TokenKind::KwFor,
                "array" => TokenKind::KwArray,
                _ => TokenKind::Ident(text.to_owned()),
            };
            tokens.push(Token {
                kind,
                span: Span::new(start, i),
            });
            continue;
        }
        // Integers (unsigned here; unary minus handled by the parser).
        if c.is_ascii_digit() {
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
            }
            let text = &source[start..i];
            let value: i64 = text.parse().map_err(|_| LexError {
                kind: LexErrorKind::IntegerOverflow,
                span: Span::new(start, i),
            })?;
            tokens.push(Token {
                kind: TokenKind::Int(value),
                span: Span::new(start, i),
            });
            continue;
        }
        // Operators and punctuation (longest match first).
        let two = if i + 1 < bytes.len() {
            &source[i..i + 2]
        } else {
            ""
        };
        let (kind, len) = match two {
            "+=" => (TokenKind::PlusAssign, 2),
            "-=" => (TokenKind::MinusAssign, 2),
            "*=" => (TokenKind::StarAssign, 2),
            "++" => (TokenKind::PlusPlus, 2),
            "--" => (TokenKind::MinusMinus, 2),
            "<=" => (TokenKind::Le, 2),
            ">=" => (TokenKind::Ge, 2),
            "!=" => (TokenKind::Ne, 2),
            "==" => (TokenKind::EqEq, 2),
            _ => match c {
                '(' => (TokenKind::LParen, 1),
                ')' => (TokenKind::RParen, 1),
                '{' => (TokenKind::LBrace, 1),
                '}' => (TokenKind::RBrace, 1),
                '[' => (TokenKind::LBracket, 1),
                ']' => (TokenKind::RBracket, 1),
                ';' => (TokenKind::Semi, 1),
                '+' => (TokenKind::Plus, 1),
                '-' => (TokenKind::Minus, 1),
                '*' => (TokenKind::Star, 1),
                '/' => (TokenKind::Slash, 1),
                '=' => (TokenKind::Assign, 1),
                '<' => (TokenKind::Lt, 1),
                '>' => (TokenKind::Gt, 1),
                other => {
                    return Err(LexError {
                        kind: LexErrorKind::UnexpectedChar(other),
                        span: Span::new(start, start + other.len_utf8()),
                    })
                }
            },
        };
        tokens.push(Token {
            kind,
            span: Span::new(start, start + len),
        });
        i += len;
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span::new(source.len(), source.len()),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("lex")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        assert_eq!(
            kinds("for fortune _x9 array arrays"),
            vec![
                TokenKind::KwFor,
                TokenKind::Ident("fortune".into()),
                TokenKind::Ident("_x9".into()),
                TokenKind::KwArray,
                TokenKind::Ident("arrays".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators_greedily() {
        assert_eq!(
            kinds("+= ++ + <= < =="),
            vec![
                TokenKind::PlusAssign,
                TokenKind::PlusPlus,
                TokenKind::Plus,
                TokenKind::Le,
                TokenKind::Lt,
                TokenKind::EqEq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        assert_eq!(
            kinds("a // comment\n /* multi\nline */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn reports_unterminated_block_comment() {
        let err = tokenize("x /* oops").unwrap_err();
        assert_eq!(err.kind, LexErrorKind::UnterminatedBlockComment);
    }

    #[test]
    fn reports_unexpected_character_with_span() {
        let err = tokenize("a ? b").unwrap_err();
        assert_eq!(err.kind, LexErrorKind::UnexpectedChar('?'));
        assert_eq!(err.span, Span::new(2, 3));
    }

    #[test]
    fn reports_integer_overflow() {
        let err = tokenize("99999999999999999999999999").unwrap_err();
        assert_eq!(err.kind, LexErrorKind::IntegerOverflow);
    }

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncd";
        let toks = tokenize(src).unwrap();
        assert_eq!(toks[0].span.line_col(src), (1, 1));
        assert_eq!(toks[1].span.line_col(src), (2, 1));
    }

    #[test]
    fn slash_not_followed_by_comment_is_division() {
        assert_eq!(
            kinds("a / b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }
}
