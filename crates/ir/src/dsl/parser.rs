//! Recursive-descent parser for the loop DSL.

use std::fmt;

use super::ast::{AssignOp, BinOp, CmpOp, Cond, Expr, ForLoop, LValue, Stmt, Update};
use super::lexer::{self, LexErrorKind, Span, Token, TokenKind};

/// The different ways parsing or lowering can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A character the lexer does not understand.
    UnexpectedChar(char),
    /// A `/* …` comment that never closes.
    UnterminatedComment,
    /// An integer literal that does not fit in `i64`.
    IntegerOverflow,
    /// The parser found `found` where it expected `expected`.
    UnexpectedToken {
        /// Human-readable description of the found token.
        found: String,
        /// Human-readable description of what was expected.
        expected: String,
    },
    /// The loop condition compares a variable other than the loop variable.
    CondVarMismatch {
        /// The loop variable declared in the init clause.
        expected: String,
        /// The variable actually used in the condition.
        found: String,
    },
    /// The update clause changes a variable other than the loop variable.
    UpdateVarMismatch {
        /// The loop variable declared in the init clause.
        expected: String,
        /// The variable actually updated.
        found: String,
    },
    /// The update step is not a compile-time constant.
    NonConstantStride,
    /// The update step is zero.
    ZeroStride,
    /// An index expression references a symbol that is not an induction
    /// variable of the enclosing loop nest (an unbound variable).
    SymbolicIndex(String),
    /// An index expression is not affine in the induction variables
    /// (e.g. `i * i` or `i * j`).
    NonAffineIndex,
    /// An index expression contains a nested array access.
    ArrayInIndex(String),
    /// An index expression contains a division.
    DivisionInIndex,
    /// Affine folding of an index expression overflowed `i64`.
    IndexOverflow,
    /// Accesses to one array use different induction-variable
    /// coefficients.
    MixedCoefficients {
        /// The array name.
        array: String,
        /// Coefficient of the first access.
        first: i64,
        /// Conflicting coefficient.
        second: i64,
    },
    /// A subscript chain does not match the array's declared rank.
    RankMismatch {
        /// The array name.
        array: String,
        /// Rank from the `array` declaration (1 for undeclared arrays).
        expected: usize,
        /// Subscripts actually written.
        found: usize,
    },
    /// A multi-dimensional subscript on an array with no `array`
    /// declaration (so its row strides are unknown).
    UndeclaredArray(String),
    /// The same array is declared twice.
    DuplicateDeclaration(String),
    /// An `array` declaration has a non-constant or non-positive
    /// dimension.
    InvalidDimension(String),
    /// A loop body mixes statements with a nested loop, or contains more
    /// than one nested loop (only perfect nests can be flattened).
    ImperfectNest,
    /// Two levels of a loop nest reuse the same induction variable.
    DuplicateInductionVariable(String),
    /// A nest level's start or bound is not a compile-time constant
    /// (flattening needs constant trip counts).
    NonConstantNestBound(String),
    /// A nest level's condition never terminates or its trip count is
    /// not positive (e.g. `i < 0` from `i = 0` upward).
    DegenerateNestLevel(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ParseErrorKind::UnterminatedComment => f.write_str("unterminated block comment"),
            ParseErrorKind::IntegerOverflow => f.write_str("integer literal overflows i64"),
            ParseErrorKind::UnexpectedToken { found, expected } => {
                write!(f, "found {found}, expected {expected}")
            }
            ParseErrorKind::CondVarMismatch { expected, found } => write!(
                f,
                "loop condition tests `{found}` but the loop variable is `{expected}`"
            ),
            ParseErrorKind::UpdateVarMismatch { expected, found } => write!(
                f,
                "loop update changes `{found}` but the loop variable is `{expected}`"
            ),
            ParseErrorKind::NonConstantStride => {
                f.write_str("loop update step must be a constant")
            }
            ParseErrorKind::ZeroStride => f.write_str("loop update step must be non-zero"),
            ParseErrorKind::SymbolicIndex(name) => {
                write!(f, "index uses symbol `{name}` which is not the loop variable")
            }
            ParseErrorKind::NonAffineIndex => {
                f.write_str("index expression is not affine in the loop variable")
            }
            ParseErrorKind::ArrayInIndex(name) => {
                write!(f, "index expression contains array access `{name}[…]`")
            }
            ParseErrorKind::DivisionInIndex => {
                f.write_str("division is not supported in index expressions")
            }
            ParseErrorKind::IndexOverflow => f.write_str("index expression overflows i64"),
            ParseErrorKind::MixedCoefficients {
                array,
                first,
                second,
            } => write!(
                f,
                "array `{array}` is indexed with mixed loop-variable coefficients {first} and {second}"
            ),
            ParseErrorKind::RankMismatch {
                array,
                expected,
                found,
            } => write!(
                f,
                "array `{array}` has rank {expected} but is subscripted with {found} index(es)"
            ),
            ParseErrorKind::UndeclaredArray(name) => write!(
                f,
                "array `{name}` needs an `array {name}[…]…;` declaration before it can take multi-dimensional subscripts"
            ),
            ParseErrorKind::DuplicateDeclaration(name) => {
                write!(f, "array `{name}` is declared twice")
            }
            ParseErrorKind::InvalidDimension(name) => write!(
                f,
                "array `{name}` has a non-constant or non-positive dimension"
            ),
            ParseErrorKind::ImperfectNest => f.write_str(
                "loop bodies must be either statements or exactly one nested loop (perfect nests only)",
            ),
            ParseErrorKind::DuplicateInductionVariable(name) => {
                write!(f, "induction variable `{name}` is reused by an outer loop")
            }
            ParseErrorKind::NonConstantNestBound(var) => write!(
                f,
                "loop over `{var}` needs constant start and bound to flatten the nest"
            ),
            ParseErrorKind::DegenerateNestLevel(var) => write!(
                f,
                "loop over `{var}` has no iterations, never terminates, or uses a condition the nest flattener does not support"
            ),
        }
    }
}

/// A parse or lowering error with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    kind: ParseErrorKind,
    span: Span,
    line: usize,
    col: usize,
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, span: Span, source: &str) -> Self {
        let (line, col) = span.line_col(source);
        ParseError {
            kind,
            span,
            line,
            col,
        }
    }

    /// What went wrong.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }

    /// The byte span of the offending source region.
    pub fn span(&self) -> Span {
        self.span
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of the error.
    pub fn column(&self) -> usize {
        self.col
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}:{}: {}", self.line, self.col, self.kind)
    }
}

impl std::error::Error for ParseError {}

/// A lowering error that has not yet been resolved against source text.
///
/// [`crate::dsl::lower_loop`] returns this error because lowering operates
/// on an AST, which may have been built programmatically and therefore has
/// no source text; [`LowerError::attach_source`] upgrades it to a
/// [`ParseError`] with line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    kind: ParseErrorKind,
    span: Span,
}

impl LowerError {
    pub(crate) fn new(kind: ParseErrorKind, span: Span) -> Self {
        LowerError { kind, span }
    }

    /// What went wrong.
    pub fn kind(&self) -> &ParseErrorKind {
        &self.kind
    }

    /// Byte span of the offending AST node in the original source (empty
    /// for programmatically built ASTs).
    pub fn span(&self) -> Span {
        self.span
    }

    /// Resolves the span against `source`, producing a [`ParseError`] with
    /// line/column information.
    pub fn attach_source(self, source: &str) -> ParseError {
        ParseError::new(self.kind, self.span, source)
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lowering error: {}", self.kind)
    }
}

impl std::error::Error for LowerError {}

pub(crate) struct Parser<'s> {
    source: &'s str,
    tokens: Vec<Token>,
    pos: usize,
}

impl<'s> Parser<'s> {
    pub(crate) fn new(source: &'s str) -> Result<Self, ParseError> {
        let tokens = lexer::tokenize(source).map_err(|e| {
            let kind = match e.kind {
                LexErrorKind::UnexpectedChar(c) => ParseErrorKind::UnexpectedChar(c),
                LexErrorKind::UnterminatedBlockComment => ParseErrorKind::UnterminatedComment,
                LexErrorKind::IntegerOverflow => ParseErrorKind::IntegerOverflow,
            };
            ParseError::new(kind, e.span, source)
        })?;
        Ok(Parser {
            source,
            tokens,
            pos: 0,
        })
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, kind: ParseErrorKind, span: Span) -> ParseError {
        ParseError::new(kind, span, self.source)
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        let t = self.peek();
        self.error(
            ParseErrorKind::UnexpectedToken {
                found: t.kind.to_string(),
                expected: expected.to_owned(),
            },
            t.span,
        )
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, ParseError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(name) => Ok((name, t.span)),
                    _ => unreachable!("peeked an identifier"),
                }
            }
            _ => Err(self.unexpected(what)),
        }
    }

    /// Parses a complete `for` loop (possibly a nest); trailing tokens
    /// are an error. Array declarations are *not* accepted here — use
    /// [`Parser::parse_unit`] for sources with declarations.
    pub(crate) fn parse_for_loop(mut self) -> Result<ForLoop, ParseError> {
        let ast = self.parse_one_for()?;
        if self.peek().kind != TokenKind::Eof {
            return Err(self.unexpected("end of input"));
        }
        Ok(ast)
    }

    /// Parses a whole compilation unit: array declarations interleaved
    /// with one or more `for` loops (nests). Declarations scope over the
    /// entire unit.
    pub(crate) fn parse_unit(
        mut self,
    ) -> Result<(Vec<super::ast::Decl>, Vec<ForLoop>), ParseError> {
        let mut decls: Vec<super::ast::Decl> = Vec::new();
        let mut loops = Vec::new();
        loop {
            match self.peek().kind {
                TokenKind::KwArray => {
                    let decl = self.parse_decl()?;
                    if decls.iter().any(|d| d.name == decl.name) {
                        return Err(self.error(
                            ParseErrorKind::DuplicateDeclaration(decl.name.clone()),
                            decl.span,
                        ));
                    }
                    decls.push(decl);
                }
                TokenKind::KwFor => loops.push(self.parse_one_for()?),
                TokenKind::Eof if !loops.is_empty() => return Ok((decls, loops)),
                // Declarations alone are not a program.
                TokenKind::Eof => return Err(self.unexpected("a `for` loop")),
                _ => return Err(self.unexpected("`array`, `for` or end of input")),
            }
        }
    }

    /// Parses `array name[d1][d2]…;`.
    fn parse_decl(&mut self) -> Result<super::ast::Decl, ParseError> {
        let start = self.expect(&TokenKind::KwArray, "`array`")?.span;
        let (name, _) = self.expect_ident("array name")?;
        let mut dims = Vec::new();
        while self.peek().kind == TokenKind::LBracket {
            self.bump();
            let dim_expr = self.parse_expr()?;
            let close = self.expect(&TokenKind::RBracket, "`]`")?;
            let span = Span::new(start.start, close.span.end);
            match const_eval(&dim_expr) {
                Some(d) if d > 0 => dims.push(d),
                _ => return Err(self.error(ParseErrorKind::InvalidDimension(name.clone()), span)),
            }
        }
        if dims.is_empty() {
            return Err(self.unexpected("`[` (array declarations need dimensions)"));
        }
        let end = self.expect(&TokenKind::Semi, "`;` after array declaration")?;
        Ok(super::ast::Decl {
            name,
            dims,
            span: Span::new(start.start, end.span.end),
        })
    }

    fn parse_one_for(&mut self) -> Result<ForLoop, ParseError> {
        let for_span = self.expect(&TokenKind::KwFor, "`for`")?.span;
        self.expect(&TokenKind::LParen, "`(`")?;

        // init: var = expr
        let (var, _) = self.expect_ident("loop variable")?;
        self.expect(&TokenKind::Assign, "`=` in loop init")?;
        let init = self.parse_expr()?;
        let start = const_eval(&init);
        self.expect(&TokenKind::Semi, "`;` after loop init")?;

        // cond: var <cmp> expr
        let (cond_var, cond_span) = self.expect_ident("loop variable in condition")?;
        if cond_var != var {
            return Err(self.error(
                ParseErrorKind::CondVarMismatch {
                    expected: var,
                    found: cond_var,
                },
                cond_span,
            ));
        }
        let op = match self.peek().kind {
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::EqEq => CmpOp::Eq,
            _ => return Err(self.unexpected("comparison operator")),
        };
        self.bump();
        let bound = self.parse_expr()?;
        let cond = Cond { op, bound };
        self.expect(&TokenKind::Semi, "`;` after loop condition")?;

        // update
        let update = self.parse_update(&var)?;
        let header_end = self.expect(&TokenKind::RParen, "`)` after loop header")?;
        let span = Span::new(for_span.start, header_end.span.end);

        // body: either statements or exactly one nested for.
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut body = Vec::new();
        let mut nested: Option<Box<ForLoop>> = None;
        while self.peek().kind != TokenKind::RBrace {
            match self.peek().kind {
                TokenKind::Eof => return Err(self.unexpected("`}`, a statement or `for`")),
                TokenKind::KwFor => {
                    let span = self.peek().span;
                    if nested.is_some() || !body.is_empty() {
                        return Err(self.error(ParseErrorKind::ImperfectNest, span));
                    }
                    nested = Some(Box::new(self.parse_one_for()?));
                }
                _ => {
                    if nested.is_some() {
                        let span = self.peek().span;
                        return Err(self.error(ParseErrorKind::ImperfectNest, span));
                    }
                    body.push(self.parse_stmt()?);
                }
            }
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(ForLoop {
            var,
            start,
            init,
            cond,
            update,
            body,
            nested,
            span,
        })
    }

    fn parse_update(&mut self, var: &str) -> Result<Update, ParseError> {
        let (name, span) = self.expect_ident("loop variable in update")?;
        if name != var {
            return Err(self.error(
                ParseErrorKind::UpdateVarMismatch {
                    expected: var.to_owned(),
                    found: name,
                },
                span,
            ));
        }
        let step = match self.peek().kind {
            TokenKind::PlusPlus => {
                self.bump();
                return Ok(Update::Increment);
            }
            TokenKind::MinusMinus => {
                self.bump();
                return Ok(Update::Decrement);
            }
            TokenKind::PlusAssign => {
                self.bump();
                let e = self.parse_expr()?;
                const_eval(&e)
            }
            TokenKind::MinusAssign => {
                self.bump();
                let e = self.parse_expr()?;
                const_eval(&e).and_then(i64::checked_neg)
            }
            TokenKind::Assign => {
                // i = i + k  |  i = i - k
                self.bump();
                let (name2, span2) = self.expect_ident("loop variable")?;
                if name2 != var {
                    return Err(self.error(
                        ParseErrorKind::UpdateVarMismatch {
                            expected: var.to_owned(),
                            found: name2,
                        },
                        span2,
                    ));
                }
                let negate = match self.peek().kind {
                    TokenKind::Plus => false,
                    TokenKind::Minus => true,
                    _ => return Err(self.unexpected("`+` or `-` in loop update")),
                };
                self.bump();
                let e = self.parse_expr()?;
                let k = const_eval(&e);
                if negate {
                    k.and_then(i64::checked_neg)
                } else {
                    k
                }
            }
            _ => return Err(self.unexpected("`++`, `--`, `+=`, `-=` or `=` in loop update")),
        };
        match step {
            Some(0) => Err(self.error(ParseErrorKind::ZeroStride, span)),
            Some(k) => Ok(Update::Step(k)),
            None => Err(self.error(ParseErrorKind::NonConstantStride, span)),
        }
    }

    /// Parses a (possibly multi-dimensional) `[e1][e2]…` subscript chain.
    fn parse_subscripts(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut indices = Vec::new();
        while self.peek().kind == TokenKind::LBracket {
            self.bump();
            indices.push(self.parse_expr()?);
            self.expect(&TokenKind::RBracket, "`]`")?;
        }
        Ok(indices)
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start_span = self.peek().span;
        let (name, _) = self.expect_ident("a statement")?;
        let lhs = if self.peek().kind == TokenKind::LBracket {
            let indices = self.parse_subscripts()?;
            LValue::Element {
                array: name,
                indices,
            }
        } else {
            LValue::Scalar(name)
        };
        let op = match self.peek().kind {
            TokenKind::Assign => AssignOp::Assign,
            TokenKind::PlusAssign => AssignOp::AddAssign,
            TokenKind::MinusAssign => AssignOp::SubAssign,
            TokenKind::StarAssign => AssignOp::MulAssign,
            _ => return Err(self.unexpected("assignment operator")),
        };
        self.bump();
        let rhs = self.parse_expr()?;
        let end = self.expect(&TokenKind::Semi, "`;` after statement")?;
        Ok(Stmt {
            lhs,
            op,
            rhs,
            span: Span::new(start_span.start, end.span.end),
        })
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_term()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_factor()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_factor()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            TokenKind::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.parse_factor()?)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(_) => {
                let (name, _) = self.expect_ident("identifier")?;
                if self.peek().kind == TokenKind::LBracket {
                    let indices = self.parse_subscripts()?;
                    Ok(Expr::Index {
                        array: name,
                        indices,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

/// Constant-folds an expression; `None` if it references any variable.
pub(crate) fn const_eval(e: &Expr) -> Option<i64> {
    match e {
        Expr::Num(n) => Some(*n),
        Expr::Var(_) | Expr::Index { .. } => None,
        Expr::Neg(inner) => const_eval(inner)?.checked_neg(),
        Expr::Binary { op, lhs, rhs } => {
            let l = const_eval(lhs)?;
            let r = const_eval(rhs)?;
            match op {
                BinOp::Add => l.checked_add(r),
                BinOp::Sub => l.checked_sub(r),
                BinOp::Mul => l.checked_mul(r),
                BinOp::Div => {
                    if r == 0 {
                        None
                    } else {
                        l.checked_div(r)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ForLoop {
        Parser::new(src).unwrap().parse_for_loop().unwrap()
    }

    fn parse_err(src: &str) -> ParseError {
        match Parser::new(src) {
            Ok(p) => p.parse_for_loop().unwrap_err(),
            Err(e) => e,
        }
    }

    #[test]
    fn parses_all_update_forms() {
        assert_eq!(
            parse("for (i = 0; i < 9; i++) { }").update,
            Update::Increment
        );
        assert_eq!(
            parse("for (i = 9; i > 0; i--) { }").update,
            Update::Decrement
        );
        assert_eq!(
            parse("for (i = 0; i < 9; i += 2) { }").update,
            Update::Step(2)
        );
        assert_eq!(
            parse("for (i = 9; i > 0; i -= 3) { }").update,
            Update::Step(-3)
        );
        assert_eq!(
            parse("for (i = 0; i < 9; i = i + 4) { }").update,
            Update::Step(4)
        );
        assert_eq!(
            parse("for (i = 9; i > 0; i = i - 1) { }").update,
            Update::Step(-1)
        );
    }

    #[test]
    fn rejects_zero_and_symbolic_strides() {
        assert_eq!(
            *parse_err("for (i = 0; i < 9; i += 0) { }").kind(),
            ParseErrorKind::ZeroStride
        );
        assert_eq!(
            *parse_err("for (i = 0; i < 9; i += n) { }").kind(),
            ParseErrorKind::NonConstantStride
        );
    }

    #[test]
    fn rejects_mismatched_condition_and_update_variables() {
        assert!(matches!(
            parse_err("for (i = 0; j < 9; i++) { }").kind(),
            ParseErrorKind::CondVarMismatch { .. }
        ));
        assert!(matches!(
            parse_err("for (i = 0; i < 9; j++) { }").kind(),
            ParseErrorKind::UpdateVarMismatch { .. }
        ));
        assert!(matches!(
            parse_err("for (i = 0; i < 9; i = j + 1) { }").kind(),
            ParseErrorKind::UpdateVarMismatch { .. }
        ));
    }

    #[test]
    fn captures_constant_and_symbolic_starts() {
        assert_eq!(parse("for (i = 2; i <= 9; i++) { }").start, Some(2));
        assert_eq!(parse("for (i = 1 + 1; i <= 9; i++) { }").start, Some(2));
        assert_eq!(parse("for (i = n0; i <= 9; i++) { }").start, None);
    }

    #[test]
    fn parses_statement_shapes() {
        let ast = parse(
            "for (i = 0; i < 9; i++) {
                s = A[i] * 2;
                A[i + 1] += s - 1;
                t *= 3;
            }",
        );
        assert_eq!(ast.body.len(), 3);
        assert_eq!(ast.body[0].to_string(), "s = A[i] * 2;");
        assert_eq!(ast.body[1].to_string(), "A[i + 1] += s - 1;");
        assert_eq!(ast.body[2].to_string(), "t *= 3;");
    }

    #[test]
    fn expression_precedence_is_conventional() {
        let ast = parse("for (i = 0; i < 9; i++) { s = 1 + 2 * 3; }");
        match &ast.body[0].rhs {
            Expr::Binary { op: BinOp::Add, .. } => {}
            other => panic!("expected top-level add, got {other:?}"),
        }
    }

    #[test]
    fn reports_trailing_garbage() {
        assert!(matches!(
            parse_err("for (i = 0; i < 9; i++) { } extra").kind(),
            ParseErrorKind::UnexpectedToken { .. }
        ));
    }

    #[test]
    fn reports_missing_semicolon_with_position() {
        let err = parse_err("for (i = 0; i < 9; i++) { s = 1 }");
        assert!(matches!(err.kind(), ParseErrorKind::UnexpectedToken { .. }));
        assert_eq!(err.line(), 1);
        assert!(err.column() > 1);
    }

    #[test]
    fn unexpected_eof_inside_body() {
        assert!(matches!(
            parse_err("for (i = 0; i < 9; i++) { s = 1;").kind(),
            ParseErrorKind::UnexpectedToken { .. }
        ));
    }

    #[test]
    fn const_eval_folds_and_rejects() {
        let p = |src: &str| Parser::new(src).unwrap().parse_expr().unwrap();
        assert_eq!(const_eval(&p("1 + 2 * 3")), Some(7));
        assert_eq!(const_eval(&p("-(4) / 2")), Some(-2));
        assert_eq!(const_eval(&p("4 / 0")), None);
        assert_eq!(const_eval(&p("x + 1")), None);
    }

    #[test]
    fn statement_spans_cover_the_statement() {
        let src = "for (i = 0; i < 9; i++) { s = A[i]; }";
        let ast = parse(src);
        let span = ast.body[0].span;
        assert_eq!(&src[span.start..span.end], "s = A[i];");
    }
}
