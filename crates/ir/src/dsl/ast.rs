//! Abstract syntax tree of the loop DSL.
//!
//! The AST mirrors the source closely so that loops can be pretty-printed
//! back (see [`crate::pretty`]) and inspected by tools. Lowering to the
//! flat [`crate::LoopSpec`] happens in [`crate::dsl::lower_loop`].

use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Comparison operators in the loop condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=`
    Ne,
    /// `==`
    Eq,
}

impl CmpOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Ne => "!=",
            CmpOp::Eq => "==",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=` (reads the left-hand side)
    AddAssign,
    /// `-=` (reads the left-hand side)
    SubAssign,
    /// `*=` (reads the left-hand side)
    MulAssign,
}

impl AssignOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
        }
    }

    /// `true` for compound assignments, which read their left-hand side
    /// before writing it.
    pub fn reads_lhs(self) -> bool {
        !matches!(self, AssignOp::Assign)
    }
}

impl fmt::Display for AssignOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Scalar variable (or an induction variable).
    Var(String),
    /// Array element `array[i1][i2]…` (one subscript per dimension).
    Index {
        /// Array name.
        array: String,
        /// Subscript expressions, outermost dimension first. Each must
        /// be affine in the induction variables to lower; never empty.
        indices: Vec<Expr>,
    },
    /// Unary negation `-e`.
    Neg(Box<Expr>),
    /// Binary operation `lhs op rhs`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a one-dimensional array element.
    pub fn index(array: impl Into<String>, index: Expr) -> Expr {
        Expr::Index {
            array: array.into(),
            indices: vec![index],
        }
    }

    /// Visits every array reference in evaluation order (depth-first,
    /// left-to-right), calling `f(array_name, subscripts)`.
    pub fn visit_indices<'a>(&'a self, f: &mut impl FnMut(&'a str, &'a [Expr])) {
        match self {
            Expr::Num(_) | Expr::Var(_) => {}
            Expr::Index { array, indices } => {
                // Index sub-expressions are address arithmetic, not memory
                // accesses; they are intentionally not visited.
                f(array, indices);
            }
            Expr::Neg(e) => e.visit_indices(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit_indices(f);
                rhs.visit_indices(f);
            }
        }
    }
}

/// Formats `[i1][i2]…` subscript chains.
fn write_subscripts(f: &mut fmt::Formatter<'_>, indices: &[Expr]) -> fmt::Result {
    for index in indices {
        write!(f, "[{index}]")?;
    }
    Ok(())
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Var(v) => f.write_str(v),
            Expr::Index { array, indices } => {
                f.write_str(array)?;
                write_subscripts(f, indices)
            }
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Binary { op, lhs, rhs } => {
                let needs_parens = |e: &Expr, parent: BinOp| match e {
                    Expr::Binary { op, .. } => {
                        matches!(parent, BinOp::Mul | BinOp::Div)
                            && matches!(op, BinOp::Add | BinOp::Sub)
                    }
                    _ => false,
                };
                if needs_parens(lhs, *op) {
                    write!(f, "({lhs})")?;
                } else {
                    write!(f, "{lhs}")?;
                }
                write!(f, " {op} ")?;
                if needs_parens(rhs, *op)
                    || matches!(op, BinOp::Sub | BinOp::Div) && matches!(**rhs, Expr::Binary { .. })
                {
                    write!(f, "({rhs})")
                } else {
                    write!(f, "{rhs}")
                }
            }
        }
    }
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LValue {
    /// A scalar variable (kept in a data register, no memory access).
    Scalar(String),
    /// An array element.
    Element {
        /// Array name.
        array: String,
        /// Subscript expressions, outermost dimension first; never empty.
        indices: Vec<Expr>,
    },
}

impl LValue {
    /// Convenience constructor for a one-dimensional element target.
    pub fn element(array: impl Into<String>, index: Expr) -> LValue {
        LValue::Element {
            array: array.into(),
            indices: vec![index],
        }
    }
}

impl fmt::Display for LValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LValue::Scalar(v) => f.write_str(v),
            LValue::Element { array, indices } => {
                f.write_str(array)?;
                write_subscripts(f, indices)
            }
        }
    }
}

/// One assignment statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stmt {
    /// Assignment target.
    pub lhs: LValue,
    /// Assignment operator.
    pub op: AssignOp,
    /// Right-hand side.
    pub rhs: Expr,
    /// Byte span of the statement in the original source (empty when the
    /// statement was constructed programmatically).
    pub span: super::lexer::Span,
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {};", self.lhs, self.op, self.rhs)
    }
}

/// The loop condition `var <cmp> bound`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cond {
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side of the comparison (often a symbolic bound like `N`).
    pub bound: Expr,
}

/// The loop-variable update clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// `i++`
    Increment,
    /// `i--`
    Decrement,
    /// `i += k` / `i = i + k` (`k` may be negative for `-=` / `i = i - k`)
    Step(i64),
}

impl Update {
    /// The per-iteration stride this update produces.
    pub fn stride(self) -> i64 {
        match self {
            Update::Increment => 1,
            Update::Decrement => -1,
            Update::Step(k) => k,
        }
    }
}

/// A parsed `for` loop, possibly the head of a perfect loop nest.
///
/// A loop body is *either* a list of statements *or* exactly one nested
/// `for` (a perfect nest — the only shape the flattening lowerer
/// accepts); the parser rejects bodies that mix both.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ForLoop {
    /// Loop-variable name.
    pub var: String,
    /// Initial value if the init expression is a constant, else `None`
    /// (symbolic starts lower to `0`).
    pub start: Option<i64>,
    /// Raw init expression (for printing).
    pub init: Expr,
    /// Loop condition.
    pub cond: Cond,
    /// Update clause.
    pub update: Update,
    /// Body statements (empty when the body is a nested loop).
    pub body: Vec<Stmt>,
    /// The nested loop, for perfect nests (`None` for statement bodies).
    pub nested: Option<Box<ForLoop>>,
    /// Byte span of the loop header in the original source (empty when
    /// the loop was constructed programmatically).
    pub span: super::lexer::Span,
}

impl ForLoop {
    /// The innermost loop of the nest (`self` for plain loops).
    pub fn innermost(&self) -> &ForLoop {
        let mut current = self;
        while let Some(inner) = &current.nested {
            current = inner;
        }
        current
    }

    /// Nest depth: `1` for a plain loop, `2` for a doubly nested one, …
    pub fn depth(&self) -> usize {
        1 + self.nested.as_ref().map_or(0, |inner| inner.depth())
    }
}

/// An array declaration `array name[d1][d2]…;`.
///
/// Declarations give arrays a shape: subscript chains are checked
/// against the declared rank, and multi-dimensional subscripts linearize
/// row-major using the declared trailing dimensions as strides.
/// Undeclared arrays are one-dimensional.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Decl {
    /// Array name.
    pub name: String,
    /// Dimension extents, outermost first; each is positive.
    pub dims: Vec<i64>,
    /// Byte span of the declaration in the original source.
    pub span: super::lexer::Span,
}

impl fmt::Display for Decl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array {}", self.name)?;
        for d in &self.dims {
            write!(f, "[{d}]")?;
        }
        f.write_str(";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_parenthesizes_by_precedence() {
        let e = Expr::binary(
            BinOp::Mul,
            Expr::binary(BinOp::Add, Expr::Var("i".into()), Expr::Num(1)),
            Expr::Var("c".into()),
        );
        assert_eq!(e.to_string(), "(i + 1) * c");
        let e = Expr::binary(
            BinOp::Add,
            Expr::Var("a".into()),
            Expr::binary(BinOp::Mul, Expr::Var("b".into()), Expr::Num(2)),
        );
        assert_eq!(e.to_string(), "a + b * 2");
    }

    #[test]
    fn stmt_display_round_trips_symbols() {
        let s = Stmt {
            lhs: LValue::element("A", Expr::Var("i".into())),
            op: AssignOp::AddAssign,
            rhs: Expr::Num(3),
            span: Default::default(),
        };
        assert_eq!(s.to_string(), "A[i] += 3;");
    }

    #[test]
    fn multi_dim_subscripts_display_as_chains() {
        let e = Expr::Index {
            array: "x".into(),
            indices: vec![
                Expr::Var("i".into()),
                Expr::binary(BinOp::Add, Expr::Var("j".into()), Expr::Num(1)),
            ],
        };
        assert_eq!(e.to_string(), "x[i][j + 1]");
        let lv = LValue::Element {
            array: "y".into(),
            indices: vec![Expr::Var("j".into()), Expr::Var("i".into())],
        };
        assert_eq!(lv.to_string(), "y[j][i]");
    }

    #[test]
    fn visit_indices_is_left_to_right() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::index("A", Expr::Var("i".into())),
            Expr::index("B", Expr::Num(0)),
        );
        let mut seen = Vec::new();
        e.visit_indices(&mut |name, _| seen.push(name.to_owned()));
        assert_eq!(seen, vec!["A", "B"]);
    }

    #[test]
    fn update_strides() {
        assert_eq!(Update::Increment.stride(), 1);
        assert_eq!(Update::Decrement.stride(), -1);
        assert_eq!(Update::Step(-3).stride(), -3);
    }

    #[test]
    fn nest_helpers_walk_to_the_innermost_loop() {
        let inner = ForLoop {
            var: "j".into(),
            start: Some(0),
            init: Expr::Num(0),
            cond: Cond {
                op: CmpOp::Lt,
                bound: Expr::Num(4),
            },
            update: Update::Increment,
            body: vec![],
            nested: None,
            span: Default::default(),
        };
        let outer = ForLoop {
            var: "i".into(),
            start: Some(0),
            init: Expr::Num(0),
            cond: Cond {
                op: CmpOp::Lt,
                bound: Expr::Num(2),
            },
            update: Update::Increment,
            body: vec![],
            nested: Some(Box::new(inner)),
            span: Default::default(),
        };
        assert_eq!(outer.depth(), 2);
        assert_eq!(outer.innermost().var, "j");
        let decl = Decl {
            name: "x".into(),
            dims: vec![2, 4],
            span: Default::default(),
        };
        assert_eq!(decl.to_string(), "array x[2][4];");
    }

    #[test]
    fn assign_op_reads_lhs() {
        assert!(!AssignOp::Assign.reads_lhs());
        assert!(AssignOp::AddAssign.reads_lhs());
        assert!(AssignOp::SubAssign.reads_lhs());
        assert!(AssignOp::MulAssign.reads_lhs());
    }
}
