//! Lowering from the DSL AST to the flat [`LoopSpec`] IR.
//!
//! Lowering walks every statement of the innermost loop, extracts array
//! accesses in evaluation order (right-hand-side reads left-to-right,
//! then the left-hand-side read for compound assignments, then the
//! left-hand-side write) and folds each subscript into an affine form
//! over the nest's induction variables.
//!
//! ## Nest flattening
//!
//! A perfect loop nest is lowered by *flattening* to the single-loop
//! model the allocator consumes:
//!
//! * Multi-dimensional subscripts linearize row-major against the
//!   `array` declarations (`x[i][j]` with `array x[R][C];` becomes
//!   `C*i + j`).
//! * The flat [`LoopSpec`] is the innermost loop: its per-iteration
//!   offset sequence is the paper's access pattern, and each array's
//!   coefficient is the innermost induction variable's.
//! * Outer levels fold into the spec's [`LoopNest`] metadata: constant
//!   trip counts per level, plus one *carry* delta per array per level —
//!   the amount the array's address jumps, relative to the uniform flat
//!   model, whenever that level advances. A carry of zero (e.g. a
//!   row-major sweep over contiguous rows) means the flattening is
//!   exact and the nest is indistinguishable from a long single loop.
//!
//! Flattening requires constant bounds on every level of a nest (plain
//! single loops may keep symbolic bounds, as before).

use super::ast::{CmpOp, Decl, Expr, ForLoop, LValue, Stmt};
use super::lexer::Span;
use super::parser::{LowerError, ParseErrorKind};
use crate::model::{AccessKind, ArrayId, LoopNest, LoopSpec, NestLevel};

/// Lowers a parsed [`ForLoop`] (possibly a nest) without array
/// declarations: every array is one-dimensional.
///
/// Exposed publicly as [`crate::dsl::parse_loop`], which also attaches
/// the source text to error positions; calling this directly is useful
/// when the AST was built programmatically. Sources with `array`
/// declarations lower through [`lower_unit_loop`].
///
/// # Errors
///
/// Returns an error (without line/column resolution — see
/// [`crate::dsl::parse_loop`]) when a subscript is not affine in the
/// induction variables, ranks mismatch, one array mixes coefficients,
/// or a nest level has no constant trip count.
pub fn lower_loop(ast: &ForLoop) -> Result<LoopSpec, LowerError> {
    lower_unit_loop(&[], ast)
}

/// Lowers one loop (nest) of a compilation unit under its `array`
/// declarations.
///
/// # Errors
///
/// See [`lower_loop`].
pub fn lower_unit_loop(decls: &[Decl], ast: &ForLoop) -> Result<LoopSpec, LowerError> {
    Lowerer::new(decls, ast)?.lower()
}

/// Affine form of an expression: `Σ coeffs[k] * var_k + constant`,
/// aligned with the nest's induction variables, outermost first.
struct Affine {
    coeffs: Vec<i64>,
    constant: i64,
}

/// Per-level loop shape of one nest level (including the innermost).
struct Level<'a> {
    ast: &'a ForLoop,
    start: i64,
    stride: i64,
    trips: u64,
}

struct Lowerer<'a> {
    decls: &'a [Decl],
    levels: Vec<Level<'a>>,
    vars: Vec<&'a str>,
    spec: LoopSpec,
    /// Full per-level coefficient vector of each registered array, in
    /// [`ArrayId`] order (the spec itself only stores the innermost
    /// coefficient).
    coeff_vectors: Vec<Vec<i64>>,
}

impl<'a> Lowerer<'a> {
    fn new(decls: &'a [Decl], ast: &'a ForLoop) -> Result<Self, LowerError> {
        // Collect the nest chain, outermost first, and check variables.
        let mut chain: Vec<&ForLoop> = vec![ast];
        let mut current = ast;
        while let Some(inner) = &current.nested {
            current = inner;
            chain.push(current);
        }
        let vars: Vec<&str> = chain.iter().map(|l| l.var.as_str()).collect();
        for (k, var) in vars.iter().enumerate() {
            if vars[..k].contains(var) {
                return Err(LowerError::new(
                    ParseErrorKind::DuplicateInductionVariable((*var).to_owned()),
                    chain[k].span,
                ));
            }
        }
        let nested = chain.len() > 1;
        let levels: Vec<Level<'a>> = chain
            .iter()
            .map(|level| {
                if nested {
                    level_shape(level)
                } else {
                    // Plain single loops keep symbolic bounds; the trip
                    // count is never consulted.
                    Ok(Level {
                        ast: level,
                        start: level.start.unwrap_or(0),
                        stride: level.update.stride(),
                        trips: 1,
                    })
                }
            })
            .collect::<Result<_, _>>()?;

        let inner = levels.last().expect("a nest has at least one level");
        let mut spec = LoopSpec::try_new("loop", &inner.ast.var, inner.stride).map_err(|_| {
            // The parser already rejects zero strides; this is a safety
            // net for programmatically-built ASTs.
            LowerError::new(ParseErrorKind::ZeroStride, inner.ast.span)
        })?;
        spec.set_start(inner.start);
        Ok(Lowerer {
            decls,
            levels,
            vars,
            spec,
            coeff_vectors: Vec::new(),
        })
    }

    fn lower(mut self) -> Result<LoopSpec, LowerError> {
        let inner_ast = self.levels.last().expect("non-empty nest").ast;
        for stmt in &inner_ast.body {
            self.lower_stmt(stmt)?;
        }
        if self.levels.len() > 1 {
            self.attach_nest()?;
        }
        Ok(self.spec)
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        // Right-hand-side reads, in evaluation order.
        let mut rhs_refs: Vec<(&str, &[Expr])> = Vec::new();
        stmt.rhs
            .visit_indices(&mut |name, indices| rhs_refs.push((name, indices)));
        for (name, indices) in rhs_refs {
            self.push(name, indices, AccessKind::Read, stmt.span)?;
        }
        // Left-hand side.
        if let LValue::Element { array, indices } = &stmt.lhs {
            if stmt.op.reads_lhs() {
                self.push(array, indices, AccessKind::Read, stmt.span)?;
            }
            self.push(array, indices, AccessKind::Write, stmt.span)?;
        }
        Ok(())
    }

    fn push(
        &mut self,
        array: &str,
        indices: &[Expr],
        kind: AccessKind,
        span: Span,
    ) -> Result<(), LowerError> {
        let lowered = self
            .linearize(array, indices)
            .map_err(|kind| LowerError::new(kind, span))?;
        let id = self.resolve_array(array, &lowered.coeffs, span)?;
        // Fold outer-level starts into the constant: the flat spec only
        // tracks the innermost variable.
        let mut offset = i128::from(lowered.constant);
        for (level, &coeff) in self.levels[..self.levels.len() - 1]
            .iter()
            .zip(&lowered.coeffs)
        {
            offset += i128::from(coeff) * i128::from(level.start);
        }
        let offset = narrow(offset).map_err(|kind| LowerError::new(kind, span))?;
        self.spec
            .push_access(id, offset, kind)
            .expect("id resolved against this spec");
        Ok(())
    }

    /// Folds a subscript chain into one affine form over the nest
    /// variables, linearizing multi-dimensional subscripts row-major
    /// against the array's declaration.
    fn linearize(&self, array: &str, indices: &[Expr]) -> Result<Affine, ParseErrorKind> {
        let row_strides = match self.decls.iter().find(|d| d.name == array) {
            Some(decl) => {
                if indices.len() != decl.dims.len() {
                    return Err(ParseErrorKind::RankMismatch {
                        array: array.to_owned(),
                        expected: decl.dims.len(),
                        found: indices.len(),
                    });
                }
                // Row-major: the stride of dimension k is the product of
                // all dimensions after it; the outermost extent only
                // checks rank.
                let mut strides = vec![1i128; decl.dims.len()];
                for k in (0..decl.dims.len() - 1).rev() {
                    strides[k] = strides[k + 1]
                        .checked_mul(i128::from(decl.dims[k + 1]))
                        .ok_or(ParseErrorKind::IndexOverflow)?;
                }
                strides
            }
            None => {
                if indices.len() != 1 {
                    return Err(ParseErrorKind::UndeclaredArray(array.to_owned()));
                }
                vec![1i128]
            }
        };
        let mut coeffs = vec![0i128; self.vars.len()];
        let mut constant = 0i128;
        for (index, &stride) in indices.iter().zip(&row_strides) {
            let affine = self.affine(index)?;
            for (total, &c) in coeffs.iter_mut().zip(&affine.coeffs) {
                *total = total
                    .checked_add(
                        stride
                            .checked_mul(i128::from(c))
                            .ok_or(ParseErrorKind::IndexOverflow)?,
                    )
                    .ok_or(ParseErrorKind::IndexOverflow)?;
            }
            constant = constant
                .checked_add(
                    stride
                        .checked_mul(i128::from(affine.constant))
                        .ok_or(ParseErrorKind::IndexOverflow)?,
                )
                .ok_or(ParseErrorKind::IndexOverflow)?;
        }
        Ok(Affine {
            coeffs: coeffs.into_iter().map(narrow).collect::<Result<_, _>>()?,
            constant: narrow(constant)?,
        })
    }

    /// Folds one index expression into `Σ c_k * var_k + d`.
    fn affine(&self, e: &Expr) -> Result<Affine, ParseErrorKind> {
        let zero = || Affine {
            coeffs: vec![0; self.vars.len()],
            constant: 0,
        };
        match e {
            Expr::Num(n) => {
                let mut a = zero();
                a.constant = *n;
                Ok(a)
            }
            Expr::Var(v) => match self.vars.iter().position(|var| var == v) {
                Some(k) => {
                    let mut a = zero();
                    a.coeffs[k] = 1;
                    Ok(a)
                }
                None => Err(ParseErrorKind::SymbolicIndex(v.clone())),
            },
            Expr::Index { array, .. } => Err(ParseErrorKind::ArrayInIndex(array.clone())),
            Expr::Neg(inner) => {
                let a = self.affine(inner)?;
                Ok(Affine {
                    coeffs: a
                        .coeffs
                        .iter()
                        .map(|c| c.checked_neg().ok_or(ParseErrorKind::IndexOverflow))
                        .collect::<Result<_, _>>()?,
                    constant: a
                        .constant
                        .checked_neg()
                        .ok_or(ParseErrorKind::IndexOverflow)?,
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                use super::ast::BinOp;
                let l = self.affine(lhs)?;
                let r = self.affine(rhs)?;
                let zip = |f: fn(i64, i64) -> Option<i64>| -> Result<Affine, ParseErrorKind> {
                    Ok(Affine {
                        coeffs: l
                            .coeffs
                            .iter()
                            .zip(&r.coeffs)
                            .map(|(&a, &b)| f(a, b).ok_or(ParseErrorKind::IndexOverflow))
                            .collect::<Result<_, _>>()?,
                        constant: f(l.constant, r.constant).ok_or(ParseErrorKind::IndexOverflow)?,
                    })
                };
                match op {
                    BinOp::Add => zip(i64::checked_add),
                    BinOp::Sub => zip(i64::checked_sub),
                    BinOp::Mul => {
                        let scale = |a: &Affine, k: i64| -> Result<Affine, ParseErrorKind> {
                            Ok(Affine {
                                coeffs: a
                                    .coeffs
                                    .iter()
                                    .map(|&c| c.checked_mul(k).ok_or(ParseErrorKind::IndexOverflow))
                                    .collect::<Result<_, _>>()?,
                                constant: a
                                    .constant
                                    .checked_mul(k)
                                    .ok_or(ParseErrorKind::IndexOverflow)?,
                            })
                        };
                        if l.coeffs.iter().all(|&c| c == 0) {
                            scale(&r, l.constant)
                        } else if r.coeffs.iter().all(|&c| c == 0) {
                            scale(&l, r.constant)
                        } else {
                            Err(ParseErrorKind::NonAffineIndex)
                        }
                    }
                    BinOp::Div => Err(ParseErrorKind::DivisionInIndex),
                }
            }
        }
    }

    fn resolve_array(
        &mut self,
        name: &str,
        coeffs: &[i64],
        span: Span,
    ) -> Result<ArrayId, LowerError> {
        match self.spec.array_id(name) {
            Some(id) => {
                let first = &self.coeff_vectors[id.index()];
                if first != coeffs {
                    // Report the first differing level's coefficients.
                    let (a, b) = first
                        .iter()
                        .zip(coeffs)
                        .find(|(a, b)| a != b)
                        .expect("vectors differ");
                    return Err(LowerError::new(
                        ParseErrorKind::MixedCoefficients {
                            array: name.to_owned(),
                            first: *a,
                            second: *b,
                        },
                        span,
                    ));
                }
                Ok(id)
            }
            None => {
                let inner_coeff = *coeffs.last().expect("at least the innermost level");
                let id = self.spec.add_array(name, inner_coeff);
                debug_assert_eq!(id.index(), self.coeff_vectors.len());
                self.coeff_vectors.push(coeffs.to_vec());
                Ok(id)
            }
        }
    }

    /// Attaches [`LoopNest`] metadata and per-array carries to the spec.
    fn attach_nest(&mut self) -> Result<(), LowerError> {
        let outer = &self.levels[..self.levels.len() - 1];
        let nest = LoopNest::new(
            outer
                .iter()
                .map(|level| NestLevel {
                    var: level.ast.var.clone(),
                    start: level.start,
                    stride: level.stride,
                    trips: level.trips,
                })
                .collect(),
            self.levels.last().expect("non-empty nest").trips,
        );
        // carry_k = c_k*s_k − c_{k+1}*s_{k+1}*T_{k+1}: how far the flat
        // model drifts from the true address each time level k advances
        // (the level below it wraps back to its start).
        for (index, coeffs) in self.coeff_vectors.iter().enumerate() {
            let mut carries = Vec::with_capacity(outer.len());
            for k in 0..outer.len() {
                let here = i128::from(coeffs[k]) * i128::from(self.levels[k].stride);
                let below = i128::from(coeffs[k + 1])
                    * i128::from(self.levels[k + 1].stride)
                    * i128::from(self.levels[k + 1].trips);
                carries.push(
                    narrow(here - below)
                        .map_err(|kind| LowerError::new(kind, self.levels[k].ast.span))?,
                );
            }
            self.spec
                .set_array_carries(ArrayId::from_index(index as u32), carries)
                .expect("array ids are dense");
        }
        self.spec.set_nest(nest);
        Ok(())
    }
}

/// Computes the constant shape (start, stride, trip count) of one nest
/// level; flattening needs all three.
fn level_shape(ast: &ForLoop) -> Result<Level<'_>, LowerError> {
    let var = || ast.var.clone();
    let start = ast
        .start
        .ok_or_else(|| LowerError::new(ParseErrorKind::NonConstantNestBound(var()), ast.span))?;
    let bound = super::parser::const_eval(&ast.cond.bound)
        .ok_or_else(|| LowerError::new(ParseErrorKind::NonConstantNestBound(var()), ast.span))?;
    let stride = ast.update.stride();
    let degenerate = || LowerError::new(ParseErrorKind::DegenerateNestLevel(var()), ast.span);
    // Iterations of `v = start; v <op> bound; v += stride` for the four
    // monotone condition/direction pairings; everything else (wrong
    // direction, `!=`, `==`) does not flatten.
    let span_len: i128 = match (ast.cond.op, stride > 0) {
        (CmpOp::Lt, true) => i128::from(bound) - i128::from(start),
        (CmpOp::Le, true) => i128::from(bound) - i128::from(start) + 1,
        (CmpOp::Gt, false) => i128::from(start) - i128::from(bound),
        (CmpOp::Ge, false) => i128::from(start) - i128::from(bound) + 1,
        _ => return Err(degenerate()),
    };
    let step = i128::from(stride).abs();
    let trips = (span_len + step - 1).div_euclid(step);
    if trips <= 0 {
        return Err(degenerate());
    }
    Ok(Level {
        ast,
        start,
        stride,
        trips: u64::try_from(trips).map_err(|_| degenerate())?,
    })
}

/// Narrows a folded `i128` back to `i64`.
fn narrow(v: i128) -> Result<i64, ParseErrorKind> {
    i64::try_from(v).map_err(|_| ParseErrorKind::IndexOverflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{parse_for, parse_loop};

    fn lower(src: &str) -> LoopSpec {
        lower_loop(&parse_for(src).unwrap()).unwrap()
    }

    fn lower_err(src: &str) -> ParseErrorKind {
        lower_loop(&parse_for(src).unwrap())
            .unwrap_err()
            .kind()
            .clone()
    }

    #[test]
    fn affine_forms() {
        let check = |src: &str, want: (i64, i64)| {
            let ast = parse_for(&format!("for (i = 0; i < 9; i++) {{ s = A[{src}]; }}")).unwrap();
            let spec = lower_loop(&ast).unwrap();
            let info = &spec.arrays()[0];
            assert_eq!(
                (info.coefficient(), spec.accesses()[0].offset),
                want,
                "index `{src}`"
            );
        };
        check("i", (1, 0));
        check("i + 3", (1, 3));
        check("i - 2", (1, -2));
        check("2 * i", (2, 0));
        check("2 * i + 1", (2, 1));
        check("i * 3 - 4", (3, -4));
        check("7 - i", (-1, 7));
        check("-i", (-1, 0));
        check("-(i + 1)", (-1, -1));
        check("(i + 1) * 2", (2, 2));
        check("5", (0, 5));
        check("i + i", (2, 0));
        check("2 * (3 * i + 1) - i", (5, 2));
    }

    #[test]
    fn non_affine_indices_are_rejected() {
        assert_eq!(
            lower_err("for (i = 0; i < 9; i++) { s = A[i * i]; }"),
            ParseErrorKind::NonAffineIndex
        );
        assert_eq!(
            lower_err("for (i = 0; i < 9; i++) { s = A[i / 2]; }"),
            ParseErrorKind::DivisionInIndex
        );
        assert_eq!(
            lower_err("for (i = 0; i < 9; i++) { s = A[B[i]]; }"),
            ParseErrorKind::ArrayInIndex("B".into())
        );
        assert_eq!(
            lower_err("for (i = 0; i < 9; i++) { s = A[n + 1]; }"),
            ParseErrorKind::SymbolicIndex("n".into())
        );
    }

    #[test]
    fn scalar_statements_produce_no_accesses() {
        let spec = lower("for (i = 0; i < 9; i++) { s = t * 2; t += 1; }");
        assert!(spec.is_empty());
    }

    #[test]
    fn evaluation_order_rhs_then_lhs() {
        let spec = lower("for (i = 0; i < 9; i++) { A[i] = B[i+1] + C[i-1]; }");
        let names: Vec<&str> = spec
            .accesses()
            .iter()
            .map(|a| spec.array_info(a.array).unwrap().name())
            .collect();
        assert_eq!(names, vec!["B", "C", "A"]);
        assert_eq!(spec.accesses()[2].kind, AccessKind::Write);
    }

    #[test]
    fn negative_stride_loops_lower() {
        let spec = lower("for (i = 9; i > 0; i--) { s += A[i]; }");
        assert_eq!(spec.stride(), -1);
        assert_eq!(spec.start(), 9);
    }

    #[test]
    fn coefficient_zero_arrays_are_loop_invariant() {
        let spec = lower("for (i = 0; i < 9; i++) { s += T[3]; }");
        let p = &spec.patterns()[0];
        assert_eq!(p.stride(), 0);
        assert_eq!(p.offsets(), vec![3]);
    }

    #[test]
    fn consistent_nonunit_coefficients_are_fine() {
        let spec = lower("for (i = 0; i < 9; i++) { s = X[2*i] + X[2*i + 1]; }");
        let p = &spec.patterns()[0];
        assert_eq!(p.offsets(), vec![0, 1]);
        assert_eq!(p.stride(), 2);
    }

    #[test]
    fn mixed_coefficient_error_names_the_array() {
        match lower_err("for (i = 0; i < 9; i++) { s = X[i] + X[2*i]; }") {
            ParseErrorKind::MixedCoefficients {
                array,
                first,
                second,
            } => {
                assert_eq!(array, "X");
                assert_eq!((first, second), (1, 2));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn multiple_statements_accumulate_in_order() {
        let spec = lower(
            "for (i = 2; i <= 100; i++) {
                s = A[i+1] + A[i] + A[i+2];
                t = A[i-1] * A[i+1];
                u = A[i] - A[i-2];
            }",
        );
        let p = &spec.patterns()[0];
        assert_eq!(p.offsets(), vec![1, 0, 2, -1, 1, 0, -2]);
    }

    // ---- nested / multi-dimensional lowering ----

    fn lower_src(src: &str) -> LoopSpec {
        parse_loop(src).unwrap_or_else(|e| panic!("{src}: {e}"))
    }

    #[test]
    fn contiguous_2d_sweep_flattens_with_zero_carry() {
        // Row stride (4) equals the inner trip count: exact flattening.
        let spec = lower_src(
            "array y[3][4];
             for (i = 0; i < 3; i++) { for (j = 0; j < 4; j++) { y[i][j] = 1; } }",
        );
        assert_eq!(spec.var(), "j");
        assert_eq!(spec.stride(), 1);
        let nest = spec.nest().expect("nest metadata");
        assert_eq!(nest.inner_trips(), 4);
        assert_eq!(nest.levels().len(), 1);
        assert_eq!(nest.levels()[0].trips, 3);
        assert_eq!(nest.total_iterations(), 12);
        let y = spec.array_info(spec.array_id("y").unwrap()).unwrap();
        assert_eq!(y.coefficient(), 1);
        assert_eq!(y.carries(), &[0], "4*1 (row) - 1*1*4 (sweep) = 0");
    }

    #[test]
    fn row_overhang_produces_the_expected_carry() {
        // Row stride 16, inner trips 14: carry 16 - 14 = 2 per row.
        let spec = lower_src(
            "array u[18][16];
             for (i = 1; i < 17; i++) { for (j = 1; j < 15; j++) { s += u[i][j]; } }",
        );
        let u = spec.array_info(spec.array_id("u").unwrap()).unwrap();
        assert_eq!(u.coefficient(), 1);
        assert_eq!(u.carries(), &[2]);
        // Offset folds the outer start: 16 * 1 = 16.
        assert_eq!(spec.accesses()[0].offset, 16);
        assert_eq!(spec.start(), 1);
    }

    #[test]
    fn transposed_writes_carry_backwards() {
        let spec = lower_src(
            "array a[8][8]; array b[8][8];
             for (i = 0; i < 8; i++) { for (j = 0; j < 8; j++) { b[j][i] = a[i][j]; } }",
        );
        let a = spec.array_info(spec.array_id("a").unwrap()).unwrap();
        let b = spec.array_info(spec.array_id("b").unwrap()).unwrap();
        // a sweeps rows contiguously; b walks a column (stride 8) and
        // jumps back 8*8 - 1 = 63 at each row boundary.
        assert_eq!((a.coefficient(), a.carries()), (1, &[0i64][..]));
        assert_eq!((b.coefficient(), b.carries()), (8, &[1 - 64i64][..]));
    }

    #[test]
    fn triple_nests_record_one_carry_per_outer_level() {
        let spec = lower_src(
            "array t[2][3][4];
             for (i = 0; i < 2; i++) {
                 for (j = 0; j < 3; j++) {
                     for (k = 0; k < 4; k++) { s += t[i][j][k]; }
                 }
             }",
        );
        let nest = spec.nest().unwrap();
        assert_eq!(nest.depth(), 3);
        assert_eq!(nest.periods(), vec![12, 4]);
        let t = spec.array_info(spec.array_id("t").unwrap()).unwrap();
        // Fully contiguous walk: every carry is zero.
        assert_eq!(t.carries(), &[0, 0]);
        assert_eq!(t.coefficient(), 1);
    }

    #[test]
    fn multi_dim_subscripts_work_in_single_loops_too() {
        // A fixed-row access in a single loop: coefficient 1 from j, the
        // row base folds into the offset.
        let spec = lower_src(
            "array m[4][10];
             for (j = 0; j < 10; j++) { s += m[2][j]; }",
        );
        assert!(spec.nest().is_none());
        assert_eq!(spec.accesses()[0].offset, 20);
    }

    #[test]
    fn nested_error_paths_are_reported() {
        let err = |src: &str| crate::dsl::parse_loop(src).unwrap_err().kind().clone();
        // Rank mismatch against the declaration.
        assert_eq!(
            err("array x[4][4]; for (i = 0; i < 4; i++) { s += x[i]; }"),
            ParseErrorKind::RankMismatch {
                array: "x".into(),
                expected: 2,
                found: 1
            }
        );
        // Multi-dim subscript without a declaration.
        assert_eq!(
            err("for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { s += x[i][j]; } }"),
            ParseErrorKind::UndeclaredArray("x".into())
        );
        // Unbound induction variable in a nest.
        assert_eq!(
            err("array x[4][4]; for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { s += x[i][q]; } }"),
            ParseErrorKind::SymbolicIndex("q".into())
        );
        // Non-affine product of two induction variables.
        assert_eq!(
            err("array x[4][4]; for (i = 0; i < 4; i++) { for (j = 0; j < 4; j++) { s += x[i][i * j]; } }"),
            ParseErrorKind::NonAffineIndex
        );
        // Symbolic outer bound cannot flatten.
        assert_eq!(
            err("for (i = 0; i < N; i++) { for (j = 0; j < 4; j++) { s += y[j]; } }"),
            ParseErrorKind::NonConstantNestBound("i".into())
        );
        // Degenerate outer level.
        assert_eq!(
            err("for (i = 4; i < 4; i++) { for (j = 0; j < 4; j++) { s += y[j]; } }"),
            ParseErrorKind::DegenerateNestLevel("i".into())
        );
        // Reused induction variable.
        assert_eq!(
            err("for (i = 0; i < 4; i++) { for (i = 0; i < 4; i++) { s += y[i]; } }"),
            ParseErrorKind::DuplicateInductionVariable("i".into())
        );
    }

    #[test]
    fn nest_trip_counts_cover_all_condition_shapes() {
        let trips = |src: &str| {
            let spec = lower_src(src);
            let nest = spec.nest().unwrap();
            (nest.levels()[0].trips, nest.inner_trips())
        };
        assert_eq!(
            trips("for (i = 0; i < 7; i += 2) { for (j = 0; j < 3; j++) { s += y[j]; } }"),
            (4, 3)
        );
        assert_eq!(
            trips("for (i = 10; i >= 1; i -= 3) { for (j = 3; j > 0; j--) { s += y[j]; } }"),
            (4, 3)
        );
        assert_eq!(
            trips("for (i = 0; i <= 4; i++) { for (j = 0; j < 1; j++) { s += y[j]; } }"),
            (5, 1)
        );
    }
}
