//! Lowering from the DSL AST to the flat [`LoopSpec`] IR.
//!
//! Lowering walks every statement, extracts array accesses in evaluation
//! order (right-hand-side reads left-to-right, then the left-hand-side read
//! for compound assignments, then the left-hand-side write) and folds each
//! index expression into the affine form `c*i + d`.

use super::ast::{Expr, ForLoop, LValue, Stmt};
use super::lexer::Span;
use super::parser::{LowerError, ParseErrorKind};
use crate::model::{AccessKind, ArrayId, LoopSpec};

/// Lowers a parsed [`ForLoop`] to a [`LoopSpec`].
///
/// Exposed publicly as [`crate::dsl::parse_loop`], which also attaches the
/// source text to error positions; calling this directly is useful when the
/// AST was built programmatically.
///
/// # Errors
///
/// Returns an error (without line/column resolution — see
/// [`crate::dsl::parse_loop`]) when an index expression is not affine in
/// the loop variable or when one array is indexed with mixed coefficients.
pub fn lower_loop(ast: &ForLoop) -> Result<LoopSpec, LowerError> {
    let mut spec = LoopSpec::try_new("loop", &ast.var, ast.update.stride()).map_err(|_| {
        // The parser already rejects zero strides; this is a safety net for
        // programmatically-built ASTs.
        LowerError::new(ParseErrorKind::ZeroStride, Span::default())
    })?;
    spec.set_start(ast.start.unwrap_or(0));
    for stmt in &ast.body {
        lower_stmt(&mut spec, &ast.var, stmt)?;
    }
    Ok(spec)
}

fn lower_stmt(spec: &mut LoopSpec, var: &str, stmt: &Stmt) -> Result<(), LowerError> {
    // Right-hand-side reads, in evaluation order.
    let mut rhs_refs: Vec<(&str, &Expr)> = Vec::new();
    stmt.rhs
        .visit_indices(&mut |name, idx| rhs_refs.push((name, idx)));
    for (name, idx) in rhs_refs {
        push(spec, var, name, idx, AccessKind::Read, stmt.span)?;
    }
    // Left-hand side.
    if let LValue::Element { array, index } = &stmt.lhs {
        if stmt.op.reads_lhs() {
            push(spec, var, array, index, AccessKind::Read, stmt.span)?;
        }
        push(spec, var, array, index, AccessKind::Write, stmt.span)?;
    }
    Ok(())
}

fn push(
    spec: &mut LoopSpec,
    var: &str,
    array: &str,
    index: &Expr,
    kind: AccessKind,
    span: Span,
) -> Result<(), LowerError> {
    let (coeff, offset) = affine(index, var).map_err(|kind| LowerError::new(kind, span))?;
    let id = resolve_array(spec, array, coeff, span)?;
    spec.push_access(id, offset, kind)
        .expect("id resolved against this spec");
    Ok(())
}

fn resolve_array(
    spec: &mut LoopSpec,
    name: &str,
    coeff: i64,
    span: Span,
) -> Result<ArrayId, LowerError> {
    match spec.array_id(name) {
        Some(id) => {
            let first = spec
                .array_info(id)
                .expect("array_id returned a valid id")
                .coefficient();
            if first != coeff {
                return Err(LowerError::new(
                    ParseErrorKind::MixedCoefficients {
                        array: name.to_owned(),
                        first,
                        second: coeff,
                    },
                    span,
                ));
            }
            Ok(id)
        }
        None => Ok(spec.add_array(name, coeff)),
    }
}

/// Folds an index expression into `(coefficient, constant)` such that the
/// expression equals `coefficient * var + constant`.
fn affine(e: &Expr, var: &str) -> Result<(i64, i64), ParseErrorKind> {
    match e {
        Expr::Num(n) => Ok((0, *n)),
        Expr::Var(v) => {
            if v == var {
                Ok((1, 0))
            } else {
                Err(ParseErrorKind::SymbolicIndex(v.clone()))
            }
        }
        Expr::Index { array, .. } => Err(ParseErrorKind::ArrayInIndex(array.clone())),
        Expr::Neg(inner) => {
            let (c, d) = affine(inner, var)?;
            Ok((
                c.checked_neg().ok_or(ParseErrorKind::IndexOverflow)?,
                d.checked_neg().ok_or(ParseErrorKind::IndexOverflow)?,
            ))
        }
        Expr::Binary { op, lhs, rhs } => {
            use super::ast::BinOp;
            let (lc, ld) = affine(lhs, var)?;
            let (rc, rd) = affine(rhs, var)?;
            let add = |a: i64, b: i64| a.checked_add(b).ok_or(ParseErrorKind::IndexOverflow);
            let sub = |a: i64, b: i64| a.checked_sub(b).ok_or(ParseErrorKind::IndexOverflow);
            let mul = |a: i64, b: i64| a.checked_mul(b).ok_or(ParseErrorKind::IndexOverflow);
            match op {
                BinOp::Add => Ok((add(lc, rc)?, add(ld, rd)?)),
                BinOp::Sub => Ok((sub(lc, rc)?, sub(ld, rd)?)),
                BinOp::Mul => {
                    if lc == 0 {
                        Ok((mul(ld, rc)?, mul(ld, rd)?))
                    } else if rc == 0 {
                        Ok((mul(rd, lc)?, mul(rd, ld)?))
                    } else {
                        Err(ParseErrorKind::NonAffineIndex)
                    }
                }
                BinOp::Div => Err(ParseErrorKind::DivisionInIndex),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_for;

    fn lower(src: &str) -> LoopSpec {
        lower_loop(&parse_for(src).unwrap()).unwrap()
    }

    fn lower_err(src: &str) -> ParseErrorKind {
        lower_loop(&parse_for(src).unwrap())
            .unwrap_err()
            .kind()
            .clone()
    }

    #[test]
    fn affine_forms() {
        let check = |src: &str, want: (i64, i64)| {
            let ast = parse_for(&format!("for (i = 0; i < 9; i++) {{ s = A[{src}]; }}")).unwrap();
            let spec = lower_loop(&ast).unwrap();
            let info = &spec.arrays()[0];
            assert_eq!(
                (info.coefficient(), spec.accesses()[0].offset),
                want,
                "index `{src}`"
            );
        };
        check("i", (1, 0));
        check("i + 3", (1, 3));
        check("i - 2", (1, -2));
        check("2 * i", (2, 0));
        check("2 * i + 1", (2, 1));
        check("i * 3 - 4", (3, -4));
        check("7 - i", (-1, 7));
        check("-i", (-1, 0));
        check("-(i + 1)", (-1, -1));
        check("(i + 1) * 2", (2, 2));
        check("5", (0, 5));
        check("i + i", (2, 0));
        check("2 * (3 * i + 1) - i", (5, 2));
    }

    #[test]
    fn non_affine_indices_are_rejected() {
        assert_eq!(
            lower_err("for (i = 0; i < 9; i++) { s = A[i * i]; }"),
            ParseErrorKind::NonAffineIndex
        );
        assert_eq!(
            lower_err("for (i = 0; i < 9; i++) { s = A[i / 2]; }"),
            ParseErrorKind::DivisionInIndex
        );
        assert_eq!(
            lower_err("for (i = 0; i < 9; i++) { s = A[B[i]]; }"),
            ParseErrorKind::ArrayInIndex("B".into())
        );
        assert_eq!(
            lower_err("for (i = 0; i < 9; i++) { s = A[n + 1]; }"),
            ParseErrorKind::SymbolicIndex("n".into())
        );
    }

    #[test]
    fn scalar_statements_produce_no_accesses() {
        let spec = lower("for (i = 0; i < 9; i++) { s = t * 2; t += 1; }");
        assert!(spec.is_empty());
    }

    #[test]
    fn evaluation_order_rhs_then_lhs() {
        let spec = lower("for (i = 0; i < 9; i++) { A[i] = B[i+1] + C[i-1]; }");
        let names: Vec<&str> = spec
            .accesses()
            .iter()
            .map(|a| spec.array_info(a.array).unwrap().name())
            .collect();
        assert_eq!(names, vec!["B", "C", "A"]);
        assert_eq!(spec.accesses()[2].kind, AccessKind::Write);
    }

    #[test]
    fn negative_stride_loops_lower() {
        let spec = lower("for (i = 9; i > 0; i--) { s += A[i]; }");
        assert_eq!(spec.stride(), -1);
        assert_eq!(spec.start(), 9);
    }

    #[test]
    fn coefficient_zero_arrays_are_loop_invariant() {
        let spec = lower("for (i = 0; i < 9; i++) { s += T[3]; }");
        let p = &spec.patterns()[0];
        assert_eq!(p.stride(), 0);
        assert_eq!(p.offsets(), vec![3]);
    }

    #[test]
    fn consistent_nonunit_coefficients_are_fine() {
        let spec = lower("for (i = 0; i < 9; i++) { s = X[2*i] + X[2*i + 1]; }");
        let p = &spec.patterns()[0];
        assert_eq!(p.offsets(), vec![0, 1]);
        assert_eq!(p.stride(), 2);
    }

    #[test]
    fn mixed_coefficient_error_names_the_array() {
        match lower_err("for (i = 0; i < 9; i++) { s = X[i] + X[2*i]; }") {
            ParseErrorKind::MixedCoefficients {
                array,
                first,
                second,
            } => {
                assert_eq!(array, "X");
                assert_eq!((first, second), (1, 2));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn multiple_statements_accumulate_in_order() {
        let spec = lower(
            "for (i = 2; i <= 100; i++) {
                s = A[i+1] + A[i] + A[i+2];
                t = A[i-1] * A[i+1];
                u = A[i] - A[i-2];
            }",
        );
        let p = &spec.patterns()[0];
        assert_eq!(p.offsets(), vec![1, 0, 2, -1, 1, 0, -2]);
    }
}
