//! Pretty printers for loops and access patterns.
//!
//! Two renderings are provided: the C-like source of a parsed
//! [`ForLoop`] AST, and the paper-style annotated
//! access listing of a [`LoopSpec`] (compare the example loop in Section 2
//! of the paper, where each access is labelled `a_k` and its offset is
//! shown as a comment).

use std::fmt::Write as _;

use crate::dsl::ForLoop;
use crate::model::{AccessKind, LoopSpec};

/// Renders a parsed AST back to C-like source.
///
/// The output is normalized (one statement per line, canonical spacing)
/// but semantically identical to the input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ast = raco_ir::dsl::parse_for("for(i=0;i<8;i++){y[i]=x[i+1];}")?;
/// let printed = raco_ir::pretty::print_for(&ast);
/// assert!(printed.contains("for (i = 0; i < 8; i++) {"));
/// assert!(printed.contains("    y[i] = x[i + 1];"));
/// # Ok(())
/// # }
/// ```
pub fn print_for(ast: &ForLoop) -> String {
    let mut out = String::new();
    print_for_level(&mut out, ast, 0);
    out
}

fn print_for_level(out: &mut String, ast: &ForLoop, depth: usize) {
    use crate::dsl::Update;
    let update = match ast.update {
        Update::Increment => format!("{}++", ast.var),
        Update::Decrement => format!("{}--", ast.var),
        Update::Step(k) if k >= 0 => format!("{} += {k}", ast.var),
        Update::Step(k) => format!("{} -= {}", ast.var, -k),
    };
    let pad = "    ".repeat(depth);
    let _ = writeln!(
        out,
        "{pad}for ({} = {}; {} {} {}; {update}) {{",
        ast.var, ast.init, ast.var, ast.cond.op, ast.cond.bound
    );
    if let Some(inner) = &ast.nested {
        print_for_level(out, inner, depth + 1);
    }
    for stmt in &ast.body {
        let _ = writeln!(out, "{pad}    {stmt}");
    }
    let _ = writeln!(out, "{pad}}}");
}

/// Renders a [`LoopSpec`] as the paper-style annotated access listing.
///
/// Each access appears on its own line labelled `a_k`, exactly like the
/// example loop of the paper's Section 2.
///
/// # Examples
///
/// ```
/// use raco_ir::{examples, pretty};
/// let listing = pretty::print_access_listing(&examples::paper_loop());
/// assert!(listing.contains("/* a_1 */ A[i+1]"));
/// assert!(listing.contains("/* offset 1 */"));
/// ```
pub fn print_access_listing(spec: &LoopSpec) -> String {
    let mut out = String::new();
    if let Some(nest) = spec.nest() {
        for level in nest.levels() {
            let _ = writeln!(
                out,
                "/* outer */ for ({v} = {start}; …; {v} += {stride})  /* {trips} trips */",
                v = level.var,
                start = level.start,
                stride = level.stride,
                trips = level.trips
            );
        }
    }
    let _ = writeln!(
        out,
        "for ({v} = {start}; …; {v} += {stride})",
        v = spec.var(),
        start = spec.start(),
        stride = spec.stride()
    );
    out.push_str("{\n");
    for (k, acc) in spec.accesses().iter().enumerate() {
        let name = spec
            .array_info(acc.array)
            .map(|a| a.name().to_owned())
            .unwrap_or_else(|| acc.array.to_string());
        let coeff = spec
            .array_info(acc.array)
            .map(|a| a.coefficient())
            .unwrap_or(1);
        let index = index_text(spec.var(), coeff, acc.offset);
        let rw = match acc.kind {
            AccessKind::Read => "",
            AccessKind::Write => " (write)",
        };
        let _ = writeln!(
            out,
            "  /* a_{} */ {name}[{index}] /* offset {} */{rw}",
            k + 1,
            acc.offset
        );
    }
    out.push_str("}\n");
    out
}

/// Formats the index expression `coeff*var + offset` the way a programmer
/// would write it (`i`, `i+1`, `i-2`, `2*i+1`, `3`, …).
fn index_text(var: &str, coeff: i64, offset: i64) -> String {
    let var_part = match coeff {
        0 => String::new(),
        1 => var.to_owned(),
        -1 => format!("-{var}"),
        c => format!("{c}*{var}"),
    };
    match (var_part.is_empty(), offset) {
        (true, d) => d.to_string(),
        (false, 0) => var_part,
        (false, d) if d > 0 => format!("{var_part}+{d}"),
        (false, d) => format!("{var_part}{d}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{parse_for, parse_loop};

    #[test]
    fn print_for_round_trips_through_the_parser() {
        let src = "for (i = 2; i <= 100; i += 2) {
            acc = acc + A[i + 1] * A[i];
            B[2 * i] += A[i - 1];
        }";
        let ast = parse_for(src).unwrap();
        let printed = print_for(&ast);
        let reparsed = parse_for(&printed).unwrap();
        // Compare lowered semantics rather than spans.
        let a = crate::dsl::lower_loop(&ast).unwrap();
        let b = crate::dsl::lower_loop(&reparsed).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn listing_matches_paper_format() {
        let spec =
            parse_loop("for (i = 2; i <= 100; i++) { s = A[i+1] + A[i] + A[i+2] + A[i-1]; }")
                .unwrap();
        let listing = print_access_listing(&spec);
        assert!(listing.contains("/* a_1 */ A[i+1] /* offset 1 */"));
        assert!(listing.contains("/* a_2 */ A[i] /* offset 0 */"));
        assert!(listing.contains("/* a_4 */ A[i-1] /* offset -1 */"));
    }

    #[test]
    fn listing_marks_writes() {
        let spec = parse_loop("for (i = 0; i < 4; i++) { A[i] = 1; }").unwrap();
        assert!(print_access_listing(&spec).contains("(write)"));
    }

    #[test]
    fn index_text_covers_coefficients() {
        assert_eq!(index_text("i", 1, 0), "i");
        assert_eq!(index_text("i", 1, 3), "i+3");
        assert_eq!(index_text("i", 1, -2), "i-2");
        assert_eq!(index_text("i", 0, 5), "5");
        assert_eq!(index_text("i", 2, 1), "2*i+1");
        assert_eq!(index_text("i", -1, 7), "-i+7");
        assert_eq!(index_text("i", 0, 0), "0");
    }

    #[test]
    fn print_for_update_forms() {
        for (src, needle) in [
            ("for (i = 0; i < 8; i++) { }", "i++"),
            ("for (i = 8; i > 0; i--) { }", "i--"),
            ("for (i = 0; i < 8; i += 3) { }", "i += 3"),
            ("for (i = 8; i > 0; i -= 2) { }", "i -= 2"),
        ] {
            let printed = print_for(&parse_for(src).unwrap());
            assert!(printed.contains(needle), "`{printed}` lacks `{needle}`");
        }
    }
}
