//! Address-generation-unit (AGU) machine model.
//!
//! The paper's machine model (Section 2): the AGU owns `K` address
//! registers; a post-increment/decrement by `d` with `|d| <= M` executes in
//! parallel with the data path (zero cost), while any larger update costs
//! one extra instruction (unit cost). Many real DSPs additionally provide
//! *modify registers* whose content can be added to an address register for
//! free — the optional `modify_registers` field models those (used by the
//! E7 extension experiment; see their ref \[2\], Araujo et al., ISSS 1996).

use std::fmt;

/// Errors produced when constructing an [`AguSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// At least one address register is required.
    NoAddressRegisters,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoAddressRegisters => {
                f.write_str("an AGU needs at least one address register")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Description of an address-generation unit.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use raco_ir::AguSpec;
///
/// // Four address registers, free auto-modify within |d| <= 1:
/// let agu = AguSpec::new(4, 1)?;
/// assert!(agu.is_free_delta(-1));
/// assert!(!agu.is_free_delta(2));
///
/// // Extended machine with two modify registers:
/// let agu = AguSpec::new(4, 1)?.with_modify_registers(2);
/// assert_eq!(agu.modify_registers(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AguSpec {
    address_registers: usize,
    modify_range: u32,
    modify_registers: usize,
}

impl AguSpec {
    /// Creates an AGU with `address_registers` address registers (the
    /// paper's `K`) and auto-modify range `modify_range` (the paper's `M`).
    ///
    /// A `modify_range` of zero is allowed and means only re-using the same
    /// address is free — useful as a degenerate case in tests.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NoAddressRegisters`] if
    /// `address_registers == 0`.
    pub fn new(address_registers: usize, modify_range: u32) -> Result<Self, SpecError> {
        if address_registers == 0 {
            return Err(SpecError::NoAddressRegisters);
        }
        Ok(AguSpec {
            address_registers,
            modify_range,
            modify_registers: 0,
        })
    }

    /// Adds `count` modify registers to the machine (builder style).
    ///
    /// A modify register holds an arbitrary signed constant; adding its
    /// content to an address register is as free as an in-range
    /// auto-modify. Allocation of values to modify registers is performed
    /// by `raco-agu`.
    #[must_use]
    pub fn with_modify_registers(mut self, count: usize) -> Self {
        self.modify_registers = count;
        self
    }

    /// Number of address registers `K`.
    pub fn address_registers(&self) -> usize {
        self.address_registers
    }

    /// Auto-modify range `M`: post-updates with `|d| <= M` are free.
    pub fn modify_range(&self) -> u32 {
        self.modify_range
    }

    /// Number of modify registers (zero on the plain paper machine).
    pub fn modify_registers(&self) -> usize {
        self.modify_registers
    }

    /// `true` if a post-update by `delta` is free via auto-modify
    /// (ignoring modify registers, whose contents are allocation-dependent).
    pub fn is_free_delta(&self, delta: i64) -> bool {
        delta.unsigned_abs() <= u64::from(self.modify_range)
    }

    /// A machine in the spirit of the TI TMS320C2x family: eight address
    /// (auxiliary) registers, auto-increment/decrement by one.
    pub fn tms320c2x_like() -> Self {
        AguSpec {
            address_registers: 8,
            modify_range: 1,
            modify_registers: 0,
        }
    }

    /// A machine in the spirit of the Motorola DSP56002: eight address
    /// registers, auto-modify by one, with offset (modify) registers.
    pub fn dsp56k_like() -> Self {
        AguSpec {
            address_registers: 8,
            modify_range: 1,
            modify_registers: 4,
        }
    }

    /// A machine in the spirit of the Analog Devices ADSP-210x: four
    /// address registers per DAG with four modify registers.
    pub fn adsp210x_like() -> Self {
        AguSpec {
            address_registers: 4,
            modify_range: 1,
            modify_registers: 4,
        }
    }

    /// Returns a copy with a different register count, keeping the other
    /// parameters — convenient for register-constraint sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NoAddressRegisters`] if `k == 0`.
    pub fn with_address_registers(&self, k: usize) -> Result<Self, SpecError> {
        if k == 0 {
            return Err(SpecError::NoAddressRegisters);
        }
        let mut copy = *self;
        copy.address_registers = k;
        Ok(copy)
    }
}

impl Default for AguSpec {
    /// The default machine matches the paper's running example:
    /// `K = 1` register constraint is *not* assumed; we default to a small
    /// generic AGU with `K = 4`, `M = 1`.
    fn default() -> Self {
        AguSpec {
            address_registers: 4,
            modify_range: 1,
            modify_registers: 0,
        }
    }
}

impl fmt::Display for AguSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AGU(K={}, M={}, MR={})",
            self.address_registers, self.modify_range, self.modify_registers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_registers() {
        assert_eq!(
            AguSpec::new(0, 1).unwrap_err(),
            SpecError::NoAddressRegisters
        );
        assert!(AguSpec::new(1, 0).is_ok());
    }

    #[test]
    fn free_delta_respects_range_symmetrically() {
        let agu = AguSpec::new(2, 3).unwrap();
        for d in -3..=3 {
            assert!(agu.is_free_delta(d), "delta {d} should be free");
        }
        assert!(!agu.is_free_delta(4));
        assert!(!agu.is_free_delta(-4));
    }

    #[test]
    fn zero_range_only_frees_zero_delta() {
        let agu = AguSpec::new(1, 0).unwrap();
        assert!(agu.is_free_delta(0));
        assert!(!agu.is_free_delta(1));
        assert!(!agu.is_free_delta(-1));
    }

    #[test]
    fn builder_and_presets() {
        let agu = AguSpec::tms320c2x_like();
        assert_eq!((agu.address_registers(), agu.modify_range()), (8, 1));
        assert_eq!(agu.modify_registers(), 0);
        assert_eq!(AguSpec::dsp56k_like().modify_registers(), 4);
        assert_eq!(AguSpec::adsp210x_like().address_registers(), 4);
        let agu = AguSpec::new(2, 1).unwrap().with_modify_registers(3);
        assert_eq!(agu.modify_registers(), 3);
    }

    #[test]
    fn with_address_registers_replaces_k_only() {
        let agu = AguSpec::dsp56k_like().with_address_registers(2).unwrap();
        assert_eq!(agu.address_registers(), 2);
        assert_eq!(agu.modify_registers(), 4);
        assert!(AguSpec::default().with_address_registers(0).is_err());
    }

    #[test]
    fn display_is_compact() {
        let agu = AguSpec::new(4, 1).unwrap().with_modify_registers(2);
        assert_eq!(agu.to_string(), "AGU(K=4, M=1, MR=2)");
    }

    #[test]
    fn default_is_documented_shape() {
        let agu = AguSpec::default();
        assert_eq!(agu.address_registers(), 4);
        assert_eq!(agu.modify_range(), 1);
    }

    #[test]
    fn large_delta_does_not_overflow() {
        let agu = AguSpec::new(1, u32::MAX).unwrap();
        assert!(agu.is_free_delta(i64::from(u32::MAX)));
        assert!(agu.is_free_delta(-i64::from(u32::MAX)));
        assert!(!agu.is_free_delta(i64::from(u32::MAX) + 1));
        assert!(!agu.is_free_delta(i64::MAX));
        // i64::MIN.unsigned_abs() must not panic:
        let agu = AguSpec::new(1, 0).unwrap();
        assert!(!agu.is_free_delta(i64::MIN));
    }
}
