//! Address-generation-unit (AGU) machine model and declarative machine
//! descriptions.
//!
//! The paper's machine model (Section 2): the AGU owns `K` address
//! registers; a post-increment/decrement by `d` with `|d| <= M` executes in
//! parallel with the data path (zero cost), while any larger update costs
//! one extra instruction (unit cost). Many real DSPs additionally provide
//! *modify registers* whose content can be added to an address register for
//! free — the optional `modify_registers` field models those (used by the
//! E7 extension experiment; see their ref \[2\], Araujo et al., ISSS 1996).
//!
//! Beyond the paper machine, this module generalizes the model along two
//! axes so that new backends are **data, not code**:
//!
//! * the free auto-modify window is an arbitrary [`UpdateRange`]
//!   `[min, max]` containing zero (a MAC-style post-increment-only AGU is
//!   `[0, 1]`; a pure stream machine with no immediate auto-modify is
//!   `[0, 0]`), and
//! * explicit address instructions carry per-opcode costs in a
//!   [`CostTable`] (`LDA`/`LDM`/`ADDA`), unit by default.
//!
//! A [`MachineDescription`] names a validated [`AguSpec`] and can be
//! parsed from a small TOML-like text format or looked up from the
//! built-in registry ([`MachineDescription::builtin`]).

use std::fmt;

/// Hard cap on register-class sizes accepted by machine descriptions.
///
/// Shared by the description parser and the serve protocol so a hostile
/// description cannot make the server allocate per-register state without
/// bound.
pub const MAX_MACHINE_REGISTERS: usize = 4096;

/// Hard cap on per-instruction costs accepted by machine descriptions.
pub const MAX_INSTRUCTION_COST: u32 = 4096;

/// Errors produced when constructing an [`AguSpec`] or [`UpdateRange`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpecError {
    /// At least one address register is required.
    NoAddressRegisters,
    /// An update range must satisfy `min <= 0 <= max` so that "stay put"
    /// is always a legal free update.
    UpdateRangeExcludesZero,
    /// Explicit address instructions must cost at least one cycle.
    ZeroCost,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::NoAddressRegisters => {
                f.write_str("an AGU needs at least one address register")
            }
            SpecError::UpdateRangeExcludesZero => {
                f.write_str("an update range must contain zero (min <= 0 <= max)")
            }
            SpecError::ZeroCost => {
                f.write_str("explicit address instructions must cost at least one cycle")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// The window of immediate post-modify deltas that are free on a machine.
///
/// The paper's machine uses the symmetric window `[-M, M]`; real AGUs can
/// be asymmetric — a MAC-style post-increment unit frees only `[0, 1]`, a
/// stream machine with no immediate auto-modify only `[0, 0]`. The range
/// always contains zero ("no update" is free on every machine).
///
/// # Examples
///
/// ```
/// use raco_ir::UpdateRange;
///
/// let sym = UpdateRange::symmetric(1);
/// assert!(sym.contains(-1) && sym.contains(1) && !sym.contains(2));
/// assert!(sym.is_symmetric());
///
/// let mac = UpdateRange::new(0, 1).unwrap();
/// assert!(mac.contains(1) && !mac.contains(-1));
/// assert!(!mac.is_symmetric());
/// assert_eq!(mac.symmetric_radius(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UpdateRange {
    min: i64,
    max: i64,
}

impl UpdateRange {
    /// Builds the window `[min, max]`.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::UpdateRangeExcludesZero`] unless
    /// `min <= 0 <= max`.
    pub fn new(min: i64, max: i64) -> Result<Self, SpecError> {
        if min > 0 || max < 0 {
            return Err(SpecError::UpdateRangeExcludesZero);
        }
        Ok(UpdateRange { min, max })
    }

    /// The paper's symmetric window `[-m, m]`.
    pub fn symmetric(m: u32) -> Self {
        UpdateRange {
            min: -i64::from(m),
            max: i64::from(m),
        }
    }

    /// Lower bound (inclusive, `<= 0`).
    pub fn min(&self) -> i64 {
        self.min
    }

    /// Upper bound (inclusive, `>= 0`).
    pub fn max(&self) -> i64 {
        self.max
    }

    /// `true` iff a post-modify by `delta` falls inside the free window.
    pub fn contains(&self, delta: i64) -> bool {
        self.min <= delta && delta <= self.max
    }

    /// `true` iff the window is of the paper's `[-M, M]` shape.
    ///
    /// Symmetry is what makes mirror-image patterns cost-equivalent; the
    /// cost-curve cache only shares mirror classes on symmetric machines.
    pub fn is_symmetric(&self) -> bool {
        self.min.checked_neg() == Some(self.max)
    }

    /// The largest `M` with `[-M, M]` inside the window — a sound
    /// symmetric summary (`[0, 1]` summarizes to `0`). Saturates at
    /// `u32::MAX`.
    pub fn symmetric_radius(&self) -> u32 {
        let radius = self.min.unsigned_abs().min(self.max.unsigned_abs());
        u32::try_from(radius).unwrap_or(u32::MAX)
    }
}

impl fmt::Display for UpdateRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_symmetric() {
            write!(f, "{}", self.max)
        } else {
            write!(f, "[{}..{}]", self.min, self.max)
        }
    }
}

/// Per-opcode cycle costs of the explicit address instructions.
///
/// `USE` (the access itself) is always zero-cost — it rides on the
/// data-path instruction; only the explicit instructions are priced.
/// The paper machine charges one cycle each ([`CostTable::UNIT`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostTable {
    lda: u32,
    ldm: u32,
    adda: u32,
}

impl CostTable {
    /// The paper's uniform unit-cost table.
    pub const UNIT: CostTable = CostTable {
        lda: 1,
        ldm: 1,
        adda: 1,
    };

    /// Builds a cost table.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::ZeroCost`] if any cost is zero — a zero-cost
    /// explicit instruction would make the allocator's objective
    /// degenerate.
    pub fn new(lda: u32, ldm: u32, adda: u32) -> Result<Self, SpecError> {
        if lda == 0 || ldm == 0 || adda == 0 {
            return Err(SpecError::ZeroCost);
        }
        Ok(CostTable { lda, ldm, adda })
    }

    /// Cycles of an `LDA` (address-register load).
    pub fn lda(&self) -> u32 {
        self.lda
    }

    /// Cycles of an `LDM` (modify-register load).
    pub fn ldm(&self) -> u32 {
        self.ldm
    }

    /// Cycles of an explicit `ADDA` update — the unit the allocator
    /// minimizes, scaled.
    pub fn adda(&self) -> u32 {
        self.adda
    }

    /// `true` for the paper's all-ones table.
    pub fn is_unit(&self) -> bool {
        *self == CostTable::UNIT
    }
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable::UNIT
    }
}

/// Description of an address-generation unit.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use raco_ir::{AguSpec, UpdateRange};
///
/// // Four address registers, free auto-modify within |d| <= 1:
/// let agu = AguSpec::new(4, 1)?;
/// assert!(agu.is_free_delta(-1));
/// assert!(!agu.is_free_delta(2));
///
/// // Extended machine with two modify registers:
/// let agu = AguSpec::new(4, 1)?.with_modify_registers(2);
/// assert_eq!(agu.modify_registers(), 2);
///
/// // A MAC-style post-increment machine frees only [0, 1]:
/// let mac = AguSpec::new(8, 1)?.with_update_range(UpdateRange::new(0, 1)?);
/// assert!(mac.is_free_delta(1) && !mac.is_free_delta(-1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AguSpec {
    address_registers: usize,
    update_range: UpdateRange,
    modify_registers: usize,
    costs: CostTable,
}

impl AguSpec {
    /// Creates an AGU with `address_registers` address registers (the
    /// paper's `K`) and symmetric auto-modify range `modify_range` (the
    /// paper's `M`), unit costs.
    ///
    /// A `modify_range` of zero is allowed and means only re-using the same
    /// address is free — useful as a degenerate case in tests.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NoAddressRegisters`] if
    /// `address_registers == 0`.
    pub fn new(address_registers: usize, modify_range: u32) -> Result<Self, SpecError> {
        if address_registers == 0 {
            return Err(SpecError::NoAddressRegisters);
        }
        Ok(AguSpec {
            address_registers,
            update_range: UpdateRange::symmetric(modify_range),
            modify_registers: 0,
            costs: CostTable::UNIT,
        })
    }

    /// Adds `count` modify registers to the machine (builder style).
    ///
    /// A modify register holds an arbitrary signed constant; adding its
    /// content to an address register is as free as an in-range
    /// auto-modify. Allocation of values to modify registers is performed
    /// by `raco-agu`.
    #[must_use]
    pub fn with_modify_registers(mut self, count: usize) -> Self {
        self.modify_registers = count;
        self
    }

    /// Replaces the free auto-modify window (builder style).
    #[must_use]
    pub fn with_update_range(mut self, range: UpdateRange) -> Self {
        self.update_range = range;
        self
    }

    /// Replaces the instruction cost table (builder style).
    #[must_use]
    pub fn with_cost_table(mut self, costs: CostTable) -> Self {
        self.costs = costs;
        self
    }

    /// Number of address registers `K`.
    pub fn address_registers(&self) -> usize {
        self.address_registers
    }

    /// Symmetric auto-modify summary `M`: the largest `M` with `[-M, M]`
    /// inside the machine's update range. Equal to the full story on
    /// paper-shaped machines; use [`AguSpec::update_range`] for the exact
    /// window.
    pub fn modify_range(&self) -> u32 {
        self.update_range.symmetric_radius()
    }

    /// The exact free auto-modify window.
    pub fn update_range(&self) -> UpdateRange {
        self.update_range
    }

    /// The per-opcode instruction cost table.
    pub fn cost_table(&self) -> CostTable {
        self.costs
    }

    /// Number of modify registers (zero on the plain paper machine).
    pub fn modify_registers(&self) -> usize {
        self.modify_registers
    }

    /// `true` if a post-update by `delta` is free via auto-modify
    /// (ignoring modify registers, whose contents are allocation-dependent).
    pub fn is_free_delta(&self, delta: i64) -> bool {
        self.update_range.contains(delta)
    }

    /// A machine in the spirit of the TI TMS320C2x family: eight address
    /// (auxiliary) registers, auto-increment/decrement by one.
    pub fn tms320c2x_like() -> Self {
        AguSpec {
            address_registers: 8,
            update_range: UpdateRange::symmetric(1),
            modify_registers: 0,
            costs: CostTable::UNIT,
        }
    }

    /// A machine in the spirit of the Motorola DSP56002: eight address
    /// registers, auto-modify by one, with offset (modify) registers.
    pub fn dsp56k_like() -> Self {
        AguSpec {
            address_registers: 8,
            update_range: UpdateRange::symmetric(1),
            modify_registers: 4,
            costs: CostTable::UNIT,
        }
    }

    /// A machine in the spirit of the Analog Devices ADSP-210x: four
    /// address registers per DAG with four modify registers.
    pub fn adsp210x_like() -> Self {
        AguSpec {
            address_registers: 4,
            update_range: UpdateRange::symmetric(1),
            modify_registers: 4,
            costs: CostTable::UNIT,
        }
    }

    /// A BWDSP-style clustered-VLIW AGU: MAC post-modify addressing frees
    /// only post-*increments* (`[0, 1]`), two modify registers pick up
    /// repeated strides, and a pointer load takes two cycles.
    pub fn bwdsp_like() -> Self {
        AguSpec {
            address_registers: 8,
            update_range: UpdateRange { min: 0, max: 1 },
            modify_registers: 2,
            costs: CostTable {
                lda: 2,
                ldm: 1,
                adda: 1,
            },
        }
    }

    /// A SARIS-style stream-register machine: no immediate auto-modify at
    /// all (`[0, 0]`) — every advance goes through one of eight stream
    /// registers, which generalize modify registers; configuring a stream
    /// register takes two cycles.
    pub fn saris_like() -> Self {
        AguSpec {
            address_registers: 8,
            update_range: UpdateRange { min: 0, max: 0 },
            modify_registers: 8,
            costs: CostTable {
                lda: 1,
                ldm: 2,
                adda: 1,
            },
        }
    }

    /// Returns a copy with a different register count, keeping the other
    /// parameters — convenient for register-constraint sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::NoAddressRegisters`] if `k == 0`.
    pub fn with_address_registers(&self, k: usize) -> Result<Self, SpecError> {
        if k == 0 {
            return Err(SpecError::NoAddressRegisters);
        }
        let mut copy = *self;
        copy.address_registers = k;
        Ok(copy)
    }
}

impl Default for AguSpec {
    /// The default machine matches the paper's running example:
    /// `K = 1` register constraint is *not* assumed; we default to a small
    /// generic AGU with `K = 4`, `M = 1`.
    fn default() -> Self {
        AguSpec {
            address_registers: 4,
            update_range: UpdateRange::symmetric(1),
            modify_registers: 0,
            costs: CostTable::UNIT,
        }
    }
}

impl fmt::Display for AguSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AGU(K={}, M={}, MR={})",
            self.address_registers, self.update_range, self.modify_registers
        )?;
        if !self.costs.is_unit() {
            write!(
                f,
                " costs(lda={}, ldm={}, adda={})",
                self.costs.lda, self.costs.ldm, self.costs.adda
            )?;
        }
        Ok(())
    }
}

/// Error from [`MachineDescription::parse`], positioned at the offending
/// line (1-based; line 0 for whole-description errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineParseError {
    /// 1-based source line of the error (0 when the error is not tied to
    /// one line, e.g. a missing required field).
    pub line: usize,
    /// Human-readable description of what is wrong.
    pub message: String,
}

impl MachineParseError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        MachineParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for MachineParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "machine description: {}", self.message)
        } else {
            write!(
                f,
                "machine description line {}: {}",
                self.line, self.message
            )
        }
    }
}

impl std::error::Error for MachineParseError {}

/// A named, validated machine: the unit of the `--machine` CLI flag, the
/// serve protocol's `machine` knob, and the built-in registry.
///
/// Descriptions are *data*: the text format below fully determines the
/// machine, and every built-in is expressible in it.
///
/// ```text
/// name = "bwdsp"
/// address_registers = 8
/// update_min = 0
/// update_max = 1
/// modify_registers = 2
/// lda_cost = 2
/// ```
///
/// # Examples
///
/// ```
/// use raco_ir::MachineDescription;
///
/// let m = MachineDescription::builtin("saris").unwrap();
/// assert_eq!(m.spec().modify_registers(), 8);
///
/// let custom = MachineDescription::parse(
///     "name = mac4\naddress_registers = 4\nupdate_min = 0\nupdate_max = 1\n",
/// )
/// .unwrap();
/// assert!(!custom.spec().update_range().is_symmetric());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineDescription {
    name: String,
    spec: AguSpec,
}

impl MachineDescription {
    /// Wraps a spec under a name.
    pub fn new(name: impl Into<String>, spec: AguSpec) -> Self {
        MachineDescription {
            name: name.into(),
            spec,
        }
    }

    /// The machine's name (registry key or `name =` field).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying AGU spec — the view the whole pipeline consumes.
    pub fn spec(&self) -> &AguSpec {
        &self.spec
    }

    /// Canonical names of the built-in machines, in presentation order.
    pub fn builtin_names() -> &'static [&'static str] {
        &["paper", "tms320c2x", "dsp56k", "adsp210x", "bwdsp", "saris"]
    }

    /// Looks up a built-in machine by name (aliases: `ti` for
    /// `tms320c2x`, `motorola` for `dsp56k`, `adsp` for `adsp210x`).
    pub fn builtin(name: &str) -> Option<Self> {
        let (canonical, spec) = match name {
            "paper" => ("paper", AguSpec::default()),
            "tms320c2x" | "ti" => ("tms320c2x", AguSpec::tms320c2x_like()),
            "dsp56k" | "motorola" => ("dsp56k", AguSpec::dsp56k_like()),
            "adsp210x" | "adsp" => ("adsp210x", AguSpec::adsp210x_like()),
            "bwdsp" => ("bwdsp", AguSpec::bwdsp_like()),
            "saris" => ("saris", AguSpec::saris_like()),
            _ => return None,
        };
        Some(MachineDescription::new(canonical, spec))
    }

    /// Resolves a machine argument the way front ends (CLI flag, serve
    /// knob) accept it: a built-in name (or alias), or — when the text
    /// contains `=` — an inline [`parse`](Self::parse)-format
    /// description.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineParseError`]: positioned for a malformed
    /// inline description, or listing the built-in names when the
    /// argument is neither a known machine nor description text.
    pub fn resolve(arg: &str) -> Result<Self, MachineParseError> {
        if let Some(builtin) = Self::builtin(arg.trim()) {
            return Ok(builtin);
        }
        if arg.contains('=') {
            return Self::parse(arg);
        }
        Err(MachineParseError::at(
            0,
            format!(
                "unknown machine `{}` (built-ins: {}; or pass a `key = value` description)",
                arg.trim(),
                Self::builtin_names().join(", ")
            ),
        ))
    }

    /// Parses the TOML-like description format: one `key = value` per
    /// line, `#` comments, blank lines ignored.
    ///
    /// Keys: `name` (optional, quoted or bare), `address_registers`
    /// (required, `1..=4096`), either `update_range = M` (symmetric) or
    /// `update_min`/`update_max` (default `[-1, 1]`), `modify_registers`
    /// (default 0), `lda_cost`/`ldm_cost`/`adda_cost` (default 1,
    /// `1..=4096`).
    ///
    /// # Errors
    ///
    /// Returns a [`MachineParseError`] positioned at the offending line
    /// for syntax errors, unknown keys, duplicate keys, out-of-range
    /// values, zero-size register classes, and update ranges that exclude
    /// zero.
    pub fn parse(text: &str) -> Result<Self, MachineParseError> {
        let mut name: Option<String> = None;
        let mut registers: Option<(usize, usize)> = None; // (value, line)
        let mut sym_range: Option<(u32, usize)> = None;
        let mut update_min: Option<(i64, usize)> = None;
        let mut update_max: Option<(i64, usize)> = None;
        let mut modify_registers: Option<(usize, usize)> = None;
        let mut lda_cost: Option<(u32, usize)> = None;
        let mut ldm_cost: Option<(u32, usize)> = None;
        let mut adda_cost: Option<(u32, usize)> = None;

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(MachineParseError::at(
                    lineno,
                    format!("expected `key = value`, got {line:?}"),
                ));
            };
            let key = key.trim();
            let value = value.trim();
            if value.is_empty() {
                return Err(MachineParseError::at(
                    lineno,
                    format!("empty value for `{key}`"),
                ));
            }
            match key {
                "name" => {
                    if name.is_some() {
                        return Err(MachineParseError::at(lineno, "duplicate key `name`"));
                    }
                    let v = value.trim_matches('"');
                    if v.is_empty() {
                        return Err(MachineParseError::at(lineno, "machine name is empty"));
                    }
                    name = Some(v.to_string());
                }
                "address_registers" => {
                    set_field(
                        &mut registers,
                        parse_usize(key, value, lineno)?,
                        key,
                        lineno,
                    )?;
                }
                "update_range" => {
                    set_field(&mut sym_range, parse_u32(key, value, lineno)?, key, lineno)?;
                }
                "update_min" => {
                    set_field(&mut update_min, parse_i64(key, value, lineno)?, key, lineno)?;
                }
                "update_max" => {
                    set_field(&mut update_max, parse_i64(key, value, lineno)?, key, lineno)?;
                }
                "modify_registers" => {
                    set_field(
                        &mut modify_registers,
                        parse_usize(key, value, lineno)?,
                        key,
                        lineno,
                    )?;
                }
                "lda_cost" => {
                    set_field(&mut lda_cost, parse_u32(key, value, lineno)?, key, lineno)?;
                }
                "ldm_cost" => {
                    set_field(&mut ldm_cost, parse_u32(key, value, lineno)?, key, lineno)?;
                }
                "adda_cost" => {
                    set_field(&mut adda_cost, parse_u32(key, value, lineno)?, key, lineno)?;
                }
                _ => {
                    return Err(MachineParseError::at(
                        lineno,
                        format!("unknown key `{key}`"),
                    ));
                }
            }
        }

        if let Some((_, sym_line)) = sym_range {
            if let Some((_, line)) = update_min.or(update_max) {
                return Err(MachineParseError::at(
                    line.max(sym_line),
                    "`update_range` conflicts with `update_min`/`update_max`",
                ));
            }
        }

        let Some((k, k_line)) = registers else {
            return Err(MachineParseError::at(
                0,
                "missing required key `address_registers`",
            ));
        };
        if k == 0 {
            return Err(MachineParseError::at(
                k_line,
                "register class has zero size (`address_registers = 0`)",
            ));
        }
        if k > MAX_MACHINE_REGISTERS {
            return Err(MachineParseError::at(
                k_line,
                format!("address_registers = {k} exceeds the cap of {MAX_MACHINE_REGISTERS}"),
            ));
        }

        let range = if let Some((m, _)) = sym_range {
            UpdateRange::symmetric(m)
        } else {
            let (min, min_line) = update_min.unwrap_or((-1, 0));
            let (max, max_line) = update_max.unwrap_or((1, 0));
            UpdateRange::new(min, max)
                .map_err(|e| MachineParseError::at(min_line.max(max_line), e.to_string()))?
        };

        let (mr, mr_line) = modify_registers.unwrap_or((0, 0));
        if mr > MAX_MACHINE_REGISTERS {
            return Err(MachineParseError::at(
                mr_line,
                format!("modify_registers = {mr} exceeds the cap of {MAX_MACHINE_REGISTERS}"),
            ));
        }

        let costs = [
            lda_cost.unwrap_or((1, 0)),
            ldm_cost.unwrap_or((1, 0)),
            adda_cost.unwrap_or((1, 0)),
        ];
        for (value, line) in costs {
            if value == 0 {
                return Err(MachineParseError::at(line, SpecError::ZeroCost.to_string()));
            }
            if value > MAX_INSTRUCTION_COST {
                return Err(MachineParseError::at(
                    line,
                    format!("cost {value} exceeds the cap of {MAX_INSTRUCTION_COST}"),
                ));
            }
        }
        let table = CostTable {
            lda: costs[0].0,
            ldm: costs[1].0,
            adda: costs[2].0,
        };

        let spec = AguSpec {
            address_registers: k,
            update_range: range,
            modify_registers: mr,
            costs: table,
        };
        Ok(MachineDescription::new(
            name.unwrap_or_else(|| "custom".to_string()),
            spec,
        ))
    }

    /// Renders the description back into its parseable text form.
    pub fn to_text(&self) -> String {
        let s = &self.spec;
        let mut out = format!(
            "name = \"{}\"\naddress_registers = {}\n",
            self.name, s.address_registers
        );
        let r = s.update_range;
        if r.is_symmetric() {
            out.push_str(&format!("update_range = {}\n", r.max));
        } else {
            out.push_str(&format!("update_min = {}\nupdate_max = {}\n", r.min, r.max));
        }
        out.push_str(&format!("modify_registers = {}\n", s.modify_registers));
        if !s.costs.is_unit() {
            out.push_str(&format!(
                "lda_cost = {}\nldm_cost = {}\nadda_cost = {}\n",
                s.costs.lda, s.costs.ldm, s.costs.adda
            ));
        }
        out
    }
}

impl fmt::Display for MachineDescription {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.spec)
    }
}

fn set_field<T>(
    slot: &mut Option<(T, usize)>,
    value: (T, usize),
    key: &str,
    line: usize,
) -> Result<(), MachineParseError> {
    if slot.is_some() {
        return Err(MachineParseError::at(
            line,
            format!("duplicate key `{key}`"),
        ));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_usize(key: &str, value: &str, line: usize) -> Result<(usize, usize), MachineParseError> {
    value.parse::<usize>().map(|v| (v, line)).map_err(|_| {
        MachineParseError::at(
            line,
            format!("`{key}` expects a non-negative integer, got {value:?}"),
        )
    })
}

fn parse_u32(key: &str, value: &str, line: usize) -> Result<(u32, usize), MachineParseError> {
    value.parse::<u32>().map(|v| (v, line)).map_err(|_| {
        MachineParseError::at(
            line,
            format!("`{key}` expects a non-negative integer, got {value:?}"),
        )
    })
}

fn parse_i64(key: &str, value: &str, line: usize) -> Result<(i64, usize), MachineParseError> {
    value.parse::<i64>().map(|v| (v, line)).map_err(|_| {
        MachineParseError::at(line, format!("`{key}` expects an integer, got {value:?}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_registers() {
        assert_eq!(
            AguSpec::new(0, 1).unwrap_err(),
            SpecError::NoAddressRegisters
        );
        assert!(AguSpec::new(1, 0).is_ok());
    }

    #[test]
    fn free_delta_respects_range_symmetrically() {
        let agu = AguSpec::new(2, 3).unwrap();
        for d in -3..=3 {
            assert!(agu.is_free_delta(d), "delta {d} should be free");
        }
        assert!(!agu.is_free_delta(4));
        assert!(!agu.is_free_delta(-4));
    }

    #[test]
    fn zero_range_only_frees_zero_delta() {
        let agu = AguSpec::new(1, 0).unwrap();
        assert!(agu.is_free_delta(0));
        assert!(!agu.is_free_delta(1));
        assert!(!agu.is_free_delta(-1));
    }

    #[test]
    fn builder_and_presets() {
        let agu = AguSpec::tms320c2x_like();
        assert_eq!((agu.address_registers(), agu.modify_range()), (8, 1));
        assert_eq!(agu.modify_registers(), 0);
        assert_eq!(AguSpec::dsp56k_like().modify_registers(), 4);
        assert_eq!(AguSpec::adsp210x_like().address_registers(), 4);
        let agu = AguSpec::new(2, 1).unwrap().with_modify_registers(3);
        assert_eq!(agu.modify_registers(), 3);
    }

    #[test]
    fn with_address_registers_replaces_k_only() {
        let agu = AguSpec::dsp56k_like().with_address_registers(2).unwrap();
        assert_eq!(agu.address_registers(), 2);
        assert_eq!(agu.modify_registers(), 4);
        assert!(AguSpec::default().with_address_registers(0).is_err());
    }

    #[test]
    fn display_is_compact() {
        let agu = AguSpec::new(4, 1).unwrap().with_modify_registers(2);
        assert_eq!(agu.to_string(), "AGU(K=4, M=1, MR=2)");
    }

    #[test]
    fn display_extends_for_asymmetric_ranges_and_costs() {
        let agu = AguSpec::bwdsp_like();
        assert_eq!(
            agu.to_string(),
            "AGU(K=8, M=[0..1], MR=2) costs(lda=2, ldm=1, adda=1)"
        );
        let agu = AguSpec::saris_like();
        assert_eq!(
            agu.to_string(),
            "AGU(K=8, M=0, MR=8) costs(lda=1, ldm=2, adda=1)"
        );
    }

    #[test]
    fn default_is_documented_shape() {
        let agu = AguSpec::default();
        assert_eq!(agu.address_registers(), 4);
        assert_eq!(agu.modify_range(), 1);
        assert!(agu.update_range().is_symmetric());
        assert!(agu.cost_table().is_unit());
    }

    #[test]
    fn large_delta_does_not_overflow() {
        let agu = AguSpec::new(1, u32::MAX).unwrap();
        assert!(agu.is_free_delta(i64::from(u32::MAX)));
        assert!(agu.is_free_delta(-i64::from(u32::MAX)));
        assert!(!agu.is_free_delta(i64::from(u32::MAX) + 1));
        assert!(!agu.is_free_delta(i64::MAX));
        // i64::MIN.unsigned_abs() must not panic:
        let agu = AguSpec::new(1, 0).unwrap();
        assert!(!agu.is_free_delta(i64::MIN));
    }

    #[test]
    fn update_range_shape_queries() {
        let r = UpdateRange::symmetric(2);
        assert_eq!((r.min(), r.max()), (-2, 2));
        assert!(r.is_symmetric());
        assert_eq!(r.symmetric_radius(), 2);

        let mac = UpdateRange::new(0, 1).unwrap();
        assert!(!mac.is_symmetric());
        assert_eq!(mac.symmetric_radius(), 0);
        assert!(mac.contains(0) && mac.contains(1));
        assert!(!mac.contains(-1) && !mac.contains(2));

        assert_eq!(
            UpdateRange::new(1, 2).unwrap_err(),
            SpecError::UpdateRangeExcludesZero
        );
        assert_eq!(
            UpdateRange::new(-2, -1).unwrap_err(),
            SpecError::UpdateRangeExcludesZero
        );

        // Extreme bounds must not panic symmetry / radius queries.
        let wide = UpdateRange::new(i64::MIN, i64::MAX).unwrap();
        assert!(!wide.is_symmetric());
        assert_eq!(wide.symmetric_radius(), u32::MAX);
    }

    #[test]
    fn cost_table_rejects_zero_costs() {
        assert_eq!(CostTable::new(0, 1, 1).unwrap_err(), SpecError::ZeroCost);
        assert_eq!(CostTable::new(1, 0, 1).unwrap_err(), SpecError::ZeroCost);
        assert_eq!(CostTable::new(1, 1, 0).unwrap_err(), SpecError::ZeroCost);
        let t = CostTable::new(2, 3, 4).unwrap();
        assert_eq!((t.lda(), t.ldm(), t.adda()), (2, 3, 4));
        assert!(!t.is_unit());
        assert!(CostTable::default().is_unit());
    }

    #[test]
    fn builtin_registry_resolves_names_and_aliases() {
        for name in MachineDescription::builtin_names() {
            let m = MachineDescription::builtin(name).expect(name);
            assert_eq!(m.name(), *name);
        }
        assert_eq!(
            MachineDescription::builtin("ti").unwrap().spec(),
            &AguSpec::tms320c2x_like()
        );
        assert_eq!(
            MachineDescription::builtin("motorola").unwrap().name(),
            "dsp56k"
        );
        assert_eq!(
            MachineDescription::builtin("adsp").unwrap().spec(),
            &AguSpec::adsp210x_like()
        );
        assert!(MachineDescription::builtin("vax").is_none());
        assert_eq!(
            MachineDescription::builtin("paper").unwrap().spec(),
            &AguSpec::default()
        );
    }

    #[test]
    fn new_backends_have_the_documented_shapes() {
        let bwdsp = AguSpec::bwdsp_like();
        assert_eq!(bwdsp.address_registers(), 8);
        assert_eq!(bwdsp.update_range(), UpdateRange::new(0, 1).unwrap());
        assert_eq!(bwdsp.modify_registers(), 2);
        assert_eq!(bwdsp.cost_table().lda(), 2);
        assert_eq!(bwdsp.modify_range(), 0, "asymmetric [0,1] summarizes to 0");

        let saris = AguSpec::saris_like();
        assert_eq!(saris.address_registers(), 8);
        assert_eq!(saris.update_range(), UpdateRange::new(0, 0).unwrap());
        assert_eq!(saris.modify_registers(), 8);
        assert_eq!(saris.cost_table().ldm(), 2);
        assert!(saris.update_range().is_symmetric(), "[0,0] is symmetric");
    }

    #[test]
    fn parse_round_trips_every_builtin() {
        for name in MachineDescription::builtin_names() {
            let m = MachineDescription::builtin(name).unwrap();
            let parsed = MachineDescription::parse(&m.to_text()).expect(name);
            assert_eq!(&parsed, &m, "round-trip of {name}");
        }
    }

    #[test]
    fn parse_accepts_comments_and_defaults() {
        let m = MachineDescription::parse(
            "# a minimal machine\naddress_registers = 3  # trailing comment\n\n",
        )
        .unwrap();
        assert_eq!(m.name(), "custom");
        assert_eq!(m.spec().address_registers(), 3);
        assert_eq!(m.spec().update_range(), UpdateRange::symmetric(1));
        assert_eq!(m.spec().modify_registers(), 0);
        assert!(m.spec().cost_table().is_unit());
    }

    #[test]
    fn parse_rejects_malformed_descriptions_with_positions() {
        let cases: &[(&str, usize, &str)] = &[
            ("address_registers = 0\n", 1, "zero size"),
            (
                "address_registers = 8\nupdate_min = 1\nupdate_max = 2\n",
                3,
                "contain zero",
            ),
            ("address_registers = 8\nbogus_key = 1\n", 2, "unknown key"),
            (
                "address_registers = 8\naddress_registers = 4\n",
                2,
                "duplicate key",
            ),
            ("update_range = 1\n", 0, "address_registers"),
            (
                "address_registers = 8\nadda_cost = 0\n",
                2,
                "at least one cycle",
            ),
            ("address_registers = 9999999\n", 1, "exceeds the cap"),
            (
                "address_registers = 8\nlda_cost = 70000\n",
                2,
                "exceeds the cap",
            ),
            ("address_registers eight\n", 1, "key = value"),
            ("address_registers = \n", 1, "empty value"),
            (
                "address_registers = 8\nupdate_range = 1\nupdate_min = 0\n",
                3,
                "conflicts",
            ),
            ("address_registers = x\n", 1, "non-negative integer"),
            ("address_registers = 8\nupdate_min = 1e3\n", 2, "integer"),
            ("address_registers = 8\nname = \"\"\n", 2, "empty"),
        ];
        for (text, line, needle) in cases {
            let err = MachineDescription::parse(text).expect_err(text);
            assert_eq!(err.line, *line, "line for {text:?}: {err}");
            assert!(
                err.to_string().contains(needle),
                "{text:?} → {err} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn parse_reads_quoted_and_bare_names() {
        let m = MachineDescription::parse("name = \"my dsp\"\naddress_registers = 2\n").unwrap();
        assert_eq!(m.name(), "my dsp");
        let m = MachineDescription::parse("name = mydsp\naddress_registers = 2\n").unwrap();
        assert_eq!(m.name(), "mydsp");
    }

    #[test]
    fn to_text_is_parseable_and_stable() {
        let m = MachineDescription::builtin("bwdsp").unwrap();
        let text = m.to_text();
        assert!(text.contains("update_min = 0"));
        assert!(text.contains("lda_cost = 2"));
        let again = MachineDescription::parse(&text).unwrap();
        assert_eq!(again.to_text(), text);
    }
}
