//! Reference address traces.
//!
//! A trace is the ground truth of what addresses a loop touches, iteration
//! by iteration, under a concrete [`MemoryLayout`]. The AGU simulator in
//! `raco-agu` executes generated address code and checks it against a
//! trace; mismatches indicate a codegen or allocation bug.

use std::fmt;

use crate::model::{AccessKind, ArrayId, LoopSpec};

/// Assigns base addresses to the arrays of a loop.
///
/// Addresses are abstract word addresses (element size is one word, the
/// common case on fixed-point DSPs); they may be negative during analysis,
/// which is harmless because only address *differences* matter to the cost
/// model.
///
/// # Examples
///
/// ```
/// use raco_ir::{dsl, MemoryLayout};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = dsl::parse_loop("for (i = 0; i < 8; i++) { y[i] = x[i+1]; }")?;
/// let layout = MemoryLayout::contiguous(&spec, 0x100, 64);
/// // `x` is registered first: right-hand-side reads lower before writes.
/// let x = spec.array_id("x").unwrap();
/// let y = spec.array_id("y").unwrap();
/// assert_eq!(layout.base(x), Some(0x100));
/// assert_eq!(layout.base(y), Some(0x100 + 64));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLayout {
    bases: Vec<i64>,
}

impl MemoryLayout {
    /// Lays the loop's arrays out contiguously starting at `origin`, each
    /// `array_words` words long, in [`ArrayId`] order.
    pub fn contiguous(spec: &LoopSpec, origin: i64, array_words: i64) -> Self {
        let bases = (0..spec.arrays().len() as i64)
            .map(|i| origin + i * array_words)
            .collect();
        MemoryLayout { bases }
    }

    /// Builds a layout from explicit per-array base addresses (indexed by
    /// [`ArrayId::index`]).
    pub fn from_bases(bases: Vec<i64>) -> Self {
        MemoryLayout { bases }
    }

    /// Base address of `array`, or `None` if the layout does not cover it.
    pub fn base(&self, array: ArrayId) -> Option<i64> {
        self.bases.get(array.index()).copied()
    }

    /// Number of arrays covered.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// `true` if no array has a base address.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }
}

/// One executed access in a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Iteration number, starting at zero.
    pub iteration: u64,
    /// Position of the access in the loop's per-iteration sequence.
    pub position: usize,
    /// Array accessed.
    pub array: ArrayId,
    /// Effective word address.
    pub address: i64,
    /// Read or write.
    pub kind: AccessKind,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "it {:>3} pos {:>2}: {} {} @ {:#06x}",
            self.iteration, self.position, self.kind, self.array, self.address
        )
    }
}

/// The sequence of addresses a loop touches over a number of iterations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    accesses_per_iteration: usize,
}

impl Trace {
    /// Records the reference trace of `spec` under `layout` for
    /// `iterations` iterations, beginning at the loop's
    /// [`start`](LoopSpec::start) value.
    ///
    /// The address of access `array[c*i + d]` in iteration `t` is
    /// `base(array) + c * (start + t * stride) + d`. For specs flattened
    /// from a loop nest ([`LoopSpec::nest`]), each array additionally
    /// accumulates its per-level carry every time an outer level advances
    /// — the trace is then exactly what direct interpretation of the nest
    /// would produce. Nested specs are finite, so `iterations` is clamped
    /// to the nest's total iteration count.
    ///
    /// # Panics
    ///
    /// Panics if the layout does not cover an accessed array.
    pub fn capture(spec: &LoopSpec, layout: &MemoryLayout, iterations: u64) -> Self {
        let (periods, iterations) = match spec.nest() {
            Some(nest) => (nest.periods(), iterations.min(nest.total_iterations())),
            None => (Vec::new(), iterations),
        };
        let mut entries = Vec::with_capacity(spec.len() * iterations as usize);
        for t in 0..iterations {
            let i = spec.start() + t as i64 * spec.stride();
            for (position, acc) in spec.accesses().iter().enumerate() {
                let info = spec
                    .array_info(acc.array)
                    .expect("validated spec has known arrays");
                let base = layout
                    .base(acc.array)
                    .expect("layout must cover every accessed array");
                // Accumulated outer-loop carry: level k has advanced
                // t / periods[k] times by flattened iteration t.
                let carry: i64 = info
                    .carries()
                    .iter()
                    .zip(&periods)
                    .map(|(&c, &p)| c * (t / p) as i64)
                    .sum();
                entries.push(TraceEntry {
                    iteration: t,
                    position,
                    array: acc.array,
                    address: base + info.coefficient() * i + acc.offset + carry,
                    kind: acc.kind,
                });
            }
        }
        Trace {
            entries,
            accesses_per_iteration: spec.len(),
        }
    }

    /// All entries, iteration-major then position order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of accesses per loop iteration.
    pub fn accesses_per_iteration(&self) -> usize {
        self.accesses_per_iteration
    }

    /// Number of captured iterations.
    pub fn iterations(&self) -> u64 {
        self.entries
            .len()
            .checked_div(self.accesses_per_iteration)
            .unwrap_or(0) as u64
    }

    /// The entry for `(iteration, position)`, if captured.
    pub fn entry(&self, iteration: u64, position: usize) -> Option<&TraceEntry> {
        if position >= self.accesses_per_iteration {
            return None;
        }
        self.entries
            .get(iteration as usize * self.accesses_per_iteration + position)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_loop;

    fn spec() -> LoopSpec {
        parse_loop("for (i = 2; i <= 100; i++) { y[i] = x[i+1] - x[i-1]; }").unwrap()
    }

    #[test]
    fn contiguous_layout_spaces_arrays() {
        let spec = spec();
        let layout = MemoryLayout::contiguous(&spec, 10, 100);
        let x = spec.array_id("x").unwrap();
        let y = spec.array_id("y").unwrap();
        assert_eq!(layout.base(x), Some(10));
        assert_eq!(layout.base(y), Some(110));
        assert_eq!(layout.len(), 2);
        assert!(!layout.is_empty());
        assert_eq!(layout.base(ArrayId::from_index(7)), None);
    }

    #[test]
    fn trace_addresses_follow_the_loop_variable() {
        let spec = spec();
        let layout = MemoryLayout::contiguous(&spec, 0, 1000);
        let trace = Trace::capture(&spec, &layout, 3);
        assert_eq!(trace.iterations(), 3);
        assert_eq!(trace.accesses_per_iteration(), 3);
        // iteration 0, i = 2: x[3], x[1], y[2] with x at 0, y at 1000
        let addrs: Vec<i64> = trace.entries().iter().take(3).map(|e| e.address).collect();
        assert_eq!(addrs, vec![3, 1, 1002]);
        // iteration 2, i = 4: x[5], x[3], y[4]
        let addrs: Vec<i64> = trace.entries().iter().skip(6).map(|e| e.address).collect();
        assert_eq!(addrs, vec![5, 3, 1004]);
    }

    #[test]
    fn entry_lookup_by_iteration_and_position() {
        let spec = spec();
        let layout = MemoryLayout::contiguous(&spec, 0, 1000);
        let trace = Trace::capture(&spec, &layout, 2);
        assert_eq!(trace.entry(1, 0).unwrap().address, 4); // i = 3, x[i+1]
        assert_eq!(trace.entry(1, 5), None);
        assert_eq!(trace.entry(9, 0), None);
    }

    #[test]
    fn negative_stride_and_coefficient() {
        let spec = parse_loop("for (i = 7; i > 0; i--) { s += h[7 - i]; }").unwrap();
        let layout = MemoryLayout::contiguous(&spec, 100, 8);
        let trace = Trace::capture(&spec, &layout, 3);
        // i = 7, 6, 5 → h[0], h[1], h[2]
        let addrs: Vec<i64> = trace.entries().iter().map(|e| e.address).collect();
        assert_eq!(addrs, vec![100, 101, 102]);
    }

    #[test]
    fn kinds_and_display_are_preserved() {
        let spec = spec();
        let layout = MemoryLayout::contiguous(&spec, 0, 1000);
        let trace = Trace::capture(&spec, &layout, 1);
        assert_eq!(trace.entries()[0].kind, AccessKind::Read);
        assert_eq!(trace.entries()[2].kind, AccessKind::Write);
        let line = trace.entries()[2].to_string();
        assert!(line.contains("write"), "display was `{line}`");
    }

    #[test]
    fn nested_specs_apply_outer_carries_at_row_boundaries() {
        use crate::model::{AccessKind, LoopNest, NestLevel};
        // Hand-built flattening of
        //   for (r = 0; r < 3; r++) for (j = 0; j < 4; j++) y[r][j] = …
        // with row stride 10: coefficient 1 in j, carry 10 - 4 = 6.
        let mut spec = LoopSpec::new("nested", "j", 1);
        let y = spec.add_array("y", 1);
        spec.push_access(y, 0, AccessKind::Write).unwrap();
        spec.set_nest(LoopNest::new(
            vec![NestLevel {
                var: "r".into(),
                start: 0,
                stride: 1,
                trips: 3,
            }],
            4,
        ));
        spec.set_array_carries(y, vec![6]).unwrap();
        let layout = MemoryLayout::from_bases(vec![100]);
        // Requesting more than 3*4 iterations clamps to the nest total.
        let trace = Trace::capture(&spec, &layout, 99);
        assert_eq!(trace.iterations(), 12);
        let addrs: Vec<i64> = trace.entries().iter().map(|e| e.address).collect();
        assert_eq!(
            addrs,
            vec![100, 101, 102, 103, 110, 111, 112, 113, 120, 121, 122, 123],
            "rows of four, then a jump of 10 to the next row"
        );
    }

    #[test]
    fn zero_iterations_is_empty() {
        let spec = spec();
        let layout = MemoryLayout::contiguous(&spec, 0, 1000);
        let trace = Trace::capture(&spec, &layout, 0);
        assert!(trace.entries().is_empty());
        assert_eq!(trace.iterations(), 0);
    }
}
