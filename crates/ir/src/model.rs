//! Core data model: loops, array accesses and access patterns.
//!
//! The paper's input is a program loop containing a fixed, ordered sequence
//! of array accesses, each described by a constant offset with respect to
//! the loop variable (e.g. `A[i+1]` has offset `+1`). [`LoopSpec`] captures
//! exactly that, for any number of distinct arrays; [`AccessPattern`] is the
//! per-array projection consumed by the allocation algorithms in
//! `raco-graph` / `raco-core`.

use std::fmt;

/// Identifier of an array within one [`LoopSpec`].
///
/// `ArrayId`s are dense indices handed out by [`LoopSpec::add_array`]; they
/// are only meaningful relative to the loop that created them.
///
/// # Examples
///
/// ```
/// use raco_ir::LoopSpec;
/// let mut spec = LoopSpec::new("demo", "i", 1);
/// let a = spec.add_array("A", 1);
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(u32);

impl ArrayId {
    /// Creates an id from a raw dense index.
    ///
    /// Mostly useful in tests; prefer the ids returned by
    /// [`LoopSpec::add_array`].
    pub fn from_index(index: u32) -> Self {
        ArrayId(index)
    }

    /// The dense index of this array within its loop.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "array#{}", self.0)
    }
}

/// Whether an access reads or writes memory.
///
/// The addressing cost model of the paper does not distinguish reads from
/// writes — both occupy one slot in the access sequence — but the
/// distinction is preserved for listings, traces and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// The access loads from memory.
    Read,
    /// The access stores to memory.
    Write,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// One array access inside a loop body.
///
/// The access touches `array[c * i + offset]` where `i` is the loop
/// variable and `c` is the per-array coefficient recorded in [`ArrayInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// The array being accessed.
    pub array: ArrayId,
    /// Constant offset relative to `coefficient * loop-variable`.
    pub offset: i64,
    /// Read or write.
    pub kind: AccessKind,
}

/// Per-array metadata of a loop.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayInfo {
    name: String,
    coefficient: i64,
    carries: Vec<i64>,
}

impl ArrayInfo {
    /// The source-level name of the array.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Coefficient `c` of the loop variable in every index expression of
    /// this array (`array[c*i + d]`).
    ///
    /// A coefficient of `0` denotes loop-invariant accesses; the effective
    /// address stride of such an array is zero.
    pub fn coefficient(&self) -> i64 {
        self.coefficient
    }

    /// Outer-loop carry deltas of a flattened loop nest, outermost level
    /// first (empty for plain single loops).
    ///
    /// When a nested loop is flattened to its innermost access sequence
    /// (see [`LoopNest`]), the steady-state address of this array advances
    /// by `stride` per flattened iteration; whenever outer level `k`
    /// advances (every [`LoopNest::periods`]`[k]` iterations), the address
    /// additionally jumps by `carries()[k]`. A carry of zero means the
    /// flattening is exact at that level (contiguous rows).
    pub fn carries(&self) -> &[i64] {
        &self.carries
    }
}

/// One outer level of a flattened loop nest (the innermost loop is the
/// [`LoopSpec`] itself).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NestLevel {
    /// Source-level induction variable of this level.
    pub var: String,
    /// Initial value of the induction variable.
    pub start: i64,
    /// Per-iteration increment of this level. Never zero.
    pub stride: i64,
    /// Constant trip count of this level. Never zero.
    pub trips: u64,
}

/// Loop-nest metadata attached to a flattened [`LoopSpec`].
///
/// A nest `for v0 … { for v1 … { inner } }` is lowered by *flattening*:
/// the [`LoopSpec`] describes the innermost loop's per-iteration access
/// sequence, iterated `total_iterations()` times as if it were one long
/// loop. Within one sweep of the innermost loop the flat affine model is
/// exact; whenever an outer level advances, each array's address jumps by
/// its per-level carry ([`ArrayInfo::carries`]) relative to the flat
/// model. Code generation realizes those jumps as boundary update blocks
/// executed between inner-loop sweeps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopNest {
    levels: Vec<NestLevel>,
    inner_trips: u64,
}

impl LoopNest {
    /// Builds nest metadata from the outer levels (outermost first) and
    /// the innermost loop's constant trip count.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, `inner_trips` is zero, or any level
    /// has a zero trip count or stride — lowering rejects such nests
    /// before constructing metadata.
    pub fn new(levels: Vec<NestLevel>, inner_trips: u64) -> Self {
        assert!(!levels.is_empty(), "a nest needs at least one outer level");
        assert!(inner_trips > 0, "inner trip count must be positive");
        for level in &levels {
            assert!(level.trips > 0, "outer trip counts must be positive");
            assert!(level.stride != 0, "outer strides must be non-zero");
        }
        LoopNest {
            levels,
            inner_trips,
        }
    }

    /// The outer levels, outermost first.
    pub fn levels(&self) -> &[NestLevel] {
        &self.levels
    }

    /// Nest depth including the innermost loop.
    pub fn depth(&self) -> usize {
        self.levels.len() + 1
    }

    /// Constant trip count of the innermost loop.
    pub fn inner_trips(&self) -> u64 {
        self.inner_trips
    }

    /// Flattened iterations per advance of each outer level, outermost
    /// first: `periods()[k]` is the product of all trip counts strictly
    /// inside level `k` (saturating on overflow).
    pub fn periods(&self) -> Vec<u64> {
        let mut periods = vec![0u64; self.levels.len()];
        let mut acc = self.inner_trips;
        for (k, level) in self.levels.iter().enumerate().rev() {
            periods[k] = acc;
            acc = acc.saturating_mul(level.trips);
        }
        periods
    }

    /// Total flattened iterations of the whole nest (saturating).
    pub fn total_iterations(&self) -> u64 {
        self.levels.iter().fold(self.inner_trips, |acc, level| {
            acc.saturating_mul(level.trips)
        })
    }
}

/// Errors produced while building or validating a [`LoopSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// An access referenced an [`ArrayId`] that does not belong to the loop.
    UnknownArray(ArrayId),
    /// A loop was declared with stride zero, which would never terminate
    /// and makes inter-iteration distances meaningless.
    ZeroStride,
    /// Two accesses to the same array used different loop-variable
    /// coefficients, which the uniform-distance model cannot represent.
    MixedCoefficients {
        /// Name of the offending array.
        array: String,
        /// Coefficient recorded first.
        first: i64,
        /// Conflicting coefficient seen later.
        second: i64,
    },
    /// The loop contains no array accesses at all.
    EmptyLoop,
    /// An array's carry list does not match the nest depth.
    CarryRankMismatch {
        /// Name of the offending array.
        array: String,
        /// Outer levels declared by the nest metadata.
        levels: usize,
        /// Carries recorded for the array.
        carries: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownArray(id) => write!(f, "access references unknown {id}"),
            IrError::ZeroStride => f.write_str("loop stride must be non-zero"),
            IrError::MixedCoefficients {
                array,
                first,
                second,
            } => write!(
                f,
                "array `{array}` is indexed with mixed loop-variable coefficients {first} and {second}"
            ),
            IrError::EmptyLoop => f.write_str("loop contains no array accesses"),
            IrError::CarryRankMismatch {
                array,
                levels,
                carries,
            } => write!(
                f,
                "array `{array}` records {carries} carry delta(s) for a nest with {levels} outer level(s)"
            ),
        }
    }
}

impl std::error::Error for IrError {}

/// A single innermost loop with a fixed sequence of array accesses.
///
/// This is the paper's problem input: per iteration the loop performs the
/// same ordered sequence of accesses, and the loop variable advances by
/// [`stride`](Self::stride) each iteration.
///
/// # Examples
///
/// Building the paper's running example by hand (see
/// [`examples::paper_loop`](crate::examples::paper_loop) for the canned
/// version):
///
/// ```
/// use raco_ir::{AccessKind, LoopSpec};
///
/// let mut spec = LoopSpec::new("paper", "i", 1);
/// let a = spec.add_array("A", 1);
/// for off in [1, 0, 2, -1, 1, 0, -2] {
///     spec.push_access(a, off, AccessKind::Read).unwrap();
/// }
/// assert_eq!(spec.accesses().len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSpec {
    name: String,
    var: String,
    start: i64,
    stride: i64,
    arrays: Vec<ArrayInfo>,
    accesses: Vec<Access>,
    nest: Option<LoopNest>,
}

impl LoopSpec {
    /// Creates an empty loop.
    ///
    /// `name` labels the loop in listings, `var` is the loop-variable name
    /// and `stride` its per-iteration increment.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`; use [`LoopSpec::try_new`] for a fallible
    /// variant.
    pub fn new(name: &str, var: &str, stride: i64) -> Self {
        Self::try_new(name, var, stride).expect("loop stride must be non-zero")
    }

    /// Fallible variant of [`LoopSpec::new`].
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ZeroStride`] if `stride == 0`.
    pub fn try_new(name: &str, var: &str, stride: i64) -> Result<Self, IrError> {
        if stride == 0 {
            return Err(IrError::ZeroStride);
        }
        Ok(LoopSpec {
            name: name.to_owned(),
            var: var.to_owned(),
            start: 0,
            stride,
            arrays: Vec::new(),
            accesses: Vec::new(),
            nest: None,
        })
    }

    /// Sets the initial value of the loop variable (used by address traces).
    pub fn set_start(&mut self, start: i64) -> &mut Self {
        self.start = start;
        self
    }

    /// Renames the loop (listings and diagnostics).
    pub fn set_name(&mut self, name: &str) -> &mut Self {
        self.name = name.to_owned();
        self
    }

    /// Attaches loop-nest metadata: this spec is the flattened innermost
    /// loop of `nest`. Per-array carry deltas are set separately with
    /// [`LoopSpec::set_array_carries`].
    pub fn set_nest(&mut self, nest: LoopNest) -> &mut Self {
        self.nest = Some(nest);
        self
    }

    /// Loop-nest metadata, if this spec was flattened from a nest.
    pub fn nest(&self) -> Option<&LoopNest> {
        self.nest.as_ref()
    }

    /// Registers an array with loop-variable coefficient `coefficient` and
    /// returns its id.
    ///
    /// If an array with the same name already exists its id is returned
    /// unchanged (the coefficient of the first registration wins; use
    /// [`LoopSpec::array_info`] to inspect it).
    pub fn add_array(&mut self, name: &str, coefficient: i64) -> ArrayId {
        if let Some(pos) = self.arrays.iter().position(|a| a.name == name) {
            return ArrayId(pos as u32);
        }
        self.arrays.push(ArrayInfo {
            name: name.to_owned(),
            coefficient,
            carries: Vec::new(),
        });
        ArrayId((self.arrays.len() - 1) as u32)
    }

    /// Records the per-outer-level carry deltas of one array (outermost
    /// level first; see [`ArrayInfo::carries`]).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownArray`] if `array` was not created by
    /// [`LoopSpec::add_array`] on this loop.
    pub fn set_array_carries(&mut self, array: ArrayId, carries: Vec<i64>) -> Result<(), IrError> {
        match self.arrays.get_mut(array.index()) {
            Some(info) => {
                info.carries = carries;
                Ok(())
            }
            None => Err(IrError::UnknownArray(array)),
        }
    }

    /// Appends an access to the end of the per-iteration access sequence.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::UnknownArray`] if `array` was not created by
    /// [`LoopSpec::add_array`] on this loop.
    pub fn push_access(
        &mut self,
        array: ArrayId,
        offset: i64,
        kind: AccessKind,
    ) -> Result<usize, IrError> {
        if array.index() >= self.arrays.len() {
            return Err(IrError::UnknownArray(array));
        }
        self.accesses.push(Access {
            array,
            offset,
            kind,
        });
        Ok(self.accesses.len() - 1)
    }

    /// The loop's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loop-variable name.
    pub fn var(&self) -> &str {
        &self.var
    }

    /// Initial value of the loop variable.
    pub fn start(&self) -> i64 {
        self.start
    }

    /// Per-iteration increment of the loop variable. Never zero.
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// All registered arrays, indexable by [`ArrayId::index`].
    pub fn arrays(&self) -> &[ArrayInfo] {
        &self.arrays
    }

    /// Metadata of one array.
    pub fn array_info(&self, id: ArrayId) -> Option<&ArrayInfo> {
        self.arrays.get(id.index())
    }

    /// Looks an array up by its source-level name.
    pub fn array_id(&self, name: &str) -> Option<ArrayId> {
        self.arrays
            .iter()
            .position(|a| a.name == name)
            .map(|pos| ArrayId(pos as u32))
    }

    /// The ordered per-iteration access sequence.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Total number of accesses per iteration (the paper's `N`).
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` if the loop performs no array accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Validates the loop: non-zero stride, at least one access, all
    /// accesses referencing known arrays.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`IrError`].
    pub fn validate(&self) -> Result<(), IrError> {
        if self.stride == 0 {
            return Err(IrError::ZeroStride);
        }
        if self.accesses.is_empty() {
            return Err(IrError::EmptyLoop);
        }
        for acc in &self.accesses {
            if acc.array.index() >= self.arrays.len() {
                return Err(IrError::UnknownArray(acc.array));
            }
        }
        // Carries are either absent (plain loops, or exact flattenings
        // that recorded none) or exactly one per outer nest level.
        let levels = self.nest.as_ref().map_or(0, |n| n.levels().len());
        for info in &self.arrays {
            if !info.carries.is_empty() && info.carries.len() != levels {
                return Err(IrError::CarryRankMismatch {
                    array: info.name.clone(),
                    levels,
                    carries: info.carries.len(),
                });
            }
        }
        Ok(())
    }

    /// Extracts the [`AccessPattern`] of one array, or `None` if the array
    /// is never accessed.
    ///
    /// The pattern's *effective stride* is
    /// `loop stride × array coefficient`: that is how far the address of a
    /// fixed index expression moves from one iteration to the next.
    pub fn pattern_for(&self, id: ArrayId) -> Option<AccessPattern> {
        let info = self.array_info(id)?;
        let accesses: Vec<PatternAccess> = self
            .accesses
            .iter()
            .enumerate()
            .filter(|(_, a)| a.array == id)
            .map(|(position, a)| PatternAccess {
                position,
                offset: a.offset,
                kind: a.kind,
            })
            .collect();
        if accesses.is_empty() {
            return None;
        }
        Some(AccessPattern {
            array: id,
            array_name: info.name.clone(),
            stride: self.stride * info.coefficient,
            accesses,
        })
    }

    /// Extracts the access patterns of every array that is accessed at
    /// least once, in [`ArrayId`] order.
    pub fn patterns(&self) -> Vec<AccessPattern> {
        (0..self.arrays.len() as u32)
            .filter_map(|i| self.pattern_for(ArrayId(i)))
            .collect()
    }
}

/// One access within an [`AccessPattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternAccess {
    /// Position of this access in the loop's *global* access sequence
    /// (across all arrays). Strictly increasing within a pattern.
    pub position: usize,
    /// Constant offset relative to the scaled loop variable.
    pub offset: i64,
    /// Read or write.
    pub kind: AccessKind,
}

/// The per-array access sequence the allocation algorithms operate on.
///
/// An `AccessPattern` is an ordered list of offsets (the paper writes them
/// `a_1 … a_N`) together with the *effective stride*: the amount every
/// offset's address advances between consecutive loop iterations.
///
/// # Examples
///
/// ```
/// use raco_ir::AccessPattern;
/// let p = AccessPattern::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1);
/// assert_eq!(p.len(), 7);
/// assert_eq!(p.offset(2), 2);
/// assert_eq!(p.stride(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AccessPattern {
    array: ArrayId,
    array_name: String,
    stride: i64,
    accesses: Vec<PatternAccess>,
}

impl AccessPattern {
    /// Builds a pattern directly from a list of offsets, for algorithm-only
    /// use (single anonymous array, positions `0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty.
    pub fn from_offsets(offsets: &[i64], stride: i64) -> Self {
        assert!(!offsets.is_empty(), "pattern must contain accesses");
        AccessPattern {
            array: ArrayId(0),
            array_name: "A".to_owned(),
            stride,
            accesses: offsets
                .iter()
                .enumerate()
                .map(|(position, &offset)| PatternAccess {
                    position,
                    offset,
                    kind: AccessKind::Read,
                })
                .collect(),
        }
    }

    /// The array this pattern projects.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// Source-level name of the array.
    pub fn array_name(&self) -> &str {
        &self.array_name
    }

    /// Effective per-iteration address stride
    /// (`loop stride × array coefficient`).
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// Number of accesses in the pattern (the paper's `N` when the loop
    /// touches a single array).
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// `true` if the pattern contains no accesses. Patterns built through
    /// the public constructors are never empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// The accesses in pattern order.
    pub fn accesses(&self) -> &[PatternAccess] {
        &self.accesses
    }

    /// Offset of the `i`-th access of the pattern.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn offset(&self, i: usize) -> i64 {
        self.accesses[i].offset
    }

    /// All offsets in pattern order.
    pub fn offsets(&self) -> Vec<i64> {
        self.accesses.iter().map(|a| a.offset).collect()
    }

    /// Global sequence position of the `i`-th pattern access.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn position(&self, i: usize) -> usize {
        self.accesses[i].position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_array_loop() -> LoopSpec {
        let mut spec = LoopSpec::new("t", "i", 1);
        let a = spec.add_array("A", 1);
        let b = spec.add_array("B", 2);
        spec.push_access(a, 0, AccessKind::Read).unwrap();
        spec.push_access(b, 1, AccessKind::Read).unwrap();
        spec.push_access(a, 2, AccessKind::Write).unwrap();
        spec.push_access(b, -1, AccessKind::Read).unwrap();
        spec
    }

    #[test]
    fn array_ids_are_dense_and_deduplicated() {
        let mut spec = LoopSpec::new("t", "i", 1);
        let a = spec.add_array("A", 1);
        let b = spec.add_array("B", 1);
        let a2 = spec.add_array("A", 5); // duplicate name: id reused,
        assert_eq!(a, a2); // first coefficient wins
        assert_eq!(spec.array_info(a).unwrap().coefficient(), 1);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn push_access_rejects_foreign_ids() {
        let mut spec = LoopSpec::new("t", "i", 1);
        let err = spec
            .push_access(ArrayId::from_index(3), 0, AccessKind::Read)
            .unwrap_err();
        assert_eq!(err, IrError::UnknownArray(ArrayId::from_index(3)));
    }

    #[test]
    fn zero_stride_is_rejected() {
        assert_eq!(
            LoopSpec::try_new("t", "i", 0).unwrap_err(),
            IrError::ZeroStride
        );
    }

    #[test]
    fn validate_flags_empty_loop() {
        let spec = LoopSpec::new("t", "i", 1);
        assert_eq!(spec.validate().unwrap_err(), IrError::EmptyLoop);
    }

    #[test]
    fn validate_accepts_well_formed_loop() {
        assert_eq!(two_array_loop().validate(), Ok(()));
    }

    #[test]
    fn pattern_projection_keeps_global_positions() {
        let spec = two_array_loop();
        let pa = spec.pattern_for(ArrayId::from_index(0)).unwrap();
        assert_eq!(pa.offsets(), vec![0, 2]);
        assert_eq!(pa.position(0), 0);
        assert_eq!(pa.position(1), 2);
        assert_eq!(pa.stride(), 1);

        let pb = spec.pattern_for(ArrayId::from_index(1)).unwrap();
        assert_eq!(pb.offsets(), vec![1, -1]);
        assert_eq!(pb.position(0), 1);
        assert_eq!(pb.position(1), 3);
        // effective stride = loop stride (1) * coefficient (2)
        assert_eq!(pb.stride(), 2);
    }

    #[test]
    fn patterns_skips_unused_arrays() {
        let mut spec = two_array_loop();
        spec.add_array("unused", 1);
        assert_eq!(spec.patterns().len(), 2);
    }

    #[test]
    fn pattern_for_unused_array_is_none() {
        let mut spec = two_array_loop();
        let u = spec.add_array("unused", 1);
        assert!(spec.pattern_for(u).is_none());
    }

    #[test]
    fn from_offsets_builds_anonymous_pattern() {
        let p = AccessPattern::from_offsets(&[3, -3], 2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.stride(), 2);
        assert_eq!(p.array_name(), "A");
        assert_eq!(p.position(1), 1);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "pattern must contain accesses")]
    fn from_offsets_rejects_empty() {
        let _ = AccessPattern::from_offsets(&[], 1);
    }

    #[test]
    fn nest_metadata_periods_and_totals() {
        let nest = LoopNest::new(
            vec![
                NestLevel {
                    var: "i".into(),
                    start: 0,
                    stride: 1,
                    trips: 3,
                },
                NestLevel {
                    var: "j".into(),
                    start: 0,
                    stride: 1,
                    trips: 4,
                },
            ],
            5,
        );
        assert_eq!(nest.depth(), 3);
        assert_eq!(nest.inner_trips(), 5);
        // Innermost outer level advances every inner sweep (5), the
        // outermost every 4 sweeps (20).
        assert_eq!(nest.periods(), vec![20, 5]);
        assert_eq!(nest.total_iterations(), 60);
    }

    #[test]
    fn carries_validate_against_nest_depth() {
        let mut spec = two_array_loop();
        let a = spec.array_id("A").unwrap();
        spec.set_nest(LoopNest::new(
            vec![NestLevel {
                var: "r".into(),
                start: 0,
                stride: 1,
                trips: 2,
            }],
            4,
        ));
        // No carries recorded: treated as all-zero, still valid.
        assert_eq!(spec.validate(), Ok(()));
        spec.set_array_carries(a, vec![7]).unwrap();
        assert_eq!(spec.validate(), Ok(()));
        assert_eq!(spec.array_info(a).unwrap().carries(), &[7]);
        // Wrong rank is rejected.
        spec.set_array_carries(a, vec![7, 9]).unwrap();
        assert!(matches!(
            spec.validate().unwrap_err(),
            IrError::CarryRankMismatch { .. }
        ));
        // Foreign ids are rejected.
        assert!(spec
            .set_array_carries(ArrayId::from_index(9), vec![1])
            .is_err());
    }

    #[test]
    #[should_panic(expected = "at least one outer level")]
    fn empty_nests_are_rejected() {
        let _ = LoopNest::new(vec![], 4);
    }

    #[test]
    fn display_impls_are_informative() {
        assert_eq!(ArrayId::from_index(4).to_string(), "array#4");
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
        let err = IrError::MixedCoefficients {
            array: "A".into(),
            first: 1,
            second: 2,
        };
        assert!(err.to_string().contains("mixed"));
    }
}
