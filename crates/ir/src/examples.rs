//! Canned example loops, including the paper's running example.

use crate::dsl;
use crate::model::LoopSpec;

/// DSL source of the paper's running example (Section 2).
///
/// The loop performs seven accesses to array `A` with offsets
/// `1, 0, 2, -1, 1, 0, -2` — the access pattern drawn in Figure 1.
pub const PAPER_LOOP_SOURCE: &str = "\
for (i = 2; i <= 100; i++) {
    /* a_1 */ s1 = A[i + 1];  /* offset  1 */
    /* a_2 */ s2 = A[i];      /* offset  0 */
    /* a_3 */ s3 = A[i + 2];  /* offset  2 */
    /* a_4 */ s4 = A[i - 1];  /* offset -1 */
    /* a_5 */ s5 = A[i + 1];  /* offset  1 */
    /* a_6 */ s6 = A[i];      /* offset  0 */
    /* a_7 */ s7 = A[i - 2];  /* offset -2 */
}";

/// The paper's running example as a [`LoopSpec`]: seven accesses to one
/// array with offsets `1, 0, 2, -1, 1, 0, -2`, loop stride `1`.
///
/// # Examples
///
/// ```
/// let spec = raco_ir::examples::paper_loop();
/// assert_eq!(spec.patterns()[0].offsets(), vec![1, 0, 2, -1, 1, 0, -2]);
/// ```
pub fn paper_loop() -> LoopSpec {
    dsl::parse_loop(PAPER_LOOP_SOURCE).expect("the paper example is valid DSL")
}

/// A three-tap symmetric FIR-like loop touching one array at offsets
/// `-1, 0, 1` plus an output array — a friendly smoke-test input.
pub fn three_tap() -> LoopSpec {
    dsl::parse_loop(
        "for (i = 1; i < 255; i++) {
            y[i] = x[i - 1] + x[i] + x[i + 1];
        }",
    )
    .expect("valid DSL")
}

/// A deliberately register-hungry loop: accesses far apart (offsets
/// `0, 10, 20, 30`) so that with `M = 1` every access needs its own
/// register for a zero-cost scheme.
pub fn scattered() -> LoopSpec {
    dsl::parse_loop(
        "for (i = 0; i < 64; i++) {
            s = A[i] + A[i + 10] + A[i + 20] + A[i + 30];
        }",
    )
    .expect("valid DSL")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_loop_matches_figure_1() {
        let spec = paper_loop();
        assert_eq!(spec.len(), 7);
        assert_eq!(spec.stride(), 1);
        assert_eq!(spec.start(), 2);
        let p = &spec.patterns()[0];
        assert_eq!(p.offsets(), vec![1, 0, 2, -1, 1, 0, -2]);
        assert_eq!(p.array_name(), "A");
    }

    #[test]
    fn three_tap_has_two_arrays() {
        let spec = three_tap();
        assert_eq!(spec.patterns().len(), 2);
        let x = spec.pattern_for(spec.array_id("x").unwrap()).unwrap();
        assert_eq!(x.offsets(), vec![-1, 0, 1]);
    }

    #[test]
    fn scattered_offsets_are_far_apart() {
        let spec = scattered();
        let p = &spec.patterns()[0];
        assert_eq!(p.offsets(), vec![0, 10, 20, 30]);
    }
}
