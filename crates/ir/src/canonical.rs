//! Pattern canonicalization and access-sequence hashing.
//!
//! The allocation algorithms consume an [`AccessPattern`] only through
//! its [`DistanceModel`](crate::AccessPattern) — pairwise offset
//! *differences* plus the effective stride — so two patterns whose
//! offsets differ by a constant shift are the **same** allocation
//! problem: same Phase-1 search tree, same merge costs, same final
//! cover, even the same per-step deltas in generated address code.
//! Batch workloads (many loops, many kernels) are full of such
//! repetition: every `x[i] … x[i-1] … x[i-2]` FIR tap chain looks like
//! every other one, regardless of where in the loop body it appears.
//!
//! This module gives that equivalence a canonical representative so a
//! compilation driver can memoize allocations instead of re-running
//! branch-and-bound:
//!
//! * [`CanonicalPattern`] — offsets shifted so the first access sits at
//!   zero. Patterns with equal canonical forms have **identical**
//!   distance models; a cached allocation (cover, costs *and* concrete
//!   update deltas) is bit-for-bit reusable.
//! * [`CanonicalPattern::cost_class`] — additionally normalizes the
//!   global sign (a pattern and its mirror image have equal allocation
//!   *costs*, though mirrored update deltas). Useful for cost-curve
//!   caches and workload analytics, **not** for reusing generated code.
//! * [`CanonicalPattern::fingerprint`] — a 64-bit FNV-1a hash of the
//!   canonical access sequence, the driver's cheap cache-key prefilter.
//!
//! ## Nest-awareness
//!
//! Flattened loop nests (see [`LoopNest`](crate::model::LoopNest))
//! deliberately canonicalize **without** their nest metadata: the
//! allocation algorithms consume only the steady-state offset sequence
//! and stride, and the outer-loop carries are realized later, per loop,
//! as codegen-time carry blocks derived from the spec — never cached.
//! A 1D pattern and a flattened-2D pattern with identical deltas are
//! therefore the *same* allocation problem and soundly share one cache
//! entry (same cost curve, same cover, same update deltas), even though
//! their generated programs differ in their carry blocks.
//!
//! ```
//! use raco_ir::canonical::CanonicalPattern;
//! use raco_ir::AccessPattern;
//!
//! // The same FIR tap chain at two different base offsets …
//! let a = AccessPattern::from_offsets(&[0, -1, -2], 1);
//! let b = AccessPattern::from_offsets(&[5, 4, 3], 1);
//! // … canonicalize identically:
//! assert_eq!(CanonicalPattern::of(&a), CanonicalPattern::of(&b));
//! assert_eq!(
//!     CanonicalPattern::of(&a).fingerprint(),
//!     CanonicalPattern::of(&b).fingerprint()
//! );
//! ```

use std::fmt;

use crate::model::AccessPattern;

/// The shift-normalized form of an access pattern.
///
/// Two patterns compare equal here iff their distance models are
/// identical — the strongest equivalence a cache can exploit without
/// re-deriving anything. See the [module docs](self) for the weaker
/// sign-normalized *cost class*.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalPattern {
    offsets: Vec<i64>,
    stride: i64,
}

impl CanonicalPattern {
    /// Canonicalizes `pattern`: shifts every offset so the first access
    /// is at zero. Offsets are shifted in `i128` and clamped, matching
    /// the distance model's own overflow policy on adversarial inputs.
    pub fn of(pattern: &AccessPattern) -> Self {
        Self::from_offsets(&pattern.offsets(), pattern.stride())
    }

    /// Canonicalizes a raw offset list (algorithm-only entry point).
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is empty — empty patterns cannot be built
    /// through the public [`AccessPattern`] constructors either.
    pub fn from_offsets(offsets: &[i64], stride: i64) -> Self {
        assert!(!offsets.is_empty(), "cannot canonicalize an empty pattern");
        let base = i128::from(offsets[0]);
        let offsets = offsets
            .iter()
            .map(|&o| clamp_i128(i128::from(o) - base))
            .collect();
        CanonicalPattern { offsets, stride }
    }

    /// The canonical offsets; the first element is always zero.
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// Effective per-iteration stride (unchanged by canonicalization).
    pub fn stride(&self) -> i64 {
        self.stride
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// `true` if the pattern has no accesses (never the case for values
    /// built through the public constructors).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The mirror image: every offset and the stride negated, then
    /// re-normalized. Mirroring preserves allocation **cost** (every
    /// distance flips sign, and freeness only depends on `|d| <= M`)
    /// but not generated update deltas.
    pub fn mirror(&self) -> Self {
        let neg: Vec<i64> = self
            .offsets
            .iter()
            .map(|&o| clamp_i128(-i128::from(o)))
            .collect();
        let mirrored = Self::from_offsets(&neg, self.stride.checked_neg().unwrap_or(i64::MAX));
        // Negating a canonical list keeps the first offset at 0, so
        // from_offsets' re-normalization is a no-op.
        debug_assert_eq!(mirrored.offsets.first(), Some(&0));
        mirrored
    }

    /// The cost-equivalence representative: the lexicographically
    /// smaller of `self` and its [`mirror`](Self::mirror). Patterns
    /// with equal cost classes have equal allocation costs for every
    /// `K` and `M` (the driver's cost-curve cache keys on this).
    pub fn cost_class(&self) -> Self {
        let mirrored = self.mirror();
        if mirrored < *self {
            mirrored
        } else {
            self.clone()
        }
    }

    /// 64-bit FNV-1a hash of the canonical access sequence (stride,
    /// length, offsets). Stable across processes — usable in on-disk
    /// artifacts and logs, not just in-memory maps.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut hash = OFFSET_BASIS;
        let mut absorb = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        absorb(self.stride as u64);
        absorb(self.offsets.len() as u64);
        for &o in &self.offsets {
            absorb(o as u64);
        }
        hash
    }
}

impl fmt::Display for CanonicalPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "canonical[stride {}; ", self.stride)?;
        for (i, o) in self.offsets.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{o}")?;
        }
        f.write_str("]")
    }
}

fn clamp_i128(v: i128) -> i64 {
    v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shifted_patterns_share_a_canonical_form() {
        let a = CanonicalPattern::from_offsets(&[1, 0, 2, -1, 1, 0, -2], 1);
        let b = CanonicalPattern::from_offsets(&[4, 3, 5, 2, 4, 3, 1], 1);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.offsets()[0], 0);
    }

    #[test]
    fn different_strides_do_not_collide() {
        let a = CanonicalPattern::from_offsets(&[0, 1], 1);
        let b = CanonicalPattern::from_offsets(&[0, 1], 2);
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn mirror_is_an_involution_on_the_canonical_form() {
        let a = CanonicalPattern::from_offsets(&[0, 3, -2, 1], 2);
        assert_eq!(a.mirror().mirror(), a);
        assert_eq!(a.mirror().stride(), -2);
        assert_eq!(a.mirror().offsets()[0], 0);
    }

    #[test]
    fn cost_class_identifies_mirrored_patterns() {
        let fwd = CanonicalPattern::from_offsets(&[0, -1, -2, -3], 1);
        let bwd = CanonicalPattern::from_offsets(&[3, 4, 5, 6], -1)
            .mirror()
            .mirror();
        // fwd and the mirror of bwd describe mirrored chains.
        assert_eq!(fwd.cost_class(), bwd.mirror().cost_class());
        assert_eq!(
            fwd.cost_class().fingerprint(),
            bwd.mirror().cost_class().fingerprint()
        );
    }

    #[test]
    fn of_matches_from_offsets() {
        let p = AccessPattern::from_offsets(&[7, 5, 9], 3);
        assert_eq!(
            CanonicalPattern::of(&p),
            CanonicalPattern::from_offsets(&[7, 5, 9], 3)
        );
        assert_eq!(CanonicalPattern::of(&p).offsets(), &[0, -2, 2]);
        assert_eq!(CanonicalPattern::of(&p).stride(), 3);
        assert_eq!(CanonicalPattern::of(&p).len(), 3);
        assert!(!CanonicalPattern::of(&p).is_empty());
    }

    #[test]
    fn flattened_nests_share_keys_with_equivalent_single_loops() {
        // A contiguous 2D sweep and a plain 1D sweep with the same
        // deltas are one allocation problem — the nest metadata (and its
        // carries) live outside the canonical key by design.
        let nested = crate::dsl::parse_loop(
            "array g[6][8];
             for (i = 1; i < 5; i++) { for (j = 0; j < 8; j++) { s += g[i][j] + g[i + 1][j]; } }",
        )
        .unwrap();
        let flat =
            crate::dsl::parse_loop("for (t = 9; t < 800; t++) { s += g[t] + g[t + 8]; }").unwrap();
        assert!(nested.nest().is_some() && flat.nest().is_none());
        let a = CanonicalPattern::of(&nested.patterns()[0]);
        let b = CanonicalPattern::of(&flat.patterns()[0]);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn display_is_compact() {
        let c = CanonicalPattern::from_offsets(&[2, 3], 1);
        assert_eq!(c.to_string(), "canonical[stride 1; 0, 1]");
    }

    #[test]
    fn extreme_offsets_clamp_instead_of_overflowing() {
        let c = CanonicalPattern::from_offsets(&[i64::MAX, i64::MIN], 1);
        assert_eq!(c.offsets()[0], 0);
        assert_eq!(c.offsets()[1], i64::MIN);
        let m = CanonicalPattern::from_offsets(&[0, 5], i64::MIN).mirror();
        assert_eq!(m.stride(), i64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty pattern")]
    fn empty_patterns_are_rejected() {
        let _ = CanonicalPattern::from_offsets(&[], 1);
    }
}
