//! # raco-ir — loop IR, front-end DSL and machine model
//!
//! This crate is the front end of the **raco** project, a reproduction of
//! *"Register-Constrained Address Computation in DSP Programs"* (Basu,
//! Leupers, Marwedel — DATE 1998). It defines everything the optimizer
//! consumes:
//!
//! * [`LoopSpec`] — a single innermost loop with a fixed sequence of array
//!   accesses, each with a constant offset with respect to the loop
//!   variable (the paper's *access pattern*),
//! * [`AccessPattern`] — the per-array projection of a loop's accesses that
//!   the allocation algorithms operate on,
//! * [`AguSpec`] — the address-generation-unit machine model (number of
//!   address registers `K`, auto-modify range `M`, optional modify
//!   registers),
//! * [`dsl`] — a small C-like language for writing loops as text,
//! * [`trace`] — reference address traces used to validate generated
//!   address code,
//! * [`canonical`] — shift-normalized pattern forms and access-sequence
//!   hashing, the foundation of the driver's allocation cache, and
//! * [`examples`] — canned loops, including the exact running example of
//!   the paper (Section 2, Figure 1).
//!
//! ## Quick example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use raco_ir::{dsl, AguSpec};
//!
//! let spec = dsl::parse_loop(
//!     "for (i = 2; i <= 100; i++) {
//!          y[i] = y[i] + a[i + 1] * a[i - 1];
//!      }",
//! )?;
//! let patterns = spec.patterns();
//! assert_eq!(patterns.len(), 2); // arrays `y` and `a`
//!
//! let agu = AguSpec::new(4, 1)?; // K = 4 address registers, |d| <= 1 free
//! assert_eq!(agu.address_registers(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! ## Canonicalization
//!
//! The allocation algorithms only see offset *differences*, so two
//! patterns that differ by a constant shift are the same allocation
//! problem. [`CanonicalPattern`] is the cache key that makes a batch
//! driver (or a long-lived `raco serve` process) exploit that:
//!
//! ```
//! use raco_ir::{AccessPattern, CanonicalPattern};
//!
//! // The same three-tap chain at two different base offsets …
//! let near = AccessPattern::from_offsets(&[0, -1, -2], 1);
//! let far = AccessPattern::from_offsets(&[40, 39, 38], 1);
//! // … is one cache entry:
//! assert_eq!(CanonicalPattern::of(&near), CanonicalPattern::of(&far));
//! // and its fingerprint is stable across processes:
//! assert_eq!(
//!     CanonicalPattern::of(&near).fingerprint(),
//!     CanonicalPattern::of(&far).fingerprint(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod canonical;
pub mod dsl;
pub mod examples;
pub mod machine;
pub mod model;
pub mod pretty;
pub mod trace;

pub use canonical::CanonicalPattern;
pub use machine::{
    AguSpec, CostTable, MachineDescription, MachineParseError, SpecError, UpdateRange,
    MAX_INSTRUCTION_COST, MAX_MACHINE_REGISTERS,
};
pub use model::{
    Access, AccessKind, AccessPattern, ArrayId, ArrayInfo, IrError, LoopNest, LoopSpec, NestLevel,
    PatternAccess,
};
pub use trace::{MemoryLayout, Trace, TraceEntry};
