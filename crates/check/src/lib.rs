//! Declarative listing invariants — the second correctness oracle.
//!
//! The simulator (`raco_agu::sim`) is an *operational* oracle: it runs
//! the generated address program against a captured access trace and
//! compares every served address. This crate is the *declarative* one:
//! each [`Invariant`] re-derives one property of a correct listing
//! directly from the instruction rows — without executing them against
//! a trace — and reports a structured [`Violation`] when the rows break
//! it. The pipeline runs both oracles on every validated loop; a
//! listing that one oracle accepts and the other rejects is itself a
//! reportable bug class (an oracle disagreement), because the two
//! derivations share no code.
//!
//! The invariant inventory lives in [`INVARIANTS`]; each entry carries
//! a stable kebab-case `name` (used in violation reports, docs, and
//! fuzz repros) and a `why` sentence explaining what a violation would
//! mean for generated code. See ARCHITECTURE.md § "Listing invariants"
//! for the prose version.
//!
//! Entry point: [`check_program`] (or [`check`] with a prepared
//! [`CheckContext`]).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

use raco_agu::{AddressInstr, AddressProgram, Update};
use raco_ir::{AguSpec, ArrayId, LoopSpec, MemoryLayout};

/// Everything an invariant may consult: the loop, the machine, the
/// memory layout codegen targeted, the generated program, and (when
/// the caller has one) the cost model's claimed cycles per iteration.
#[derive(Debug, Clone, Copy)]
pub struct CheckContext<'a> {
    /// The loop the program was generated for.
    pub spec: &'a LoopSpec,
    /// The memory layout the program's absolute addresses target.
    pub layout: &'a MemoryLayout,
    /// The machine the program must fit.
    pub agu: &'a AguSpec,
    /// The generated address program under check.
    pub program: &'a AddressProgram,
    /// Externally claimed addressing cycles per iteration (the cost
    /// model's prediction), compared by `cycle-accounting` when given.
    pub expected_cycles: Option<u64>,
}

/// One violated invariant instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable name of the violated invariant (see [`INVARIANTS`]).
    pub invariant: &'static str,
    /// What the rows actually say, with concrete values.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.invariant, self.message)
    }
}

/// Structured result of running every invariant over one program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    invariants_checked: usize,
    violations: Vec<Violation>,
}

impl CheckReport {
    /// `true` when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Every violation, in invariant-registry order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of invariants that ran.
    pub fn invariants_checked(&self) -> usize {
        self.invariants_checked
    }

    /// One-line summary: the first violations joined with `; `, with a
    /// count of the remainder. Empty string when clean.
    pub fn summary(&self) -> String {
        const SHOWN: usize = 3;
        let mut parts: Vec<String> = self
            .violations
            .iter()
            .take(SHOWN)
            .map(Violation::to_string)
            .collect();
        if self.violations.len() > SHOWN {
            parts.push(format!("… and {} more", self.violations.len() - SHOWN));
        }
        parts.join("; ")
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean ({} invariants)", self.invariants_checked)
        } else {
            write!(
                f,
                "{} violation(s): {}",
                self.violations.len(),
                self.summary()
            )
        }
    }
}

/// A named declarative invariant over listing rows.
pub struct Invariant {
    /// Stable kebab-case name, referenced by violations and docs.
    pub name: &'static str,
    /// Why the invariant must hold on a correct listing.
    pub why: &'static str,
    check: fn(&CheckContext<'_>, &mut Vec<Violation>),
}

impl fmt::Debug for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Invariant")
            .field("name", &self.name)
            .finish()
    }
}

/// The full invariant inventory, in the order they run.
pub const INVARIANTS: &[Invariant] = &[
    Invariant {
        name: "ar-in-machine-range",
        why: "every address-register index must fit both the program's declared register \
              count and the machine's K; an out-of-range AR encodes to a register the \
              hardware does not have",
        check: ar_in_machine_range,
    },
    Invariant {
        name: "mr-in-machine-range",
        why: "every modify-register index must fit the program's modify-value table and \
              the machine's modify-register file; an out-of-range M reads undefined state",
        check: mr_in_machine_range,
    },
    Invariant {
        name: "prologue-loads-only",
        why: "the prologue runs once before the loop and may only establish state (LDA/LDM, \
              each destination exactly once); an ADDA or USE there would execute outside \
              the steady state the body's delta ledger assumes",
        check: prologue_loads_only,
    },
    Invariant {
        name: "registers-initialized",
        why: "each AR the body serves from must be LDA-ed to its first access's address and \
              each M applied as a post-modify must be LDM-ed to its declared value; an \
              uninitialized register serves whatever the hardware woke up with",
        check: registers_initialized,
    },
    Invariant {
        name: "use-sequence",
        why: "the body must serve access positions 0..N exactly once each, in order — the \
              data-path instructions consume their addresses in program order, so any \
              permutation or omission feeds an instruction the wrong operand",
        check: use_sequence,
    },
    Invariant {
        name: "free-updates-in-range",
        why: "an auto post-modify is only free when |delta| <= M; a larger immediate would \
              not encode and must be an explicit ADDA instead",
        check: free_updates_in_range,
    },
    Invariant {
        name: "delta-coverage",
        why: "between consecutive serves of one AR, the applied updates (auto post-modify, \
              modify-register content, explicit ADDAs) must sum exactly to the address \
              distance between the served accesses — including the wrap back to the next \
              iteration; any gap leaves the register pointing at the wrong word",
        check: delta_coverage,
    },
    Invariant {
        name: "steady-state-advance",
        why: "over one body pass each serving AR must advance by exactly the effective \
              stride of its array, or addresses drift further off every iteration",
        check: steady_state_advance,
    },
    Invariant {
        name: "carry-boundaries",
        why: "carry blocks may appear only at the flattened nest's period boundaries, hold \
              only ADDAs, and per register must sum to the array's carry at that level — \
              carries anywhere else fire mid-sweep and corrupt the inner loop",
        check: carry_boundaries,
    },
    Invariant {
        name: "cycle-accounting",
        why: "the per-iteration addressing cost must be re-derivable from the rows (one \
              cycle per body LDA/LDM/ADDA, zero per USE) and equal the cost the model \
              claims; unaccounted cycles mean the optimizer is minimizing the wrong number",
        check: cycle_accounting,
    },
];

/// Runs every invariant in [`INVARIANTS`] over `ctx`.
pub fn check(ctx: &CheckContext<'_>) -> CheckReport {
    let mut violations = Vec::new();
    for invariant in INVARIANTS {
        (invariant.check)(ctx, &mut violations);
    }
    CheckReport {
        invariants_checked: INVARIANTS.len(),
        violations,
    }
}

/// Convenience entry point: builds the [`CheckContext`] and runs
/// [`check`].
pub fn check_program(
    spec: &LoopSpec,
    layout: &MemoryLayout,
    agu: &AguSpec,
    program: &AddressProgram,
    expected_cycles: Option<u64>,
) -> CheckReport {
    check(&CheckContext {
        spec,
        layout,
        agu,
        program,
        expected_cycles,
    })
}

// ---------------------------------------------------------------------
// Shared row derivations
// ---------------------------------------------------------------------

/// Where a row sits inside the program (for violation messages).
#[derive(Debug, Clone, Copy)]
enum RowLoc {
    Prologue(usize),
    Body(usize),
    Carry(usize, usize),
}

impl fmt::Display for RowLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RowLoc::Prologue(i) => write!(f, "prologue[{i}]"),
            RowLoc::Body(i) => write!(f, "body[{i}]"),
            RowLoc::Carry(b, i) => write!(f, "carry[{b}][{i}]"),
        }
    }
}

/// All rows of the program with their locations.
fn rows(program: &AddressProgram) -> impl Iterator<Item = (RowLoc, &AddressInstr)> {
    let prologue = program
        .prologue()
        .iter()
        .enumerate()
        .map(|(i, instr)| (RowLoc::Prologue(i), instr));
    let body = program
        .body()
        .iter()
        .enumerate()
        .map(|(i, instr)| (RowLoc::Body(i), instr));
    let carries = program.carries().iter().enumerate().flat_map(|(b, block)| {
        block
            .instrs
            .iter()
            .enumerate()
            .map(move |(i, instr)| (RowLoc::Carry(b, i), instr))
    });
    prologue.chain(body).chain(carries)
}

/// Iteration-0, carry-free address of access `position`:
/// `base + coefficient * start + offset`.
fn flat_address(ctx: &CheckContext<'_>, position: usize) -> Option<i64> {
    let access = ctx.spec.accesses().get(position)?;
    let base = ctx.layout.base(access.array)?;
    let info = ctx.spec.array_info(access.array)?;
    Some(base + info.coefficient() * ctx.spec.start() + access.offset)
}

/// Per-iteration address advance of access `position`:
/// `coefficient * loop stride`.
fn flat_stride(ctx: &CheckContext<'_>, position: usize) -> Option<i64> {
    let access = ctx.spec.accesses().get(position)?;
    let info = ctx.spec.array_info(access.array)?;
    Some(info.coefficient() * ctx.spec.stride())
}

/// The delta ledger of one address register over one body pass,
/// re-derived purely from the rows.
#[derive(Debug, Default, Clone)]
struct Ledger {
    /// Served positions with the update sum applied since the previous
    /// serve (`gap` of the first entry is the head: deltas before the
    /// register's first serve of the pass).
    serves: Vec<(usize, i64)>,
    /// Update sum accumulated since the last serve (the tail once the
    /// walk ends).
    pending: i64,
    /// Sum of every update applied to the register in one body pass.
    total: i64,
    /// Set when the body reloads the register absolutely (LDA), which
    /// makes a steady-state ledger underivable.
    poisoned: bool,
}

/// Walks the body once and returns one [`Ledger`] per declared AR.
/// Out-of-range register ids (reported by `ar-in-machine-range`) are
/// skipped.
fn body_ledgers(ctx: &CheckContext<'_>) -> Vec<Ledger> {
    let declared = ctx.program.address_registers();
    let modify_values = ctx.program.modify_values();
    let mut ledgers = vec![Ledger::default(); declared];
    for instr in ctx.program.body() {
        match instr {
            AddressInstr::Adda { reg, delta } => {
                if let Some(ledger) = ledgers.get_mut(usize::from(reg.0)) {
                    ledger.pending += delta;
                    ledger.total += delta;
                }
            }
            AddressInstr::Use {
                reg,
                position,
                update,
            } => {
                let applied = match update {
                    Update::None => 0,
                    Update::Auto { delta } => *delta,
                    Update::Modify { mr } => modify_values
                        .get(usize::from(mr.0))
                        .copied()
                        .unwrap_or_default(),
                };
                if let Some(ledger) = ledgers.get_mut(usize::from(reg.0)) {
                    ledger.serves.push((*position, ledger.pending));
                    ledger.pending = applied;
                    ledger.total += applied;
                }
            }
            AddressInstr::Lda { reg, .. } => {
                if let Some(ledger) = ledgers.get_mut(usize::from(reg.0)) {
                    ledger.poisoned = true;
                }
            }
            AddressInstr::Ldm { .. } => {}
        }
    }
    ledgers
}

/// The single array a register's serves all belong to, or `None` when
/// the chain is empty or spans arrays (the latter is reported by
/// `delta-coverage`).
fn chain_array(ctx: &CheckContext<'_>, ledger: &Ledger) -> Option<ArrayId> {
    let accesses = ctx.spec.accesses();
    let mut arrays = ledger
        .serves
        .iter()
        .filter_map(|&(position, _)| accesses.get(position).map(|a| a.array));
    let first = arrays.next()?;
    arrays.all(|a| a == first).then_some(first)
}

fn push(out: &mut Vec<Violation>, invariant: &'static str, message: String) {
    out.push(Violation { invariant, message });
}

// ---------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------

fn ar_in_machine_range(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "ar-in-machine-range";
    let declared = ctx.program.address_registers();
    let machine = ctx.agu.address_registers();
    if declared > machine {
        push(
            out,
            NAME,
            format!("program declares {declared} address registers but the machine has {machine}"),
        );
    }
    for (loc, instr) in rows(ctx.program) {
        if let Some(reg) = instr.register() {
            if usize::from(reg.0) >= declared {
                push(
                    out,
                    NAME,
                    format!(
                        "{reg} referenced at {loc} but the program declares only {declared} ARs"
                    ),
                );
            }
        }
    }
}

fn mr_in_machine_range(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "mr-in-machine-range";
    let declared = ctx.program.modify_values().len();
    let machine = ctx.agu.modify_registers();
    if declared > machine {
        push(
            out,
            NAME,
            format!("program declares {declared} modify values but the machine has {machine} modify registers"),
        );
    }
    for (loc, instr) in rows(ctx.program) {
        if let Some(mr) = instr.modify_register() {
            if usize::from(mr.0) >= declared {
                push(
                    out,
                    NAME,
                    format!("{mr} referenced at {loc} but the program declares only {declared} modify values"),
                );
            }
        }
    }
}

fn prologue_loads_only(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "prologue-loads-only";
    let mut lda_seen: BTreeMap<u16, usize> = BTreeMap::new();
    let mut ldm_seen: BTreeMap<u16, usize> = BTreeMap::new();
    for (i, instr) in ctx.program.prologue().iter().enumerate() {
        match instr {
            AddressInstr::Lda { reg, .. } => {
                if let Some(first) = lda_seen.insert(reg.0, i) {
                    push(
                        out,
                        NAME,
                        format!("{reg} loaded twice in the prologue (rows {first} and {i})"),
                    );
                }
            }
            AddressInstr::Ldm { mr, .. } => {
                if let Some(first) = ldm_seen.insert(mr.0, i) {
                    push(
                        out,
                        NAME,
                        format!("{mr} loaded twice in the prologue (rows {first} and {i})"),
                    );
                }
            }
            other => push(out, NAME, format!("prologue[{i}] is `{other}`, not a load")),
        }
    }
}

fn registers_initialized(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "registers-initialized";
    let mut lda: BTreeMap<u16, i64> = BTreeMap::new();
    let mut ldm: BTreeMap<u16, i64> = BTreeMap::new();
    for instr in ctx.program.prologue() {
        match instr {
            AddressInstr::Lda { reg, address } => {
                lda.entry(reg.0).or_insert(*address);
            }
            AddressInstr::Ldm { mr, value } => {
                ldm.entry(mr.0).or_insert(*value);
            }
            _ => {}
        }
    }

    // Every declared modify value must be LDM-ed to exactly that value:
    // the delta ledger (and the hardware) read the register, not the
    // table, so table and load must agree.
    for (i, &value) in ctx.program.modify_values().iter().enumerate() {
        let mr = u16::try_from(i).unwrap_or(u16::MAX);
        match ldm.get(&mr) {
            None => push(
                out,
                NAME,
                format!("M{i} declares value {value} but the prologue never loads it"),
            ),
            Some(&loaded) if loaded != value => push(
                out,
                NAME,
                format!("M{i} declares value {value} but the prologue loads {loaded}"),
            ),
            Some(_) => {}
        }
    }

    // Every AR referenced after the prologue must be LDA-ed, and a
    // serving AR must start at its first access's address (adjusted by
    // any deltas the body applies before that first serve).
    let ledgers = body_ledgers(ctx);
    let mut referenced: BTreeMap<u16, RowLoc> = BTreeMap::new();
    for (loc, instr) in rows(ctx.program) {
        if matches!(loc, RowLoc::Prologue(_)) {
            continue;
        }
        if let Some(reg) = instr.register() {
            referenced.entry(reg.0).or_insert(loc);
        }
    }
    for (&reg, &loc) in &referenced {
        if !lda.contains_key(&reg) {
            push(
                out,
                NAME,
                format!("AR{reg} used at {loc} but never loaded in the prologue"),
            );
        }
    }
    for (idx, ledger) in ledgers.iter().enumerate() {
        let Some(&(first_position, head)) = ledger.serves.first() else {
            continue;
        };
        let (Some(&loaded), Some(expected)) =
            (lda.get(&(idx as u16)), flat_address(ctx, first_position))
        else {
            continue; // missing LDA reported above; bad position elsewhere
        };
        if loaded + head != expected {
            push(
                out,
                NAME,
                format!(
                    "AR{idx} is loaded to {loaded} but its first serve (position {first_position}) \
                     needs address {expected}{}",
                    if head != 0 {
                        format!(" ({head} applied before the first serve)")
                    } else {
                        String::new()
                    }
                ),
            );
        }
    }
}

fn use_sequence(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "use-sequence";
    let served: Vec<usize> = ctx
        .program
        .body()
        .iter()
        .filter_map(|instr| match instr {
            AddressInstr::Use { position, .. } => Some(*position),
            _ => None,
        })
        .collect();
    let expected = ctx.spec.len();
    if served.len() != expected {
        push(
            out,
            NAME,
            format!(
                "body serves {} accesses but the loop has {expected}",
                served.len()
            ),
        );
    }
    for (i, &position) in served.iter().enumerate() {
        if position != i {
            push(
                out,
                NAME,
                format!("serve #{i} is position {position}, expected {i}"),
            );
            break; // one divergence implies a cascade; report the first
        }
    }
}

fn free_updates_in_range(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "free-updates-in-range";
    for (loc, instr) in rows(ctx.program) {
        if let AddressInstr::Use {
            update: Update::Auto { delta },
            ..
        } = instr
        {
            if !ctx.agu.is_free_delta(*delta) {
                push(
                    out,
                    NAME,
                    format!(
                        "{loc} auto post-modify {delta:+} exceeds the machine's modify range M={}",
                        ctx.agu.update_range()
                    ),
                );
            }
        }
    }
}

fn delta_coverage(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "delta-coverage";
    for (i, instr) in ctx.program.body().iter().enumerate() {
        match instr {
            AddressInstr::Lda { reg, .. } => push(
                out,
                NAME,
                format!("body[{i}] reloads {reg} absolutely; steady-state deltas are underivable"),
            ),
            AddressInstr::Ldm { mr, .. } => push(
                out,
                NAME,
                format!("body[{i}] reloads {mr}; modify registers must be loop-invariant"),
            ),
            _ => {}
        }
    }
    for (idx, ledger) in body_ledgers(ctx).iter().enumerate() {
        if ledger.poisoned || ledger.serves.is_empty() {
            continue;
        }
        // Intra-iteration gaps: updates between serve i-1 and serve i
        // must equal the flat address distance.
        for pair in ledger.serves.windows(2) {
            let [(from, _), (to, gap)] = pair else {
                continue;
            };
            let (Some(a), Some(b)) = (flat_address(ctx, *from), flat_address(ctx, *to)) else {
                push(
                    out,
                    NAME,
                    format!("AR{idx} serves a position outside the loop's access list"),
                );
                continue;
            };
            let distance = b - a;
            if *gap != distance {
                push(
                    out,
                    NAME,
                    format!(
                        "AR{idx} moves {gap:+} between positions {from} and {to}, but their \
                         addresses are {distance:+} apart"
                    ),
                );
            }
        }
        // Wrap: tail + head must carry the register from its last serve
        // to its first serve of the next iteration. That distance is
        // only constant when the chain stays on one effective stride.
        let strides: Vec<i64> = ledger
            .serves
            .iter()
            .filter_map(|&(position, _)| flat_stride(ctx, position))
            .collect();
        let Some(&stride) = strides.first() else {
            continue;
        };
        if strides.iter().any(|&s| s != stride) {
            push(
                out,
                NAME,
                format!(
                    "AR{idx} serves arrays with different effective strides; its wrap delta \
                     cannot be constant"
                ),
            );
            continue;
        }
        let (first, head) = ledger.serves[0];
        let (last, _) = *ledger.serves.last().expect("non-empty");
        let (Some(first_addr), Some(last_addr)) =
            (flat_address(ctx, first), flat_address(ctx, last))
        else {
            continue;
        };
        let wrap = ledger.pending + head;
        let needed = first_addr + stride - last_addr;
        if wrap != needed {
            push(
                out,
                NAME,
                format!(
                    "AR{idx} wraps {wrap:+} from position {last} back to position {first}, \
                     but the next iteration needs {needed:+}"
                ),
            );
        }
    }
}

fn steady_state_advance(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "steady-state-advance";
    for (idx, ledger) in body_ledgers(ctx).iter().enumerate() {
        if ledger.poisoned || ledger.serves.is_empty() {
            continue;
        }
        let strides: Vec<i64> = ledger
            .serves
            .iter()
            .filter_map(|&(position, _)| flat_stride(ctx, position))
            .collect();
        let Some(&stride) = strides.first() else {
            continue;
        };
        if strides.iter().any(|&s| s != stride) {
            continue; // reported by delta-coverage
        }
        if ledger.total != stride {
            push(
                out,
                NAME,
                format!(
                    "AR{idx} advances {:+} per iteration but its array strides {stride:+}",
                    ledger.total
                ),
            );
        }
    }
}

fn carry_boundaries(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "carry-boundaries";
    let blocks = ctx.program.carries();
    let Some(nest) = ctx.spec.nest() else {
        if !blocks.is_empty() {
            push(
                out,
                NAME,
                format!(
                    "program has {} carry block(s) but the loop is not a flattened nest",
                    blocks.len()
                ),
            );
        }
        return;
    };
    let periods = nest.periods();
    for (b, block) in blocks.iter().enumerate() {
        if !periods.contains(&block.period) {
            push(
                out,
                NAME,
                format!(
                    "carry block {b} fires every {} iterations, which is not a nest period \
                     (periods: {periods:?})",
                    block.period
                ),
            );
        }
        for (i, instr) in block.instrs.iter().enumerate() {
            if !matches!(instr, AddressInstr::Adda { .. }) {
                push(
                    out,
                    NAME,
                    format!("carry[{b}][{i}] is `{instr}`, not an ADDA"),
                );
            }
        }
    }

    // Per register and period, the ADDA sum across blocks must equal
    // the summed carries of the register's array at the levels sharing
    // that period (levels with trip count 1 can share a period).
    let ledgers = body_ledgers(ctx);
    let mut actual: BTreeMap<(usize, u64), i64> = BTreeMap::new();
    for block in blocks {
        for instr in &block.instrs {
            if let AddressInstr::Adda { reg, delta } = instr {
                *actual
                    .entry((usize::from(reg.0), block.period))
                    .or_default() += delta;
            }
        }
    }
    let mut expected: BTreeMap<(usize, u64), i64> = BTreeMap::new();
    for (idx, ledger) in ledgers.iter().enumerate() {
        let Some(array) = chain_array(ctx, ledger) else {
            // Mixed-array chains are reported by delta-coverage; their
            // expected carries are not well-defined, so exclude them.
            for period in &periods {
                actual.remove(&(idx, *period));
            }
            continue;
        };
        let Some(info) = ctx.spec.array_info(array) else {
            continue;
        };
        for (k, &period) in periods.iter().enumerate() {
            let carry = info.carries().get(k).copied().unwrap_or(0);
            if carry != 0 {
                *expected.entry((idx, period)).or_default() += carry;
            }
        }
    }
    let keys: std::collections::BTreeSet<(usize, u64)> =
        actual.keys().chain(expected.keys()).copied().collect();
    for key in keys {
        let got = actual.get(&key).copied().unwrap_or(0);
        let need = expected.get(&key).copied().unwrap_or(0);
        if got != need {
            let (reg, period) = key;
            push(
                out,
                NAME,
                format!(
                    "AR{reg} carry at period {period}: rows add {got:+}, nest requires {need:+}"
                ),
            );
        }
    }
}

fn cycle_accounting(ctx: &CheckContext<'_>, out: &mut Vec<Violation>) {
    const NAME: &str = "cycle-accounting";
    // Prices come from the *machine's* cost table, so a program whose
    // embedded table disagrees with the target machine is caught here.
    let costs = ctx.agu.cost_table();
    if ctx.program.cost_table() != costs {
        push(
            out,
            NAME,
            format!(
                "program is priced under a different cost table (lda={}, ldm={}, adda={}) than the machine (lda={}, ldm={}, adda={})",
                ctx.program.cost_table().lda(),
                ctx.program.cost_table().ldm(),
                ctx.program.cost_table().adda(),
                costs.lda(),
                costs.ldm(),
                costs.adda()
            ),
        );
    }
    let derived: u64 = ctx
        .program
        .body()
        .iter()
        .map(|i| i.cycles_with(&costs))
        .sum();
    if derived != ctx.program.cycles_per_iteration() {
        push(
            out,
            NAME,
            format!(
                "rows give {derived} cycles per iteration but the program claims {}",
                ctx.program.cycles_per_iteration()
            ),
        );
    }
    if let Some(expected) = ctx.expected_cycles {
        if expected != derived {
            push(
                out,
                NAME,
                format!(
                    "cost model claims {expected} cycles per iteration but the rows give {derived}"
                ),
            );
        }
    }
    let words: u64 = rows(ctx.program).map(|(_, instr)| instr.words()).sum();
    if words != ctx.program.words() {
        push(
            out,
            NAME,
            format!(
                "rows occupy {words} instruction words but the program claims {}",
                ctx.program.words()
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raco_agu::{MrId, RegId};
    use raco_ir::{AccessKind, LoopNest, NestLevel};

    /// `for (i = 0; i < n; i++) { … x[i] … x[i+2] … }` with x based at
    /// 100: AR0 serves offset 0, AR1 serves offset 2, both advancing by
    /// the stride 1 each iteration.
    fn two_register_loop() -> (LoopSpec, MemoryLayout) {
        let mut spec = LoopSpec::new("pair", "i", 1);
        let x = spec.add_array("x", 1);
        spec.push_access(x, 0, AccessKind::Read).unwrap();
        spec.push_access(x, 2, AccessKind::Read).unwrap();
        let layout = MemoryLayout::from_bases(vec![100]);
        (spec, layout)
    }

    fn two_register_program() -> AddressProgram {
        AddressProgram::new(
            vec![
                AddressInstr::Lda {
                    reg: RegId(0),
                    address: 100,
                },
                AddressInstr::Lda {
                    reg: RegId(1),
                    address: 102,
                },
            ],
            vec![
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 0,
                    update: Update::Auto { delta: 1 },
                },
                AddressInstr::Use {
                    reg: RegId(1),
                    position: 1,
                    update: Update::Auto { delta: 1 },
                },
            ],
            2,
            vec![],
        )
    }

    fn agu() -> AguSpec {
        AguSpec::new(4, 1).unwrap().with_modify_registers(2)
    }

    fn run(spec: &LoopSpec, layout: &MemoryLayout, program: &AddressProgram) -> CheckReport {
        check_program(spec, layout, &agu(), program, None)
    }

    fn violated(report: &CheckReport) -> Vec<&'static str> {
        report.violations().iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn clean_program_passes_every_invariant() {
        let (spec, layout) = two_register_loop();
        let report = run(&spec, &layout, &two_register_program());
        assert!(report.is_clean(), "unexpected violations: {report}");
        assert_eq!(report.invariants_checked(), INVARIANTS.len());
        assert_eq!(report.summary(), "");
    }

    #[test]
    fn expected_cycles_are_compared_when_given() {
        let (spec, layout) = two_register_loop();
        let program = two_register_program();
        let clean = check_program(&spec, &layout, &agu(), &program, Some(0));
        assert!(clean.is_clean());
        let wrong = check_program(&spec, &layout, &agu(), &program, Some(3));
        assert_eq!(violated(&wrong), ["cycle-accounting"]);
    }

    #[test]
    fn out_of_range_address_register_is_caught() {
        let (spec, layout) = two_register_loop();
        let mut program = two_register_program();
        program = AddressProgram::new(
            program.prologue().to_vec(),
            vec![
                AddressInstr::Use {
                    reg: RegId(9),
                    position: 0,
                    update: Update::Auto { delta: 1 },
                },
                AddressInstr::Use {
                    reg: RegId(1),
                    position: 1,
                    update: Update::Auto { delta: 1 },
                },
            ],
            2,
            vec![],
        );
        let report = run(&spec, &layout, &program);
        assert!(violated(&report).contains(&"ar-in-machine-range"));
    }

    #[test]
    fn out_of_range_modify_register_is_caught() {
        let (spec, layout) = two_register_loop();
        let program = AddressProgram::new(
            vec![
                AddressInstr::Lda {
                    reg: RegId(0),
                    address: 100,
                },
                AddressInstr::Lda {
                    reg: RegId(1),
                    address: 102,
                },
                AddressInstr::Ldm {
                    mr: MrId(7),
                    value: 1,
                },
            ],
            two_register_program().body().to_vec(),
            2,
            vec![],
        );
        let report = run(&spec, &layout, &program);
        assert!(violated(&report).contains(&"mr-in-machine-range"));
    }

    #[test]
    fn adda_in_prologue_is_caught() {
        let (spec, layout) = two_register_loop();
        let mut prologue = two_register_program().prologue().to_vec();
        prologue.push(AddressInstr::Adda {
            reg: RegId(0),
            delta: 1,
        });
        let program =
            AddressProgram::new(prologue, two_register_program().body().to_vec(), 2, vec![]);
        let report = run(&spec, &layout, &program);
        assert!(violated(&report).contains(&"prologue-loads-only"));
    }

    #[test]
    fn wrong_initial_address_is_caught() {
        let (spec, layout) = two_register_loop();
        let program = AddressProgram::new(
            vec![
                AddressInstr::Lda {
                    reg: RegId(0),
                    address: 100,
                },
                AddressInstr::Lda {
                    reg: RegId(1),
                    address: 101, // should be 102
                },
            ],
            two_register_program().body().to_vec(),
            2,
            vec![],
        );
        let report = run(&spec, &layout, &program);
        assert!(violated(&report).contains(&"registers-initialized"));
    }

    #[test]
    fn missing_modify_load_is_caught() {
        let (spec, layout) = two_register_loop();
        let program = AddressProgram::new(
            two_register_program().prologue().to_vec(),
            two_register_program().body().to_vec(),
            2,
            vec![5], // declared but never LDM-ed
        );
        let report = run(&spec, &layout, &program);
        assert!(violated(&report).contains(&"registers-initialized"));
    }

    #[test]
    fn permuted_use_sequence_is_caught() {
        let (spec, layout) = two_register_loop();
        let program = AddressProgram::new(
            two_register_program().prologue().to_vec(),
            vec![
                AddressInstr::Use {
                    reg: RegId(1),
                    position: 1,
                    update: Update::Auto { delta: 1 },
                },
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 0,
                    update: Update::Auto { delta: 1 },
                },
            ],
            2,
            vec![],
        );
        let report = run(&spec, &layout, &program);
        assert!(violated(&report).contains(&"use-sequence"));
    }

    #[test]
    fn oversized_auto_update_is_caught() {
        // M = 1, so an auto post-modify of +2 cannot be free.
        let mut spec = LoopSpec::new("wide", "i", 2);
        let x = spec.add_array("x", 1);
        spec.push_access(x, 0, AccessKind::Read).unwrap();
        let layout = MemoryLayout::from_bases(vec![100]);
        let program = AddressProgram::new(
            vec![AddressInstr::Lda {
                reg: RegId(0),
                address: 100,
            }],
            vec![AddressInstr::Use {
                reg: RegId(0),
                position: 0,
                update: Update::Auto { delta: 2 },
            }],
            1,
            vec![],
        );
        let report = run(&spec, &layout, &program);
        assert_eq!(violated(&report), ["free-updates-in-range"]);
    }

    #[test]
    fn uncovered_delta_is_caught_with_its_positions() {
        let (spec, layout) = two_register_loop();
        let program = AddressProgram::new(
            two_register_program().prologue().to_vec(),
            vec![
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 0,
                    update: Update::None, // drops the +1 wrap
                },
                AddressInstr::Use {
                    reg: RegId(1),
                    position: 1,
                    update: Update::Auto { delta: 1 },
                },
            ],
            2,
            vec![],
        );
        let report = run(&spec, &layout, &program);
        let names = violated(&report);
        assert!(names.contains(&"delta-coverage"));
        assert!(names.contains(&"steady-state-advance"));
        let message = &report
            .violations()
            .iter()
            .find(|v| v.invariant == "delta-coverage")
            .unwrap()
            .message;
        assert!(message.contains("AR0"), "message: {message}");
    }

    #[test]
    fn modify_register_deltas_participate_in_the_ledger() {
        // One register serving offsets 0 and 2 with M0 = +2 covering
        // the intra gap and an explicit ADDA covering the wrap (-1).
        let (spec, layout) = two_register_loop();
        let program = AddressProgram::new(
            vec![
                AddressInstr::Lda {
                    reg: RegId(0),
                    address: 100,
                },
                AddressInstr::Ldm {
                    mr: MrId(0),
                    value: 2,
                },
            ],
            vec![
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 0,
                    update: Update::Modify { mr: MrId(0) },
                },
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 1,
                    update: Update::Auto { delta: -1 },
                },
            ],
            1,
            vec![2],
        );
        let report = run(&spec, &layout, &program);
        assert!(report.is_clean(), "unexpected violations: {report}");
    }

    #[test]
    fn body_lda_poisons_the_ledger_and_is_reported() {
        let (spec, layout) = two_register_loop();
        let mut body = two_register_program().body().to_vec();
        body.push(AddressInstr::Lda {
            reg: RegId(0),
            address: 100,
        });
        let program =
            AddressProgram::new(two_register_program().prologue().to_vec(), body, 2, vec![]);
        let report = run(&spec, &layout, &program);
        assert!(violated(&report).contains(&"delta-coverage"));
    }

    /// A 2-level nest `for j in 0..3 { for i in 0..4 { x[i] } }` where
    /// x carries +10 per outer sweep.
    fn nested_loop() -> (LoopSpec, MemoryLayout) {
        let mut spec = LoopSpec::new("nested", "i", 1);
        let x = spec.add_array("x", 1);
        spec.push_access(x, 0, AccessKind::Read).unwrap();
        spec.set_nest(LoopNest::new(
            vec![NestLevel {
                var: "j".to_owned(),
                start: 0,
                stride: 1,
                trips: 3,
            }],
            4,
        ));
        spec.set_array_carries(x, vec![10]).unwrap();
        let layout = MemoryLayout::from_bases(vec![100]);
        (spec, layout)
    }

    fn nested_program(carry: i64) -> AddressProgram {
        AddressProgram::new(
            vec![AddressInstr::Lda {
                reg: RegId(0),
                address: 100,
            }],
            vec![AddressInstr::Use {
                reg: RegId(0),
                position: 0,
                update: Update::Auto { delta: 1 },
            }],
            1,
            vec![],
        )
        .with_carries(vec![raco_agu::isa::CarryBlock {
            period: 4,
            instrs: vec![AddressInstr::Adda {
                reg: RegId(0),
                delta: carry,
            }],
        }])
    }

    #[test]
    fn correct_carry_block_passes() {
        let (spec, layout) = nested_loop();
        let report = run(&spec, &layout, &nested_program(10));
        assert!(report.is_clean(), "unexpected violations: {report}");
    }

    #[test]
    fn wrong_carry_amount_is_caught() {
        let (spec, layout) = nested_loop();
        let report = run(&spec, &layout, &nested_program(9));
        assert_eq!(violated(&report), ["carry-boundaries"]);
    }

    #[test]
    fn carry_at_a_non_period_boundary_is_caught() {
        let (spec, layout) = nested_loop();
        let program = AddressProgram::new(
            nested_program(10).prologue().to_vec(),
            nested_program(10).body().to_vec(),
            1,
            vec![],
        )
        .with_carries(vec![raco_agu::isa::CarryBlock {
            period: 5, // nest periods are [4]
            instrs: vec![AddressInstr::Adda {
                reg: RegId(0),
                delta: 10,
            }],
        }]);
        let report = run(&spec, &layout, &program);
        assert!(violated(&report).contains(&"carry-boundaries"));
    }

    #[test]
    fn carry_block_on_a_flat_loop_is_caught() {
        let (spec, layout) = two_register_loop();
        let program = two_register_program().with_carries(vec![raco_agu::isa::CarryBlock {
            period: 4,
            instrs: vec![AddressInstr::Adda {
                reg: RegId(0),
                delta: 1,
            }],
        }]);
        let report = run(&spec, &layout, &program);
        assert!(violated(&report).contains(&"carry-boundaries"));
    }

    #[test]
    fn invariant_registry_is_well_formed() {
        assert!(INVARIANTS.len() >= 8);
        for invariant in INVARIANTS {
            assert!(!invariant.name.is_empty());
            assert!(!invariant.why.is_empty());
            assert!(
                invariant
                    .name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} is not kebab-case",
                invariant.name
            );
        }
        let mut names: Vec<_> = INVARIANTS.iter().map(|i| i.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), INVARIANTS.len(), "duplicate invariant names");
    }
}
