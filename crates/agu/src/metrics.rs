//! Code-size and cycle accounting for the E4 experiment.
//!
//! The paper cites (their ref \[1\], Liem/Paulin/Jerraya, DAC 1996) code
//! size improvements of up to 30 % and speed improvements of up to 60 %
//! for optimized array index computation compared to code from a regular C
//! compiler. This module provides the accounting used to reproduce that
//! *shape*: the addressing footprint of a generated [`AddressProgram`]
//! versus an explicit-addressing baseline, combined with each kernel's
//! data-path (compute) instruction count.

use crate::isa::AddressProgram;

/// The addressing footprint of one compilation of a loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramMetrics {
    prologue_words: u64,
    body_addressing_words: u64,
    addressing_cycles_per_iteration: u64,
    accesses_per_iteration: u64,
}

impl ProgramMetrics {
    /// Extracts the metrics of a generated address program.
    pub fn of(program: &AddressProgram) -> Self {
        ProgramMetrics {
            prologue_words: program.prologue_cycles(),
            body_addressing_words: program.cycles_per_iteration(),
            addressing_cycles_per_iteration: program.cycles_per_iteration(),
            accesses_per_iteration: program.uses_per_iteration() as u64,
        }
    }

    /// The explicit-addressing baseline of a "regular C compiler" without
    /// AGU optimization: every access recomputes its address in the data
    /// path — one index add plus one pointer move per access, i.e. **two
    /// instructions per access**, both in code and in every iteration.
    pub fn explicit_addressing(accesses_per_iteration: usize) -> Self {
        let n = accesses_per_iteration as u64;
        ProgramMetrics {
            prologue_words: 0,
            body_addressing_words: 2 * n,
            addressing_cycles_per_iteration: 2 * n,
            accesses_per_iteration: n,
        }
    }

    /// Builds metrics from explicit counts, for compilation models that
    /// are costed analytically instead of through generated code (e.g.
    /// the naive per-array chaining baseline of experiment E4).
    pub fn synthetic(
        prologue_words: u64,
        body_addressing_words: u64,
        accesses_per_iteration: u64,
    ) -> Self {
        ProgramMetrics {
            prologue_words,
            body_addressing_words,
            addressing_cycles_per_iteration: body_addressing_words,
            accesses_per_iteration,
        }
    }

    /// One-time addressing words (register initialization).
    pub fn prologue_words(&self) -> u64 {
        self.prologue_words
    }

    /// Addressing words inside the loop body.
    pub fn body_addressing_words(&self) -> u64 {
        self.body_addressing_words
    }

    /// Addressing cycles added to every iteration.
    pub fn addressing_cycles_per_iteration(&self) -> u64 {
        self.addressing_cycles_per_iteration
    }

    /// Accesses per iteration.
    pub fn accesses_per_iteration(&self) -> u64 {
        self.accesses_per_iteration
    }

    /// Total code words of the loop, given the kernel's data-path
    /// instruction count per iteration.
    pub fn code_words(&self, compute_words_per_iteration: u64) -> u64 {
        self.prologue_words + self.body_addressing_words + compute_words_per_iteration
    }

    /// Total cycles over `iterations`, given the kernel's data-path
    /// instruction count per iteration (prologue amortized once).
    pub fn cycles(&self, compute_cycles_per_iteration: u64, iterations: u64) -> u64 {
        self.prologue_words
            + iterations * (self.addressing_cycles_per_iteration + compute_cycles_per_iteration)
    }
}

/// Relative improvement of `optimized` over `baseline`, in percent
/// (positive = optimized is better/smaller).
///
/// # Examples
///
/// ```
/// use raco_agu::metrics::improvement_percent;
/// assert_eq!(improvement_percent(100, 70), 30.0);
/// assert_eq!(improvement_percent(0, 0), 0.0);
/// ```
pub fn improvement_percent(baseline: u64, optimized: u64) -> f64 {
    if baseline == 0 {
        return 0.0;
    }
    (baseline as f64 - optimized as f64) / baseline as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::CodeGenerator;
    use raco_core::Optimizer;
    use raco_ir::{examples, AguSpec, MemoryLayout};

    #[test]
    fn explicit_baseline_is_two_instructions_per_access() {
        let m = ProgramMetrics::explicit_addressing(7);
        assert_eq!(m.body_addressing_words(), 14);
        assert_eq!(m.addressing_cycles_per_iteration(), 14);
        assert_eq!(m.prologue_words(), 0);
        assert_eq!(m.accesses_per_iteration(), 7);
    }

    #[test]
    fn optimized_paper_loop_beats_the_baseline() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(3, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        let opt = ProgramMetrics::of(&program);
        let base = ProgramMetrics::explicit_addressing(7);

        let compute = 7; // one data-path op per access, say
        let iterations = 256;
        assert!(opt.code_words(compute) < base.code_words(compute));
        assert!(opt.cycles(compute, iterations) < base.cycles(compute, iterations));

        // Speed improvement: (7 + 14) vs (7 + 0) per iteration → 66 %.
        let speedup = improvement_percent(
            base.cycles(compute, iterations),
            opt.cycles(compute, iterations),
        );
        assert!(speedup > 60.0, "speedup was {speedup:.1} %");
    }

    #[test]
    fn improvement_percent_edge_cases() {
        assert_eq!(improvement_percent(200, 100), 50.0);
        assert!(
            improvement_percent(100, 130) < 0.0,
            "regressions are negative"
        );
        assert_eq!(improvement_percent(0, 5), 0.0);
    }

    #[test]
    fn cycles_amortize_the_prologue() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(3, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        let m = ProgramMetrics::of(&program);
        assert_eq!(m.cycles(10, 1), m.prologue_words() + 10);
        assert_eq!(m.cycles(10, 100), m.prologue_words() + 100 * 10);
    }
}
