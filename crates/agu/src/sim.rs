//! Cycle-accurate simulation of address programs.
//!
//! The simulator is the ground truth of the whole pipeline: it executes an
//! [`AddressProgram`] iteration by iteration against a reference
//! [`Trace`] and fails loudly if any access is served with a wrong
//! address, if a "free" update exceeds the machine's capabilities, or if
//! the program uses more registers than the machine has. Integration and
//! property tests assert that the allocator-predicted cost equals the
//! simulator-measured explicit update count.

use std::fmt;

use raco_ir::{AguSpec, Trace, UpdateRange};

use crate::isa::{AddressInstr, AddressProgram, Update};

/// Errors detected while simulating.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The program needs more address registers than the machine has.
    TooManyAddressRegisters {
        /// Registers the program uses.
        needed: usize,
        /// Registers available.
        available: usize,
    },
    /// The program needs more modify registers than the machine has.
    TooManyModifyRegisters {
        /// Modify registers the program loads.
        needed: usize,
        /// Modify registers available.
        available: usize,
    },
    /// A `USE` read the wrong address.
    AddressMismatch {
        /// Iteration of the failing access.
        iteration: u64,
        /// Sequence position of the failing access.
        position: usize,
        /// Address the trace expects.
        expected: i64,
        /// Address the register held.
        got: i64,
    },
    /// An `Auto` post-modify exceeded the auto-modify range.
    FreeDeltaViolation {
        /// The offending delta.
        delta: i64,
        /// The machine's free update window.
        range: UpdateRange,
    },
    /// A `USE` referenced a register the program never declared.
    UnknownRegister {
        /// The register index.
        reg: u16,
    },
    /// A `Modify` update referenced an unloaded modify register.
    UnknownModifyRegister {
        /// The modify register index.
        mr: u16,
    },
    /// The accesses of one iteration were not served in sequence order
    /// `0, 1, 2, …`.
    PositionOrderViolation {
        /// Iteration in which the order broke.
        iteration: u64,
        /// Position that was expected next.
        expected: usize,
        /// Position actually served.
        got: usize,
    },
    /// An iteration served fewer accesses than the trace contains.
    IncompleteIteration {
        /// The incomplete iteration.
        iteration: u64,
        /// Accesses served.
        served: usize,
        /// Accesses expected.
        expected: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooManyAddressRegisters { needed, available } => write!(
                f,
                "program uses {needed} address registers, machine has {available}"
            ),
            SimError::TooManyModifyRegisters { needed, available } => write!(
                f,
                "program loads {needed} modify registers, machine has {available}"
            ),
            SimError::AddressMismatch {
                iteration,
                position,
                expected,
                got,
            } => write!(
                f,
                "iteration {iteration}, access a_{}: expected address {expected:#x}, register held {got:#x}",
                position + 1
            ),
            SimError::FreeDeltaViolation { delta, range } => write!(
                f,
                "auto-modify by {delta} exceeds the machine range M = {range}"
            ),
            SimError::UnknownRegister { reg } => write!(f, "unknown address register AR{reg}"),
            SimError::UnknownModifyRegister { mr } => {
                write!(f, "unknown modify register M{mr}")
            }
            SimError::PositionOrderViolation {
                iteration,
                expected,
                got,
            } => write!(
                f,
                "iteration {iteration}: expected access a_{}, program served a_{}",
                expected + 1,
                got + 1
            ),
            SimError::IncompleteIteration {
                iteration,
                served,
                expected,
            } => write!(
                f,
                "iteration {iteration} served {served} of {expected} accesses"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Statistics of a successful simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimReport {
    iterations: u64,
    accesses_checked: u64,
    prologue_cycles: u64,
    explicit_updates_per_iteration: u64,
    carry_cycles: u64,
    total_addressing_cycles: u64,
}

impl SimReport {
    /// Iterations executed.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Accesses validated against the trace.
    pub fn accesses_checked(&self) -> u64 {
        self.accesses_checked
    }

    /// One-time addressing cycles spent in the prologue.
    pub fn prologue_cycles(&self) -> u64 {
        self.prologue_cycles
    }

    /// Explicit (unit-cost) address computations per iteration — the
    /// quantity the paper's algorithm minimizes. Outer-loop carry
    /// updates of flattened nests are counted separately (they amortize
    /// over whole inner sweeps): see
    /// [`carry_cycles`](Self::carry_cycles).
    pub fn explicit_updates_per_iteration(&self) -> u64 {
        self.explicit_updates_per_iteration
    }

    /// Addressing cycles spent in outer-loop carry blocks over the whole
    /// run (zero for plain single loops).
    pub fn carry_cycles(&self) -> u64 {
        self.carry_cycles
    }

    /// Total addressing cycles over the whole run
    /// (prologue + per-iteration updates + carry blocks).
    pub fn total_addressing_cycles(&self) -> u64 {
        self.total_addressing_cycles
    }
}

/// Executes `program` against `trace` on machine `agu`.
///
/// Runs `trace.iterations()` iterations and checks every access address.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered; the report is only produced
/// for a fully verified run.
pub fn run(program: &AddressProgram, trace: &Trace, agu: &AguSpec) -> Result<SimReport, SimError> {
    if program.address_registers() > agu.address_registers() {
        return Err(SimError::TooManyAddressRegisters {
            needed: program.address_registers(),
            available: agu.address_registers(),
        });
    }
    if program.modify_values().len() > agu.modify_registers() {
        return Err(SimError::TooManyModifyRegisters {
            needed: program.modify_values().len(),
            available: agu.modify_registers(),
        });
    }

    let mut regs = vec![0i64; program.address_registers()];
    let mut mrs = vec![0i64; program.modify_values().len()];
    let mut prologue_cycles = 0;
    for instr in program.prologue() {
        step(
            instr,
            &mut regs,
            &mut mrs,
            agu,
            None,
            0,
            &mut prologue_cycles,
        )?;
    }

    let per_iter = trace.accesses_per_iteration();
    let mut accesses_checked = 0u64;
    let mut explicit_per_iter = 0u64;
    let mut carry_cycles = 0u64;
    for iteration in 0..trace.iterations() {
        let mut next_position = 0usize;
        let mut explicit_this_iter = 0u64;
        for instr in program.body() {
            step(
                instr,
                &mut regs,
                &mut mrs,
                agu,
                Some((trace, iteration, &mut next_position)),
                iteration,
                &mut explicit_this_iter,
            )?;
        }
        if next_position != per_iter {
            return Err(SimError::IncompleteIteration {
                iteration,
                served: next_position,
                expected: per_iter,
            });
        }
        accesses_checked += next_position as u64;
        explicit_per_iter = explicit_this_iter;
        // Outer-loop carry blocks of a flattened nest run *between*
        // inner sweeps: after every `period`-th iteration, except past
        // the final simulated one (no further access consumes the
        // adjustment, so it would only inflate carry_cycles).
        if iteration + 1 < trace.iterations() {
            for block in program.carries() {
                if block.period > 0 && (iteration + 1) % block.period == 0 {
                    for instr in &block.instrs {
                        step(
                            instr,
                            &mut regs,
                            &mut mrs,
                            agu,
                            None,
                            iteration,
                            &mut carry_cycles,
                        )?;
                    }
                }
            }
        }
    }

    Ok(SimReport {
        iterations: trace.iterations(),
        accesses_checked,
        prologue_cycles,
        explicit_updates_per_iteration: explicit_per_iter,
        carry_cycles,
        total_addressing_cycles: prologue_cycles
            + trace.iterations() * explicit_per_iter
            + carry_cycles,
    })
}

fn step(
    instr: &AddressInstr,
    regs: &mut [i64],
    mrs: &mut [i64],
    agu: &AguSpec,
    trace_ctx: Option<(&Trace, u64, &mut usize)>,
    iteration: u64,
    explicit: &mut u64,
) -> Result<(), SimError> {
    // Explicit instructions are charged at the machine's per-opcode
    // price, so measured cycles stay comparable to the (scaled)
    // allocator prediction on non-unit-cost machines.
    match instr {
        AddressInstr::Lda { reg, address } => {
            let slot = regs
                .get_mut(usize::from(reg.0))
                .ok_or(SimError::UnknownRegister { reg: reg.0 })?;
            *slot = *address;
            *explicit += instr.cycles_with(&agu.cost_table());
        }
        AddressInstr::Ldm { mr, value } => {
            let slot = mrs
                .get_mut(usize::from(mr.0))
                .ok_or(SimError::UnknownModifyRegister { mr: mr.0 })?;
            *slot = *value;
            *explicit += instr.cycles_with(&agu.cost_table());
        }
        AddressInstr::Adda { reg, delta } => {
            let slot = regs
                .get_mut(usize::from(reg.0))
                .ok_or(SimError::UnknownRegister { reg: reg.0 })?;
            *slot += delta;
            *explicit += instr.cycles_with(&agu.cost_table());
        }
        AddressInstr::Use {
            reg,
            position,
            update,
        } => {
            let value = *regs
                .get(usize::from(reg.0))
                .ok_or(SimError::UnknownRegister { reg: reg.0 })?;
            if let Some((trace, iter, next_position)) = trace_ctx {
                if *position != *next_position {
                    return Err(SimError::PositionOrderViolation {
                        iteration: iter,
                        expected: *next_position,
                        got: *position,
                    });
                }
                let entry = trace
                    .entry(iter, *position)
                    .ok_or(SimError::IncompleteIteration {
                        iteration: iter,
                        served: *next_position,
                        expected: trace.accesses_per_iteration(),
                    })?;
                if entry.address != value {
                    return Err(SimError::AddressMismatch {
                        iteration: iter,
                        position: *position,
                        expected: entry.address,
                        got: value,
                    });
                }
                *next_position += 1;
            }
            // Apply the free post-modify.
            let delta = match update {
                Update::None => 0,
                Update::Auto { delta } => {
                    if !agu.is_free_delta(*delta) {
                        return Err(SimError::FreeDeltaViolation {
                            delta: *delta,
                            range: agu.update_range(),
                        });
                    }
                    *delta
                }
                Update::Modify { mr } => *mrs
                    .get(usize::from(mr.0))
                    .ok_or(SimError::UnknownModifyRegister { mr: mr.0 })?,
            };
            regs[usize::from(reg.0)] += delta;
            let _ = iteration;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::CodeGenerator;
    use crate::isa::{MrId, RegId};
    use raco_core::Optimizer;
    use raco_ir::{examples, MemoryLayout};

    fn simulate_paper(k: usize, iterations: u64) -> SimReport {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(k, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0x100, 256);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        let trace = Trace::capture(&spec, &layout, iterations);
        run(&program, &trace, &agu).expect("verified run")
    }

    #[test]
    fn zero_cost_scheme_verifies_with_zero_updates() {
        let report = simulate_paper(3, 25);
        assert_eq!(report.iterations(), 25);
        assert_eq!(report.accesses_checked(), 25 * 7);
        assert_eq!(report.explicit_updates_per_iteration(), 0);
        assert_eq!(report.prologue_cycles(), 3);
        assert_eq!(report.total_addressing_cycles(), 3);
    }

    #[test]
    fn constrained_scheme_measures_the_allocated_cost() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(2, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let report = simulate_paper(2, 10);
        assert_eq!(
            report.explicit_updates_per_iteration(),
            u64::from(alloc.total_cost()),
            "simulator-measured updates must equal the predicted cost"
        );
    }

    #[test]
    fn wrong_base_address_is_caught() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(3, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0x100, 256);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        // Trace captured with a *different* layout.
        let wrong = MemoryLayout::contiguous(&spec, 0x200, 256);
        let trace = Trace::capture(&spec, &wrong, 4);
        let err = run(&program, &trace, &agu).unwrap_err();
        assert!(matches!(
            err,
            SimError::AddressMismatch { iteration: 0, .. }
        ));
    }

    #[test]
    fn over_range_auto_updates_are_rejected() {
        let agu = AguSpec::new(1, 1).unwrap();
        let spec = examples::paper_loop();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let trace = Trace::capture(&spec, &layout, 1);
        let program = AddressProgram::new(
            vec![AddressInstr::Lda {
                reg: RegId(0),
                address: 3,
            }],
            vec![AddressInstr::Use {
                reg: RegId(0),
                position: 0,
                update: Update::Auto { delta: 5 },
            }],
            1,
            vec![],
        );
        let err = run(&program, &trace, &agu).unwrap_err();
        assert_eq!(
            err,
            SimError::FreeDeltaViolation {
                delta: 5,
                range: UpdateRange::symmetric(1)
            }
        );
    }

    #[test]
    fn register_budget_violations_are_rejected() {
        let spec = examples::paper_loop();
        let agu_big = AguSpec::new(3, 1).unwrap();
        let agu_small = AguSpec::new(2, 1).unwrap();
        let alloc = Optimizer::new(agu_big).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let program = CodeGenerator::new(agu_big)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        let trace = Trace::capture(&spec, &layout, 1);
        assert_eq!(
            run(&program, &trace, &agu_small).unwrap_err(),
            SimError::TooManyAddressRegisters {
                needed: 3,
                available: 2
            }
        );
    }

    #[test]
    fn modify_register_budget_is_checked() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(1, 1).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let trace = Trace::capture(&spec, &layout, 1);
        let program = AddressProgram::new(
            vec![AddressInstr::Ldm {
                mr: MrId(0),
                value: 9,
            }],
            vec![],
            1,
            vec![9],
        );
        assert_eq!(
            run(&program, &trace, &agu).unwrap_err(),
            SimError::TooManyModifyRegisters {
                needed: 1,
                available: 0
            }
        );
    }

    #[test]
    fn incomplete_iterations_are_detected() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(1, 1).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let trace = Trace::capture(&spec, &layout, 1);
        // Body serves only access 0.
        let program = AddressProgram::new(
            vec![AddressInstr::Lda {
                reg: RegId(0),
                address: 3, // A[i+1] at i = 2, base 0
            }],
            vec![AddressInstr::Use {
                reg: RegId(0),
                position: 0,
                update: Update::Auto { delta: 0 },
            }],
            1,
            vec![],
        );
        let err = run(&program, &trace, &agu).unwrap_err();
        assert_eq!(
            err,
            SimError::IncompleteIteration {
                iteration: 0,
                served: 1,
                expected: 7
            }
        );
    }

    #[test]
    fn out_of_order_positions_are_detected() {
        let spec = examples::paper_loop();
        let agu = AguSpec::new(1, 1).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let trace = Trace::capture(&spec, &layout, 1);
        let program = AddressProgram::new(
            vec![AddressInstr::Lda {
                reg: RegId(0),
                address: 2,
            }],
            vec![AddressInstr::Use {
                reg: RegId(0),
                position: 1,
                update: Update::None,
            }],
            1,
            vec![],
        );
        let err = run(&program, &trace, &agu).unwrap_err();
        assert_eq!(
            err,
            SimError::PositionOrderViolation {
                iteration: 0,
                expected: 0,
                got: 1
            }
        );
    }

    #[test]
    fn modify_register_updates_verify_end_to_end() {
        let spec = examples::scattered();
        let agu = AguSpec::new(2, 1).unwrap().with_modify_registers(2);
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 256);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        let trace = Trace::capture(&spec, &layout, 12);
        let report = run(&program, &trace, &agu).expect("verified run");
        assert_eq!(report.accesses_checked(), 12 * 4);
        // Modify registers eliminate some explicit updates vs the plain
        // machine.
        let plain = AguSpec::new(2, 1).unwrap();
        let plain_program = CodeGenerator::new(plain)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        let plain_report = run(&plain_program, &trace, &plain).expect("verified run");
        assert!(
            report.explicit_updates_per_iteration() < plain_report.explicit_updates_per_iteration()
        );
    }

    #[test]
    fn nested_loops_simulate_with_carry_blocks() {
        // A transpose: the write side walks a column (stride 8) and must
        // jump back 63 at every row boundary — the carry block.
        let spec = raco_ir::dsl::parse_loop(
            "array a[8][8]; array b[8][8];
             for (i = 0; i < 8; i++) { for (j = 0; j < 8; j++) { b[j][i] = a[i][j]; } }",
        )
        .unwrap();
        let agu = AguSpec::new(2, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0x100, 64);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        assert!(
            !program.carries().is_empty(),
            "transposed writes need a carry block"
        );
        // Simulate the entire nest: every address checks out, including
        // across row boundaries.
        let trace = Trace::capture(&spec, &layout, u64::MAX);
        let report = run(&program, &trace, &agu).expect("verified run");
        assert_eq!(report.iterations(), 64);
        assert_eq!(report.accesses_checked(), 64 * 2);
        // One ADDA per boundary: 7 row boundaries *between* the 8
        // sweeps (the adjustment after the final sweep is skipped —
        // nothing consumes it).
        assert_eq!(report.carry_cycles(), 7);
        assert_eq!(
            report.total_addressing_cycles(),
            report.prologue_cycles()
                + 64 * report.explicit_updates_per_iteration()
                + report.carry_cycles()
        );
    }

    #[test]
    fn contiguous_nests_need_no_carry_blocks() {
        // Row stride equals the inner sweep: flattening is exact and the
        // program is indistinguishable from a long single loop.
        let spec = raco_ir::dsl::parse_loop(
            "array y[4][8];
             for (i = 0; i < 4; i++) { for (j = 0; j < 8; j++) { y[i][j] = j; } }",
        )
        .unwrap();
        let agu = AguSpec::new(1, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0, 64);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        assert!(program.carries().is_empty());
        let trace = Trace::capture(&spec, &layout, u64::MAX);
        let report = run(&program, &trace, &agu).expect("verified run");
        assert_eq!(report.iterations(), 32);
        assert_eq!(report.carry_cycles(), 0);
    }

    #[test]
    fn negative_stride_loops_simulate_correctly() {
        let spec = raco_ir::dsl::parse_loop("for (i = 63; i > 0; i--) { s += h[63 - i] * x[i]; }")
            .unwrap();
        let agu = AguSpec::new(2, 1).unwrap();
        let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0x40, 128);
        let program = CodeGenerator::new(agu)
            .generate(&spec, &alloc, &layout)
            .unwrap();
        let trace = Trace::capture(&spec, &layout, 30);
        let report = run(&program, &trace, &agu).expect("verified run");
        assert_eq!(report.accesses_checked(), 60);
        assert_eq!(report.explicit_updates_per_iteration(), 0);
    }
}
