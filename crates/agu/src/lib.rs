//! # raco-agu — address-generation-unit code generation and simulation
//!
//! This crate turns an allocation computed by `raco-core` into executable
//! *address code* for the AGU machine model of the paper, and validates it
//! end to end:
//!
//! * [`isa`] — the address instruction set: `LDA` (load address register),
//!   `ADDA` (explicit, unit-cost update), `LDM` (load modify register) and
//!   `USE` (the memory access itself, with an optional **free** post-modify
//!   within `|d| <= M` or through a modify register);
//! * [`codegen`] — generates a loop's address program from a
//!   [`LoopAllocation`](raco_core::Allocation) and a
//!   [`MemoryLayout`](raco_ir::MemoryLayout);
//! * [`modify`] — frequency-based allocation of over-range deltas to
//!   modify registers (the machine extension of Araujo et al., the paper's
//!   ref \[2\]; experiment E7);
//! * [`sim`] — a cycle-accurate simulator that executes the address
//!   program against a reference [`Trace`](raco_ir::Trace) and asserts
//!   every access hits the right address;
//! * [`listing`] — assembly of many per-loop programs into one unit
//!   listing (the batch driver's output format);
//! * [`metrics`] — code-size and cycle accounting, including the
//!   explicit-addressing baseline of a "regular C compiler" used by
//!   experiment E4.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use raco_agu::{codegen::CodeGenerator, sim};
//! use raco_core::Optimizer;
//! use raco_ir::{examples, AguSpec, MemoryLayout, Trace};
//!
//! let spec = examples::paper_loop();
//! let agu = AguSpec::new(3, 1)?;
//! let alloc = Optimizer::new(agu).allocate_loop(&spec)?;
//! let layout = MemoryLayout::contiguous(&spec, 0x100, 256);
//!
//! let program = CodeGenerator::new(agu).generate(&spec, &alloc, &layout)?;
//! let trace = Trace::capture(&spec, &layout, 16);
//! let report = sim::run(&program, &trace, &agu)?;
//! assert_eq!(report.explicit_updates_per_iteration(), 0); // K̃ = 3 <= K
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codegen;
pub mod isa;
pub mod listing;
pub mod metrics;
pub mod modify;
pub mod peephole;
pub mod sim;

pub use codegen::{CodeGenError, CodeGenerator};
pub use isa::{AddressInstr, AddressProgram, MrId, RegId, Update};
pub use listing::ProgramListing;
pub use metrics::ProgramMetrics;
pub use modify::ModifyAllocation;
pub use sim::{SimError, SimReport};
