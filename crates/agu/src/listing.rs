//! Multi-loop listing assembly.
//!
//! A batch compilation produces one [`AddressProgram`] per loop; real
//! DSP toolchains emit them back to back into a single program listing
//! with per-section headers and a trailer summarizing the whole unit.
//! This module renders that listing: sections in input order, each with
//! its loop label, register/modify-register usage and cost line, then a
//! unit-wide summary suitable for code-size reports.

use std::fmt;

use crate::isa::AddressProgram;

/// One named section of a [`ProgramListing`].
#[derive(Debug, Clone)]
pub struct ListingSection {
    name: String,
    program: AddressProgram,
}

impl ListingSection {
    /// A section named `name` (usually the loop label) for `program`.
    pub fn new(name: impl Into<String>, program: AddressProgram) -> Self {
        ListingSection {
            name: name.into(),
            program,
        }
    }

    /// The section label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The section's address program.
    pub fn program(&self) -> &AddressProgram {
        &self.program
    }
}

/// An assembled multi-loop listing.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use raco_agu::codegen::CodeGenerator;
/// use raco_agu::listing::ProgramListing;
/// use raco_core::Optimizer;
/// use raco_ir::{dsl, AguSpec, MemoryLayout};
///
/// let agu = AguSpec::new(3, 1)?;
/// let mut listing = ProgramListing::new("unit");
/// for spec in dsl::parse_program(
///     "for (i = 0; i < 8; i++) { y[i] = x[i]; }
///      for (j = 0; j < 4; j++) { z[j] = z[j] + 1; }",
/// )? {
///     let alloc = Optimizer::new(agu).allocate_loop(&spec)?;
///     let layout = MemoryLayout::contiguous(&spec, 0x100, 64);
///     let program = CodeGenerator::new(agu).generate(&spec, &alloc, &layout)?;
///     listing.push(spec.name(), program);
/// }
/// let text = listing.to_string();
/// assert!(text.contains("loop0:"));
/// assert!(text.contains("loop1:"));
/// assert!(text.contains("; unit total"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramListing {
    unit: String,
    sections: Vec<ListingSection>,
}

impl ProgramListing {
    /// An empty listing for a compilation unit labelled `unit`.
    pub fn new(unit: impl Into<String>) -> Self {
        ProgramListing {
            unit: unit.into(),
            sections: Vec::new(),
        }
    }

    /// Appends one loop's program.
    pub fn push(&mut self, name: impl Into<String>, program: AddressProgram) -> &mut Self {
        self.sections.push(ListingSection::new(name, program));
        self
    }

    /// The unit label.
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// The sections in input order.
    pub fn sections(&self) -> &[ListingSection] {
        &self.sections
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// `true` if no section was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Total address-code words across all sections (prologues + bodies).
    pub fn total_words(&self) -> u64 {
        self.sections.iter().map(|s| s.program.words()).sum()
    }

    /// Peak address registers across sections: registers are
    /// re-initialized between loops, so a unit needs only the largest
    /// per-section count, not their sum.
    pub fn peak_registers(&self) -> usize {
        self.sections
            .iter()
            .map(|s| s.program.address_registers())
            .max()
            .unwrap_or(0)
    }

    /// Total extra addressing cycles per one iteration of every loop.
    pub fn total_cycles_per_iteration(&self) -> u64 {
        self.sections
            .iter()
            .map(|s| s.program.cycles_per_iteration())
            .sum()
    }
}

impl fmt::Display for ProgramListing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "; ==== unit `{}` ({} loops) ====", self.unit, self.len())?;
        for section in &self.sections {
            let p = &section.program;
            writeln!(f)?;
            writeln!(
                f,
                "{}:  ; {} register(s), {} modify register(s), {} word(s)",
                section.name,
                p.address_registers(),
                p.modify_values().len(),
                p.words()
            )?;
            // The per-program Display already renders prologue + body
            // with comments; indent it under the section label.
            for line in p.to_string().lines() {
                writeln!(f, "{line}")?;
            }
        }
        writeln!(f)?;
        writeln!(
            f,
            "; unit total: {} word(s), peak {} register(s), {} extra cycle(s)/iteration",
            self.total_words(),
            self.peak_registers(),
            self.total_cycles_per_iteration()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::CodeGenerator;
    use raco_core::Optimizer;
    use raco_ir::{dsl, AguSpec, MemoryLayout};

    fn listing_for(source: &str) -> ProgramListing {
        let agu = AguSpec::new(4, 1).unwrap();
        let mut listing = ProgramListing::new("test-unit");
        for spec in dsl::parse_program(source).unwrap() {
            let alloc = Optimizer::new(agu).allocate_loop(&spec).unwrap();
            let layout = MemoryLayout::contiguous(&spec, 0x400, 128);
            let program = CodeGenerator::new(agu)
                .generate(&spec, &alloc, &layout)
                .unwrap();
            listing.push(spec.name(), program);
        }
        listing
    }

    #[test]
    fn sections_render_in_order_with_labels() {
        let listing = listing_for(
            "for (i = 0; i < 8; i++) { y[i] = x[i]; }
             for (j = 4; j > 0; j--) { s += w[j]; }",
        );
        assert_eq!(listing.len(), 2);
        assert!(!listing.is_empty());
        let text = listing.to_string();
        let pos0 = text.find("loop0:").expect("first section label");
        let pos1 = text.find("loop1:").expect("second section label");
        assert!(pos0 < pos1);
        assert!(text.contains("; prologue"));
        assert!(text.contains("; unit total"));
    }

    #[test]
    fn totals_aggregate_sections() {
        let listing = listing_for(
            "for (i = 0; i < 8; i++) { y[i] = x[i]; }
             for (j = 0; j < 8; j++) { a[j] = a[j] + b[j]; }",
        );
        let words: u64 = listing.sections().iter().map(|s| s.program().words()).sum();
        assert_eq!(listing.total_words(), words);
        assert!(listing.peak_registers() >= 2);
        assert_eq!(listing.unit(), "test-unit");
        assert_eq!(listing.sections()[0].name(), "loop0");
    }

    #[test]
    fn empty_listing_has_zero_totals() {
        let listing = ProgramListing::new("empty");
        assert_eq!(listing.total_words(), 0);
        assert_eq!(listing.peak_registers(), 0);
        assert_eq!(listing.total_cycles_per_iteration(), 0);
        assert!(listing.to_string().contains("0 loops"));
    }
}
