//! Peephole optimization of address programs.
//!
//! The code generator emits tight programs, but address programs can also
//! be assembled by hand or by composing passes — this module cleans up
//! the classic slack patterns while provably preserving semantics (the
//! test suite simulates before/after against the same trace):
//!
//! 1. `ADDA r, #0` is dropped;
//! 2. consecutive `ADDA r, #a; ADDA r, #b` (no intervening use of `r`)
//!    combine into one update;
//! 3. an `ADDA r, #d` directly after `USE *r` with no post-modify is
//!    folded into the access as a free auto-modify when `|d| <= M`, or
//!    into a modify-register update when some `M<i>` holds `d`;
//! 4. a prologue `LDA r, #x` shadowed by a later prologue `LDA r, #y`
//!    (with no use of `r` in between — always true in a prologue) is
//!    dropped.

use std::sync::{Arc, OnceLock};

use raco_ir::AguSpec;
use raco_obs::Histogram;

use crate::isa::{AddressInstr, AddressProgram, MrId, Update};

/// Global latency histogram for peephole runs, resolved once (metric
/// `agu.peephole`, nanoseconds) so the per-codegen hot path skips the
/// registry lookup.
fn peephole_histogram() -> &'static Arc<Histogram> {
    static HISTOGRAM: OnceLock<Arc<Histogram>> = OnceLock::new();
    HISTOGRAM.get_or_init(|| raco_obs::global().histogram("agu.peephole"))
}

/// What a peephole run changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeepholeStats {
    /// `ADDA #0` and shadowed `LDA` instructions removed.
    pub removed: usize,
    /// Adjacent `ADDA` pairs combined.
    pub combined: usize,
    /// `ADDA`s folded into a preceding `USE` as free updates.
    pub folded: usize,
}

impl PeepholeStats {
    /// Total word savings of the run.
    pub fn words_saved(&self) -> usize {
        self.removed + self.combined + self.folded
    }
}

/// Optimizes `program` for `agu`, returning the cleaned program and what
/// changed. Semantics are preserved exactly: the same registers hold the
/// same values at every `USE`.
pub fn optimize(program: &AddressProgram, agu: &AguSpec) -> (AddressProgram, PeepholeStats) {
    // Latency lands in the global `agu.peephole` histogram (ns); the
    // pass has no pipeline wiring of its own, so it times itself.
    let _span = raco_obs::SpanTimer::new(Arc::clone(peephole_histogram()));
    let mut stats = PeepholeStats::default();
    let prologue = clean_prologue(program.prologue(), &mut stats);
    let mut body = program.body().to_vec();
    // Iterate to a fixed point: folding can expose new combinations.
    loop {
        let before = stats;
        body = drop_zero_addas(body, &mut stats);
        body = combine_adjacent_addas(body, &mut stats);
        body = fold_addas_into_uses(body, agu, program.modify_values(), &mut stats);
        if stats == before {
            break;
        }
    }
    (
        // Carry blocks pass through untouched: they are already one
        // minimal ADDA per register and run between iterations, where
        // none of the body patterns apply.
        AddressProgram::new(
            prologue,
            body,
            program.address_registers(),
            program.modify_values().to_vec(),
        )
        .with_carries(program.carries().to_vec()),
        stats,
    )
}

fn clean_prologue(prologue: &[AddressInstr], stats: &mut PeepholeStats) -> Vec<AddressInstr> {
    // Keep only the *last* LDA/LDM per destination; order of survivors is
    // preserved. Prologues contain no USEs, so this is always safe.
    let mut out: Vec<AddressInstr> = Vec::with_capacity(prologue.len());
    for (idx, instr) in prologue.iter().enumerate() {
        let shadowed = match instr {
            AddressInstr::Lda { reg, .. } => prologue[idx + 1..]
                .iter()
                .any(|later| matches!(later, AddressInstr::Lda { reg: r2, .. } if r2 == reg)),
            AddressInstr::Ldm { mr, .. } => prologue[idx + 1..]
                .iter()
                .any(|later| matches!(later, AddressInstr::Ldm { mr: m2, .. } if m2 == mr)),
            _ => false,
        };
        if shadowed {
            stats.removed += 1;
        } else {
            out.push(*instr);
        }
    }
    out
}

fn drop_zero_addas(body: Vec<AddressInstr>, stats: &mut PeepholeStats) -> Vec<AddressInstr> {
    let before = body.len();
    let out: Vec<AddressInstr> = body
        .into_iter()
        .filter(|i| !matches!(i, AddressInstr::Adda { delta: 0, .. }))
        .collect();
    stats.removed += before - out.len();
    out
}

fn combine_adjacent_addas(body: Vec<AddressInstr>, stats: &mut PeepholeStats) -> Vec<AddressInstr> {
    let mut out: Vec<AddressInstr> = Vec::with_capacity(body.len());
    for instr in body {
        if let AddressInstr::Adda { reg, delta } = instr {
            if let Some(AddressInstr::Adda {
                reg: prev_reg,
                delta: prev_delta,
            }) = out.last().copied()
            {
                if prev_reg == reg {
                    out.pop();
                    stats.combined += 1;
                    let sum = prev_delta + delta;
                    if sum != 0 {
                        out.push(AddressInstr::Adda { reg, delta: sum });
                    } else {
                        stats.removed += 1;
                    }
                    continue;
                }
            }
        }
        out.push(instr);
    }
    out
}

fn fold_addas_into_uses(
    body: Vec<AddressInstr>,
    agu: &AguSpec,
    modify_values: &[i64],
    stats: &mut PeepholeStats,
) -> Vec<AddressInstr> {
    let mut out: Vec<AddressInstr> = Vec::with_capacity(body.len());
    for instr in body {
        if let AddressInstr::Adda { reg, delta } = instr {
            if let Some(AddressInstr::Use {
                reg: use_reg,
                position,
                update: Update::None,
            }) = out.last().copied()
            {
                if use_reg == reg {
                    let folded = if agu.is_free_delta(delta) {
                        Some(Update::Auto { delta })
                    } else {
                        modify_values
                            .iter()
                            .position(|&v| v == delta)
                            .map(|mr| Update::Modify {
                                mr: MrId(mr as u16),
                            })
                    };
                    if let Some(update) = folded {
                        out.pop();
                        out.push(AddressInstr::Use {
                            reg,
                            position,
                            update,
                        });
                        stats.folded += 1;
                        continue;
                    }
                }
            }
        }
        out.push(instr);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::RegId;
    use crate::sim;
    use raco_ir::{dsl, MemoryLayout, Trace};

    fn agu() -> AguSpec {
        AguSpec::new(2, 1).unwrap()
    }

    #[test]
    fn zero_addas_are_dropped() {
        let program = AddressProgram::new(
            vec![],
            vec![
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: 0,
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: 3,
                },
            ],
            1,
            vec![],
        );
        let (opt, stats) = optimize(&program, &agu());
        assert_eq!(opt.body().len(), 1);
        assert_eq!(stats.removed, 1);
    }

    #[test]
    fn adjacent_addas_combine_and_cancel() {
        let program = AddressProgram::new(
            vec![],
            vec![
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: 5,
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: -5,
                },
                AddressInstr::Adda {
                    reg: RegId(1),
                    delta: 2,
                },
                AddressInstr::Adda {
                    reg: RegId(1),
                    delta: 3,
                },
            ],
            2,
            vec![],
        );
        let (opt, stats) = optimize(&program, &agu());
        assert_eq!(
            opt.body(),
            &[AddressInstr::Adda {
                reg: RegId(1),
                delta: 5
            }]
        );
        assert_eq!(stats.combined, 2);
        assert_eq!(stats.removed, 1, "the cancelled pair disappears");
    }

    #[test]
    fn addas_fold_into_preceding_uses() {
        let program = AddressProgram::new(
            vec![],
            vec![
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 0,
                    update: Update::None,
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: -1,
                },
            ],
            1,
            vec![],
        );
        let (opt, stats) = optimize(&program, &agu());
        assert_eq!(
            opt.body(),
            &[AddressInstr::Use {
                reg: RegId(0),
                position: 0,
                update: Update::Auto { delta: -1 },
            }]
        );
        assert_eq!(stats.folded, 1);
        assert_eq!(opt.cycles_per_iteration(), 0);
    }

    #[test]
    fn over_range_addas_fold_through_modify_registers() {
        let program = AddressProgram::new(
            vec![AddressInstr::Ldm {
                mr: MrId(0),
                value: 7,
            }],
            vec![
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 0,
                    update: Update::None,
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: 7,
                },
            ],
            1,
            vec![7],
        );
        let machine = AguSpec::new(1, 1).unwrap().with_modify_registers(1);
        let (opt, stats) = optimize(&program, &machine);
        assert_eq!(stats.folded, 1);
        assert!(matches!(
            opt.body()[0],
            AddressInstr::Use {
                update: Update::Modify { mr: MrId(0) },
                ..
            }
        ));
    }

    #[test]
    fn shadowed_prologue_loads_are_removed() {
        let program = AddressProgram::new(
            vec![
                AddressInstr::Lda {
                    reg: RegId(0),
                    address: 1,
                },
                AddressInstr::Lda {
                    reg: RegId(1),
                    address: 9,
                },
                AddressInstr::Lda {
                    reg: RegId(0),
                    address: 2,
                },
            ],
            vec![],
            2,
            vec![],
        );
        let (opt, stats) = optimize(&program, &agu());
        assert_eq!(opt.prologue().len(), 2);
        assert_eq!(stats.removed, 1);
        assert!(matches!(
            opt.prologue()[1],
            AddressInstr::Lda {
                reg: RegId(0),
                address: 2
            }
        ));
    }

    #[test]
    fn fixed_point_chains_fold_after_combine() {
        // ADDA +3 then ADDA -2 combine to +1, which then folds into the
        // preceding USE — only reachable via the fixed-point loop.
        let program = AddressProgram::new(
            vec![],
            vec![
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 0,
                    update: Update::None,
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: 3,
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: -2,
                },
            ],
            1,
            vec![],
        );
        let (opt, stats) = optimize(&program, &agu());
        assert_eq!(opt.body().len(), 1);
        assert_eq!(stats.combined, 1);
        assert_eq!(stats.folded, 1);
    }

    #[test]
    fn optimized_programs_simulate_identically() {
        // Build a deliberately slack program for a real loop, optimize,
        // and verify both against the same trace.
        let spec = dsl::parse_loop("for (i = 0; i < 16; i++) { y[i] = x[i] + x[i + 3]; }").unwrap();
        let layout = MemoryLayout::contiguous(&spec, 0x10, 0x40);
        let trace = Trace::capture(&spec, &layout, 10);
        // Hand-written program: one register per array, x hops +3/-2 via
        // separate ADDAs, y steps via redundant ADDA 0 + ADDA 1.
        let slack = AddressProgram::new(
            vec![
                AddressInstr::Lda {
                    reg: RegId(0),
                    address: 0x99, // shadowed
                },
                AddressInstr::Lda {
                    reg: RegId(0),
                    address: 0x10,
                },
                AddressInstr::Lda {
                    reg: RegId(1),
                    address: 0x50,
                },
            ],
            vec![
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 0,
                    update: Update::None,
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: 2,
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: 1,
                },
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 1,
                    update: Update::None,
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: -2,
                },
                AddressInstr::Use {
                    reg: RegId(1),
                    position: 2,
                    update: Update::None,
                },
                AddressInstr::Adda {
                    reg: RegId(1),
                    delta: 0,
                },
                AddressInstr::Adda {
                    reg: RegId(1),
                    delta: 1,
                },
            ],
            2,
            vec![],
        );
        let machine = AguSpec::new(2, 2).unwrap();
        let before = sim::run(&slack, &trace, &machine).expect("slack verifies");
        let (opt, stats) = optimize(&slack, &machine);
        let after = sim::run(&opt, &trace, &machine).expect("optimized verifies");
        assert!(stats.words_saved() >= 3, "stats: {stats:?}");
        assert!(after.explicit_updates_per_iteration() < before.explicit_updates_per_iteration());
        assert_eq!(after.accesses_checked(), before.accesses_checked());
    }
}
