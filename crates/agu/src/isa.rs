//! The address instruction set and address programs.
//!
//! The machine model follows the paper's Section 2 (plus the modify-
//! register extension of their ref \[2\]): each memory access (`USE`) can
//! carry one **free** post-modify of its address register — either an
//! immediate within the auto-modify range `M` or the content of a modify
//! register. Everything else (loading a register, updating it by an
//! arbitrary immediate) occupies one instruction word and one cycle.

use std::fmt;

use raco_ir::CostTable;

/// Index of an address register (`AR0`, `AR1`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(pub u16);

impl fmt::Display for RegId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AR{}", self.0)
    }
}

/// Index of a modify register (`M0`, `M1`, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MrId(pub u16);

impl fmt::Display for MrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// The free post-modify attached to a `USE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// No post-modify (an explicit `ADDA` may follow).
    None,
    /// Auto-increment/decrement by an immediate with `|delta| <= M`.
    Auto {
        /// The post-modify amount.
        delta: i64,
    },
    /// Add the content of a modify register (free on machines that have
    /// them).
    Modify {
        /// The modify register whose value is added.
        mr: MrId,
    },
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::None => Ok(()),
            Update::Auto { delta } if *delta >= 0 => write!(f, "+={delta}"),
            Update::Auto { delta } => write!(f, "-={}", -delta),
            Update::Modify { mr } => write!(f, "+={mr}"),
        }
    }
}

/// One address instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressInstr {
    /// Load an address register with an immediate address
    /// (1 word, 1 cycle).
    Lda {
        /// Destination register.
        reg: RegId,
        /// Immediate address.
        address: i64,
    },
    /// Load a modify register with an immediate value (1 word, 1 cycle).
    Ldm {
        /// Destination modify register.
        mr: MrId,
        /// Immediate value.
        value: i64,
    },
    /// Explicitly update an address register by an immediate — the
    /// paper's **unit-cost** address computation (1 word, 1 cycle).
    Adda {
        /// Register updated.
        reg: RegId,
        /// Amount added (may be negative).
        delta: i64,
    },
    /// The memory access itself: indirect through `reg`, serving the
    /// loop's access at `position`, with an optional free post-modify.
    /// Addressing cost: 0 words, 0 cycles (the access rides on the
    /// data-path instruction).
    Use {
        /// Register providing the address.
        reg: RegId,
        /// Position in the loop's per-iteration access sequence.
        position: usize,
        /// Free post-modify applied after the access.
        update: Update,
    },
}

impl AddressInstr {
    /// Instruction words this instruction occupies.
    pub fn words(&self) -> u64 {
        match self {
            AddressInstr::Lda { .. } | AddressInstr::Ldm { .. } | AddressInstr::Adda { .. } => 1,
            AddressInstr::Use { .. } => 0,
        }
    }

    /// Extra cycles this instruction costs on the unit-cost (paper)
    /// machine. Use [`AddressInstr::cycles_with`] for machines with
    /// per-opcode costs.
    pub fn cycles(&self) -> u64 {
        self.words()
    }

    /// Extra cycles this instruction costs under `costs`.
    pub fn cycles_with(&self, costs: &CostTable) -> u64 {
        match self {
            AddressInstr::Lda { .. } => u64::from(costs.lda()),
            AddressInstr::Ldm { .. } => u64::from(costs.ldm()),
            AddressInstr::Adda { .. } => u64::from(costs.adda()),
            AddressInstr::Use { .. } => 0,
        }
    }

    /// The address register this instruction reads or writes, if any.
    pub fn register(&self) -> Option<RegId> {
        match self {
            AddressInstr::Lda { reg, .. }
            | AddressInstr::Adda { reg, .. }
            | AddressInstr::Use { reg, .. } => Some(*reg),
            AddressInstr::Ldm { .. } => None,
        }
    }

    /// The modify register this instruction loads or applies, if any.
    pub fn modify_register(&self) -> Option<MrId> {
        match self {
            AddressInstr::Ldm { mr, .. }
            | AddressInstr::Use {
                update: Update::Modify { mr },
                ..
            } => Some(*mr),
            _ => None,
        }
    }
}

impl fmt::Display for AddressInstr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressInstr::Lda { reg, address } => write!(f, "LDA  {reg}, #{address:#06x}"),
            AddressInstr::Ldm { mr, value } => write!(f, "LDM  {mr}, #{value}"),
            AddressInstr::Adda { reg, delta } => write!(f, "ADDA {reg}, #{delta}"),
            AddressInstr::Use {
                reg,
                position,
                update,
            } => {
                write!(f, "USE  *{reg}{update}")?;
                write!(f, "  ; a_{}", position + 1)
            }
        }
    }
}

/// An outer-loop carry block of a flattened loop nest: instructions
/// executed after every `period` body iterations (between inner-loop
/// sweeps, where real nested code re-adjusts its pointers before the
/// outer loop's back edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CarryBlock {
    /// Execute the block after every `period`-th iteration.
    pub period: u64,
    /// The carry fix-up instructions (typically one `ADDA` per address
    /// register whose array has a non-zero carry at this nest level).
    pub instrs: Vec<AddressInstr>,
}

impl CarryBlock {
    /// Instruction words the block occupies.
    pub fn words(&self) -> u64 {
        self.instrs.iter().map(AddressInstr::words).sum()
    }
}

/// A complete address program for one loop: a prologue executed once, a
/// body executed every iteration, and (for flattened loop nests) carry
/// blocks executed between inner-loop sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressProgram {
    prologue: Vec<AddressInstr>,
    body: Vec<AddressInstr>,
    address_registers: usize,
    modify_values: Vec<i64>,
    carries: Vec<CarryBlock>,
    costs: CostTable,
}

impl AddressProgram {
    /// Assembles a program from parts.
    ///
    /// `modify_values[i]` is the value `LDM`-ed into `M<i>`;
    /// `address_registers` is the number of `AR`s the program touches.
    pub fn new(
        prologue: Vec<AddressInstr>,
        body: Vec<AddressInstr>,
        address_registers: usize,
        modify_values: Vec<i64>,
    ) -> Self {
        AddressProgram {
            prologue,
            body,
            address_registers,
            modify_values,
            carries: Vec::new(),
            costs: CostTable::UNIT,
        }
    }

    /// Attaches outer-loop carry blocks (builder style).
    #[must_use]
    pub fn with_carries(mut self, carries: Vec<CarryBlock>) -> Self {
        self.carries = carries;
        self
    }

    /// Attaches the machine's per-opcode cost table (builder style) —
    /// all cycle accounting below prices instructions with it. Unit by
    /// default, which reproduces the paper machine exactly.
    #[must_use]
    pub fn with_cost_table(mut self, costs: CostTable) -> Self {
        self.costs = costs;
        self
    }

    /// The cost table the program is priced under.
    pub fn cost_table(&self) -> CostTable {
        self.costs
    }

    /// The prologue instructions (register initialization).
    pub fn prologue(&self) -> &[AddressInstr] {
        &self.prologue
    }

    /// The per-iteration body.
    pub fn body(&self) -> &[AddressInstr] {
        &self.body
    }

    /// Outer-loop carry blocks (empty for plain single loops).
    pub fn carries(&self) -> &[CarryBlock] {
        &self.carries
    }

    /// Number of address registers used.
    pub fn address_registers(&self) -> usize {
        self.address_registers
    }

    /// The values held by modify registers (index = [`MrId`]).
    pub fn modify_values(&self) -> &[i64] {
        &self.modify_values
    }

    /// Static addressing words of the whole program
    /// (prologue + one body copy + carry blocks).
    pub fn words(&self) -> u64 {
        self.prologue.iter().map(AddressInstr::words).sum::<u64>()
            + self.body.iter().map(AddressInstr::words).sum::<u64>()
            + self.carries.iter().map(CarryBlock::words).sum::<u64>()
    }

    /// Addressing cycles of the prologue (priced by the program's cost
    /// table).
    pub fn prologue_cycles(&self) -> u64 {
        self.prologue
            .iter()
            .map(|i| i.cycles_with(&self.costs))
            .sum()
    }

    /// Extra addressing cycles per loop iteration — the quantity the
    /// paper minimizes (`ADDA` cycles in the body, priced by the
    /// program's cost table).
    pub fn cycles_per_iteration(&self) -> u64 {
        self.body.iter().map(|i| i.cycles_with(&self.costs)).sum()
    }

    /// Number of accesses (`USE`s) per iteration.
    pub fn uses_per_iteration(&self) -> usize {
        self.body
            .iter()
            .filter(|i| matches!(i, AddressInstr::Use { .. }))
            .count()
    }
}

impl fmt::Display for AddressProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prologue_words: u64 = self.prologue.iter().map(AddressInstr::words).sum();
        writeln!(f, "; prologue ({prologue_words} words)")?;
        for i in &self.prologue {
            writeln!(f, "    {i}")?;
        }
        writeln!(
            f,
            "; loop body ({} extra addressing cycle(s)/iteration)",
            self.cycles_per_iteration()
        )?;
        for i in &self.body {
            writeln!(f, "    {i}")?;
        }
        for block in &self.carries {
            writeln!(
                f,
                "; outer-loop carry (every {} iteration(s))",
                block.period
            )?;
            for i in &block.instrs {
                writeln!(f, "    {i}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_and_cycles_per_instruction() {
        let lda = AddressInstr::Lda {
            reg: RegId(0),
            address: 0x100,
        };
        let adda = AddressInstr::Adda {
            reg: RegId(1),
            delta: -3,
        };
        let ldm = AddressInstr::Ldm {
            mr: MrId(0),
            value: 4,
        };
        let use_ = AddressInstr::Use {
            reg: RegId(0),
            position: 0,
            update: Update::Auto { delta: 1 },
        };
        assert_eq!((lda.words(), lda.cycles()), (1, 1));
        assert_eq!((adda.words(), adda.cycles()), (1, 1));
        assert_eq!((ldm.words(), ldm.cycles()), (1, 1));
        assert_eq!((use_.words(), use_.cycles()), (0, 0));
    }

    #[test]
    fn display_forms_are_assembly_like() {
        assert_eq!(
            AddressInstr::Lda {
                reg: RegId(2),
                address: 0x104
            }
            .to_string(),
            "LDA  AR2, #0x0104"
        );
        assert_eq!(
            AddressInstr::Adda {
                reg: RegId(0),
                delta: -4
            }
            .to_string(),
            "ADDA AR0, #-4"
        );
        assert_eq!(
            AddressInstr::Use {
                reg: RegId(1),
                position: 4,
                update: Update::Auto { delta: -1 }
            }
            .to_string(),
            "USE  *AR1-=1  ; a_5"
        );
        assert_eq!(
            AddressInstr::Use {
                reg: RegId(1),
                position: 0,
                update: Update::Modify { mr: MrId(3) }
            }
            .to_string(),
            "USE  *AR1+=M3  ; a_1"
        );
        assert_eq!(
            AddressInstr::Use {
                reg: RegId(0),
                position: 1,
                update: Update::None
            }
            .to_string(),
            "USE  *AR0  ; a_2"
        );
    }

    #[test]
    fn program_accounting() {
        let program = AddressProgram::new(
            vec![
                AddressInstr::Lda {
                    reg: RegId(0),
                    address: 0,
                },
                AddressInstr::Ldm {
                    mr: MrId(0),
                    value: 5,
                },
            ],
            vec![
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 0,
                    update: Update::Auto { delta: 1 },
                },
                AddressInstr::Adda {
                    reg: RegId(0),
                    delta: 7,
                },
                AddressInstr::Use {
                    reg: RegId(0),
                    position: 1,
                    update: Update::None,
                },
            ],
            1,
            vec![5],
        );
        assert_eq!(program.words(), 3);
        assert_eq!(program.prologue_cycles(), 2);
        assert_eq!(program.cycles_per_iteration(), 1);
        assert_eq!(program.uses_per_iteration(), 2);
        assert_eq!(program.address_registers(), 1);
        assert_eq!(program.modify_values(), &[5]);
        let listing = program.to_string();
        assert!(listing.contains("; prologue"));
        assert!(listing.contains("LDM  M0, #5"));
        assert!(listing.contains("ADDA AR0, #7"));
    }

    #[test]
    fn cost_table_prices_program_accounting() {
        let costs = CostTable::new(2, 3, 5).unwrap();
        let lda = AddressInstr::Lda {
            reg: RegId(0),
            address: 0,
        };
        let ldm = AddressInstr::Ldm {
            mr: MrId(0),
            value: 7,
        };
        let adda = AddressInstr::Adda {
            reg: RegId(0),
            delta: 7,
        };
        let use_ = AddressInstr::Use {
            reg: RegId(0),
            position: 0,
            update: Update::None,
        };
        assert_eq!(lda.cycles_with(&costs), 2);
        assert_eq!(ldm.cycles_with(&costs), 3);
        assert_eq!(adda.cycles_with(&costs), 5);
        assert_eq!(use_.cycles_with(&costs), 0);
        assert_eq!(lda.cycles_with(&CostTable::UNIT), lda.cycles());

        let program = AddressProgram::new(vec![lda, ldm], vec![use_, adda], 1, vec![7])
            .with_cost_table(costs);
        assert_eq!(program.cost_table(), costs);
        assert_eq!(program.prologue_cycles(), 5);
        assert_eq!(program.cycles_per_iteration(), 5);
        // Words measure encoding size, not cycles.
        assert_eq!(program.words(), 3);
        // The listing header counts words, not scaled cycles.
        assert!(program.to_string().contains("; prologue (2 words)"));
    }

    #[test]
    fn instruction_accessors_expose_referenced_registers() {
        let lda = AddressInstr::Lda {
            reg: RegId(3),
            address: 0x40,
        };
        let ldm = AddressInstr::Ldm {
            mr: MrId(1),
            value: -2,
        };
        let adda = AddressInstr::Adda {
            reg: RegId(0),
            delta: 4,
        };
        let use_mr = AddressInstr::Use {
            reg: RegId(2),
            position: 0,
            update: Update::Modify { mr: MrId(0) },
        };
        let use_auto = AddressInstr::Use {
            reg: RegId(1),
            position: 1,
            update: Update::Auto { delta: -1 },
        };
        assert_eq!(lda.register(), Some(RegId(3)));
        assert_eq!(lda.modify_register(), None);
        assert_eq!(ldm.register(), None);
        assert_eq!(ldm.modify_register(), Some(MrId(1)));
        assert_eq!(adda.register(), Some(RegId(0)));
        assert_eq!(use_mr.register(), Some(RegId(2)));
        assert_eq!(use_mr.modify_register(), Some(MrId(0)));
        assert_eq!(use_auto.register(), Some(RegId(1)));
        assert_eq!(use_auto.modify_register(), None);
    }
}
